"""The BENCH report format: harness entries, schema checks, compare gate."""

import json

import pytest

from repro.bench.registry import (
    Benchmark,
    benchmark_names,
    get_benchmark,
    register_benchmark,
)
from repro.bench.report import (
    BENCH_VERSION,
    compare_reports,
    load_report,
    run_benchmark,
    validate_bench_report,
    write_report,
)
from repro.runner.cli import main


def _benchmark(fn, repeat=3, warmup=1, name="unit"):
    return Benchmark(name=name, title="unit benchmark",
                     description="test-only", fn=fn, repeat=repeat,
                     warmup=warmup)


def _report(entries, suite="unit"):
    return {
        "bench_version": BENCH_VERSION,
        "repro_version": "0.0.0-test",
        "suite": suite,
        "generated_unix": 1765432100.0,
        "benchmarks": entries,
    }


def _entry(name, median, repeat=3):
    return {
        "name": name,
        "repeat": repeat,
        "warmup": 1,
        "seconds": [median] * repeat,
        "median_seconds": median,
        "p10_seconds": median,
        "p90_seconds": median,
        "extras": {},
    }


class TestHarness:
    def test_entry_shape_and_extras(self):
        calls = []

        def fn():
            calls.append(1)
            return {"widgets": 7}

        entry = run_benchmark(_benchmark(fn, repeat=4, warmup=2))
        # 2 warmups + 4 timed runs, every timed run recorded.
        assert len(calls) == 6
        assert entry["repeat"] == 4 and entry["warmup"] == 2
        assert len(entry["seconds"]) == 4
        assert entry["extras"] == {"widgets": 7}
        assert entry["p10_seconds"] <= entry["median_seconds"]
        assert entry["median_seconds"] <= entry["p90_seconds"]
        assert validate_bench_report(_report([entry])) == []

    def test_overrides_beat_benchmark_defaults(self):
        entry = run_benchmark(_benchmark(lambda: None), repeat=1, warmup=0)
        assert entry["repeat"] == 1 and entry["warmup"] == 0
        assert len(entry["seconds"]) == 1

    def test_zero_repeat_rejected(self):
        with pytest.raises(ValueError, match="repeat"):
            run_benchmark(_benchmark(lambda: None), repeat=0)


class TestSchema:
    def test_write_load_round_trip(self, tmp_path):
        document = _report([_entry("a", 0.5), _entry("b", 0.25)])
        path = str(tmp_path / "BENCH_unit.json")
        write_report(document, path)
        assert load_report(path) == document
        # The on-disk form is canonical JSON (sorted keys).
        on_disk = json.loads((tmp_path / "BENCH_unit.json").read_text())
        assert on_disk == document

    def test_write_refuses_invalid(self, tmp_path):
        document = _report([_entry("a", 0.5)])
        del document["suite"]
        with pytest.raises(ValueError, match="suite"):
            write_report(document, str(tmp_path / "bad.json"))

    def test_load_refuses_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"bench_version": BENCH_VERSION}))
        with pytest.raises(ValueError, match="missing report key"):
            load_report(str(path))

    def test_rejects_wrong_version(self):
        document = _report([])
        document["bench_version"] = BENCH_VERSION + 1
        assert any("bench_version" in problem
                   for problem in validate_bench_report(document))

    def test_rejects_duplicate_names(self):
        problems = validate_bench_report(
            _report([_entry("a", 0.5), _entry("a", 0.6)]))
        assert any("duplicates" in problem for problem in problems)

    def test_rejects_seconds_repeat_mismatch(self):
        entry = _entry("a", 0.5)
        entry["seconds"] = [0.5, 0.5]
        problems = validate_bench_report(_report([entry]))
        assert any("repeat" in problem for problem in problems)

    def test_rejects_negative_timing(self):
        entry = _entry("a", 0.5)
        entry["seconds"] = [0.5, -0.1, 0.5]
        problems = validate_bench_report(_report([entry]))
        assert any("negative" in problem for problem in problems)

    def test_rejects_non_dict_extras(self):
        entry = _entry("a", 0.5)
        entry["extras"] = ["not", "a", "dict"]
        problems = validate_bench_report(_report([entry]))
        assert any("extras" in problem for problem in problems)

    def test_rejects_non_object_document(self):
        assert validate_bench_report([1, 2, 3])


class TestCompare:
    def test_within_threshold_passes(self):
        old = _report([_entry("a", 1.0)])
        new = _report([_entry("a", 1.1)])
        regressions, notes = compare_reports(old, new, 20.0)
        assert regressions == []
        assert any("a:" in note for note in notes)

    def test_exactly_at_threshold_passes(self):
        # Strictly-greater semantics: +20.0% at threshold 20 is not a
        # regression.
        old = _report([_entry("a", 1.0)])
        new = _report([_entry("a", 1.2)])
        regressions, _ = compare_reports(old, new, 20.0)
        assert regressions == []

    def test_beyond_threshold_regresses(self):
        old = _report([_entry("a", 1.0)])
        new = _report([_entry("a", 1.3)])
        regressions, _ = compare_reports(old, new, 20.0)
        assert len(regressions) == 1
        assert "a:" in regressions[0] and "+30.0%" in regressions[0]

    def test_missing_in_old_is_a_note(self):
        old = _report([_entry("a", 1.0)])
        new = _report([_entry("a", 1.0), _entry("b", 5.0)])
        regressions, notes = compare_reports(old, new, 20.0)
        assert regressions == []
        assert any("no baseline" in note for note in notes)

    def test_zero_baseline_is_a_note(self):
        old = _report([_entry("a", 0.0)])
        new = _report([_entry("a", 100.0)])
        regressions, notes = compare_reports(old, new, 20.0)
        assert regressions == []
        assert any("not comparable" in note for note in notes)

    def test_dropped_benchmark_is_a_note(self):
        old = _report([_entry("a", 1.0), _entry("b", 1.0)])
        new = _report([_entry("a", 1.0)])
        regressions, notes = compare_reports(old, new, 20.0)
        assert regressions == []
        assert any("not in the new report" in note for note in notes)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(_report([]), _report([]), -1.0)


class TestRegistry:
    def test_seed_suite_registered(self):
        names = benchmark_names()
        for expected in ("dls_search", "fig13_sweep_local",
                         "fig13_sweep_scheduler", "cache_key",
                         "scenario_serde", "server_roundtrip"):
            assert expected in names

    def test_double_registration_rejected(self):
        register_benchmark(name="__unit_dup", title="t", description="d")(
            lambda: None)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_benchmark(name="__unit_dup", title="t",
                                   description="d")(lambda: None)
        finally:
            from repro.bench import registry
            registry._REGISTRY.pop("__unit_dup", None)

    def test_bad_repeat_and_warmup_rejected(self):
        with pytest.raises(ValueError, match="repeat"):
            register_benchmark(name="__unit_bad", title="t", description="d",
                               repeat=0)
        with pytest.raises(ValueError, match="warmup"):
            register_benchmark(name="__unit_bad", title="t", description="d",
                               warmup=-1)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="dls_search"):
            get_benchmark("no_such_benchmark")


class TestCLI:
    def test_list_names_every_benchmark(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in benchmark_names():
            assert name in out

    def test_compare_gate_exit_codes(self, tmp_path, capsys):
        old_path = str(tmp_path / "old.json")
        good_path = str(tmp_path / "good.json")
        bad_path = str(tmp_path / "bad.json")
        write_report(_report([_entry("a", 1.0)]), old_path)
        write_report(_report([_entry("a", 1.05)]), good_path)
        write_report(_report([_entry("a", 2.0)]), bad_path)
        assert main(["bench", "--compare", old_path, good_path,
                     "--threshold", "20"]) == 0
        assert main(["bench", "--compare", old_path, bad_path,
                     "--threshold", "20"]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err

    def test_compare_unreadable_report_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.json"
        bad.write_text("{}")
        ok = tmp_path / "ok.json"
        write_report(_report([]), str(ok))
        assert main(["bench", "--compare", str(bad), str(ok)]) == 2

    def test_benchmarks_md_check_against_repo_copy(self, tmp_path):
        import pathlib
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        assert main(["docs", "--check",
                     "--output", str(repo_root / "EXPERIMENTS.md"),
                     "--benchmarks-output",
                     str(repo_root / "BENCHMARKS.md")]) == 0
        stale = tmp_path / "BENCHMARKS.md"
        stale.write_text("# stale\n")
        assert main(["docs", "--check",
                     "--output", str(repo_root / "EXPERIMENTS.md"),
                     "--benchmarks-output", str(stale)]) == 1
