"""Tests for the TEMP framework, metrics, multi-wafer, and fault tolerance.

The loose-kwargs entry points exercised here (``evaluate_baseline``,
``TEMP``, ``evaluate_multiwafer``) are deprecated in favour of the Scenario
API; they are kept under test because the deprecation contract promises
bit-identical results (see ``tests/api/test_service.py``).
"""

import pytest

from repro.core.fault_tolerance import evaluate_with_faults
from repro.core.framework import TEMP, downsample_specs, evaluate_baseline
from repro.core.metrics import (
    average_speedup,
    best_non_oom,
    geometric_mean,
    normalize_breakdown,
    normalize_to,
    speedup,
)
from repro.core.multiwafer import evaluate_multiwafer, pipeline_degrees_for
from repro.hardware.faults import FaultModel
from repro.parallelism.baselines import BaselineScheme
from repro.parallelism.spec import ParallelSpec
from repro.workloads.models import get_model

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestMetrics:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_normalize_to_default_reference_is_max(self):
        normalized = normalize_to({"a": 2.0, "b": 4.0})
        assert normalized == {"a": 0.5, "b": 1.0}

    def test_normalize_to_explicit_reference(self):
        normalized = normalize_to({"a": 2.0, "b": 4.0}, reference_key="a")
        assert normalized["b"] == 2.0

    def test_normalize_breakdown_sums_to_one(self):
        normalized = normalize_breakdown({"x": 3.0, "y": 1.0})
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_average_speedup(self):
        assert average_speedup([2.0, 8.0], [1.0, 2.0]) == pytest.approx(
            geometric_mean([2.0, 4.0]))
        with pytest.raises(ValueError):
            average_speedup([1.0], [1.0, 2.0])

    def test_best_non_oom(self):
        class _Stub:
            def __init__(self, step_time, oom):
                self.step_time = step_time
                self.oom = oom
        reports = {"a": _Stub(2.0, False), "b": _Stub(1.0, True), "c": _Stub(1.5, False)}
        assert best_non_oom(reports) == "c"
        assert best_non_oom({"only": _Stub(1.0, True)}) is None


class TestEvaluateBaseline:
    @pytest.mark.parametrize("scheme", [BaselineScheme.MEGATRON1,
                                        BaselineScheme.MESP,
                                        BaselineScheme.FSDP])
    def test_every_scheme_produces_a_result(self, scheme, gpt3_6b, wafer):
        result = evaluate_baseline(scheme, "smap", gpt3_6b, wafer=wafer)
        assert result.report is not None
        assert result.best_spec is not None
        assert result.candidates_evaluated > 0
        assert result.label.endswith("+smap")

    def test_best_spec_respects_scheme_space(self, gpt3_6b, wafer):
        mega = evaluate_baseline(BaselineScheme.MEGATRON1, "smap", gpt3_6b, wafer=wafer)
        assert mega.best_spec.tatp == 1 and mega.best_spec.fsdp == 1
        fsdp = evaluate_baseline(BaselineScheme.FSDP, "smap", gpt3_6b, wafer=wafer)
        assert fsdp.best_spec.tp == 1

    def test_megatron_oom_on_70b(self, llama70b, wafer):
        result = evaluate_baseline(BaselineScheme.MEGATRON1, "smap", llama70b,
                                   wafer=wafer)
        assert result.oom

    def test_fsdp_never_ooms_on_table_ii(self, wafer):
        for name in ("gpt3-6.7b", "llama3-70b", "gpt3-175b", "opt-175b"):
            result = evaluate_baseline(BaselineScheme.FSDP, "smap",
                                       get_model(name), wafer=wafer)
            assert not result.oom, name

    def test_non_oom_result_fits_capacity(self, llama70b, wafer):
        result = evaluate_baseline(BaselineScheme.MESP, "gmap", llama70b, wafer=wafer)
        assert not result.oom
        assert result.report.memory.total <= wafer.config.die.hbm.capacity


class TestDownsample:
    def test_keeps_both_endpoints(self):
        specs = list(range(10))
        for limit in (2, 3, 4, 7, 9):
            sampled = downsample_specs(specs, limit)
            assert len(sampled) == limit
            assert sampled[0] == specs[0]
            assert sampled[-1] == specs[-1], limit
            assert sampled == sorted(set(sampled))  # strictly increasing

    def test_limit_of_one_keeps_first(self):
        assert downsample_specs(list(range(5)), 1) == [0]

    def test_no_op_when_limit_covers_list(self):
        specs = list(range(4))
        assert downsample_specs(specs, 4) == specs
        assert downsample_specs(specs, 10) == specs


class TestTEMPFramework:
    def test_temp_beats_every_baseline_on_large_model(self, llama70b, wafer):
        temp = TEMP(wafer=wafer).optimize(llama70b)
        for scheme in (BaselineScheme.MEGATRON1, BaselineScheme.MESP,
                       BaselineScheme.FSDP):
            for engine in ("smap", "gmap"):
                baseline = evaluate_baseline(scheme, engine, llama70b, wafer=wafer)
                if baseline.oom:
                    continue
                assert temp.report.step_time <= baseline.report.step_time * 1.001

    def test_temp_uses_tatp_on_large_models(self, llama70b, wafer):
        result = TEMP(wafer=wafer).optimize(llama70b)
        assert result.best_spec.tatp > 1
        assert not result.oom

    def test_temp_memory_not_above_best_baseline(self, llama70b, wafer):
        temp = TEMP(wafer=wafer).optimize(llama70b)
        mesp = evaluate_baseline(BaselineScheme.MESP, "gmap", llama70b, wafer=wafer)
        assert temp.report.memory.total <= mesp.report.memory.total * 1.05

    def test_ablation_switches_change_engine_and_space(self, wafer):
        base = TEMP(wafer=wafer, enable_tatp=False, enable_tcme=False)
        assert base.mapping_engine == "smap"
        assert base.max_tatp == 1
        full = TEMP(wafer=wafer)
        assert full.mapping_engine == "tcme"

    def test_ablation_is_monotone(self, llama70b, wafer):
        base = TEMP(wafer=wafer, enable_tatp=False, enable_tcme=False).optimize(llama70b)
        with_tatp = TEMP(wafer=wafer, enable_tatp=True, enable_tcme=False).optimize(llama70b)
        full = TEMP(wafer=wafer).optimize(llama70b)
        assert with_tatp.report.throughput >= base.report.throughput * 0.999
        assert full.report.throughput >= with_tatp.report.throughput * 0.999

    def test_solver_path_agrees_with_enumeration(self, gpt3_6b, wafer):
        solver_result = TEMP(wafer=wafer).solve(gpt3_6b)
        assert not solver_result.best_report.oom
        assert solver_result.best_spec.total_degree == 32


class TestMultiWafer:
    def test_pipeline_degree_rules(self):
        assert pipeline_degrees_for(BaselineScheme.TEMP, 2) == [2, 4]
        assert pipeline_degrees_for(BaselineScheme.MESP, 2) == [2, 4, 8]
        with pytest.raises(ValueError):
            pipeline_degrees_for(BaselineScheme.TEMP, 0)

    def test_temp_beats_mesp_on_two_wafers(self):
        model = get_model("gpt3-175b")
        temp = evaluate_multiwafer(BaselineScheme.TEMP, "tcme", model, 2,
                                   num_microbatches=8)
        mesp = evaluate_multiwafer(BaselineScheme.MESP, "gmap", model, 2,
                                   num_microbatches=8)
        assert not temp.oom
        assert temp.step_time <= mesp.step_time * 1.001
        assert temp.throughput >= mesp.throughput * 0.999

    def test_breakdown_keys(self):
        model = get_model("gpt3-175b")
        result = evaluate_multiwafer(BaselineScheme.TEMP, "tcme", model, 2,
                                     num_microbatches=8)
        assert set(result.breakdown()) == {"compute", "communication", "bubble"}

    def test_invalid_wafer_count(self):
        with pytest.raises(ValueError):
            evaluate_multiwafer(BaselineScheme.TEMP, "tcme",
                                get_model("gpt3-175b"), 0)


class TestFaultTolerance:
    def test_no_faults_means_no_loss(self, gpt3_6b):
        result = evaluate_with_faults(gpt3_6b, ParallelSpec(dp=4, tatp=8),
                                      FaultModel())
        assert result.relative_throughput == pytest.approx(1.0)
        assert not result.rerouted and not result.rebalanced

    def test_core_faults_degrade_gracefully(self, gpt3_6b):
        faults = FaultModel.sample_core_faults(32, 0.25, seed=3)
        result = evaluate_with_faults(gpt3_6b, ParallelSpec(dp=4, tatp=8), faults)
        assert result.rebalanced
        assert 0.6 < result.relative_throughput < 1.0

    def test_rebalancing_recovers_throughput(self, gpt3_6b):
        faults = FaultModel.sample_core_faults(32, 0.25, seed=3)
        spec = ParallelSpec(dp=4, tatp=8)
        with_rebalance = evaluate_with_faults(gpt3_6b, spec, faults, rebalance=True)
        without = evaluate_with_faults(gpt3_6b, spec, faults, rebalance=False)
        assert with_rebalance.faulty_throughput >= without.faulty_throughput

    def test_moderate_link_faults_survive(self, gpt3_6b):
        faults = FaultModel.sample_link_faults(4, 8, 0.15, seed=2)
        result = evaluate_with_faults(gpt3_6b, ParallelSpec(dp=4, tatp=8), faults)
        assert result.rerouted
        assert result.relative_throughput > 0.5

    def test_extreme_link_faults_hit_cliff(self, gpt3_6b):
        faults = FaultModel.sample_link_faults(4, 8, 0.6, seed=2)
        result = evaluate_with_faults(gpt3_6b, ParallelSpec(dp=4, tatp=8), faults)
        assert result.relative_throughput < 0.5
