"""Tests for the analytical cost model, the dataset, and the learned models."""

import numpy as np
import pytest

from repro.costmodel.analytical import (
    graph_cost,
    inter_operator_cost,
    intra_operator_cost,
    resharding_bytes,
)
from repro.costmodel.dataset import generate_dataset
from repro.costmodel.dnn import MLPCostModel
from repro.costmodel.evaluation import correlation, evaluate_model, mean_relative_error
from repro.costmodel.features import FEATURE_NAMES, feature_matrix, sample_features
from repro.costmodel.regression import LinearCostModel
from repro.hardware.config import default_wafer_config
from repro.parallelism.spec import ParallelSpec
from repro.workloads.operators import Linear
from repro.workloads.transformer import representative_layer_graph


@pytest.fixture(scope="module")
def wafer_config():
    return default_wafer_config()


@pytest.fixture(scope="module")
def big_linear():
    return Linear("fc", batch=8, seq=2048, in_features=4096, out_features=16384)


class TestIntraOperatorCost:
    def test_eq2_structure(self, big_linear, wafer_config):
        cost = intra_operator_cost(big_linear, ParallelSpec(dp=4, tatp=8),
                                   wafer_config)
        assert cost.total == pytest.approx(
            cost.collective + max(cost.compute, cost.p2p))

    def test_tp_adds_collective_cost(self, big_linear, wafer_config):
        no_tp = intra_operator_cost(big_linear, ParallelSpec(dp=8), wafer_config)
        with_tp = intra_operator_cost(big_linear, ParallelSpec(tp=8), wafer_config)
        assert with_tp.collective > no_tp.collective

    def test_tatp_adds_overlappable_p2p(self, big_linear, wafer_config):
        cost = intra_operator_cost(big_linear, ParallelSpec(tatp=8), wafer_config)
        assert cost.p2p > 0
        assert cost.collective == 0

    def test_compute_shrinks_with_devices(self, big_linear, wafer_config):
        small = intra_operator_cost(big_linear, ParallelSpec(tatp=4), wafer_config)
        large = intra_operator_cost(big_linear, ParallelSpec(tatp=16), wafer_config)
        assert large.compute < small.compute

    def test_memory_excludes_replication_for_tatp(self, big_linear, wafer_config):
        tp = intra_operator_cost(big_linear, ParallelSpec(tp=8), wafer_config)
        tatp = intra_operator_cost(big_linear, ParallelSpec(tatp=8), wafer_config)
        assert tatp.memory_bytes <= tp.memory_bytes

    def test_hop_factor_increases_collective_time(self, big_linear, wafer_config):
        near = intra_operator_cost(big_linear, ParallelSpec(tp=8), wafer_config,
                                   hop_factor=1)
        far = intra_operator_cost(big_linear, ParallelSpec(tp=8), wafer_config,
                                  hop_factor=4)
        assert far.collective > near.collective


class TestInterOperatorCost:
    def test_same_spec_costs_nothing(self, big_linear, wafer_config):
        spec = ParallelSpec(dp=4, tatp=8)
        assert resharding_bytes(big_linear, spec, spec) == 0.0
        assert inter_operator_cost(big_linear, spec, spec, wafer_config) == 0.0

    def test_layout_change_costs_something(self, big_linear, wafer_config):
        a = ParallelSpec(dp=8, tatp=4)
        b = ParallelSpec(dp=4, tatp=8)
        assert resharding_bytes(big_linear, a, b) > 0
        assert inter_operator_cost(big_linear, a, b, wafer_config) > 0

    def test_more_mismatched_dimensions_cost_more(self, big_linear, wafer_config):
        base = ParallelSpec(dp=8, tp=2, tatp=2)
        one_change = ParallelSpec(dp=8, tp=2, tatp=2).with_degree("dp", 4)
        many_changes = ParallelSpec(dp=2, tp=8, tatp=2)
        assert (resharding_bytes(big_linear, base, many_changes)
                >= resharding_bytes(big_linear, base, one_change))


class TestGraphCost:
    def test_uniform_assignment_cost_positive(self, gpt3_6b, wafer_config):
        graph = representative_layer_graph(gpt3_6b)
        spec = ParallelSpec(dp=4, tatp=8)
        assignment = {node.node_id: spec for node in graph.nodes()}
        assert graph_cost(graph, assignment, wafer_config) > 0

    def test_mixed_assignment_pays_resharding(self, gpt3_6b, wafer_config):
        graph = representative_layer_graph(gpt3_6b)
        uniform_spec = ParallelSpec(dp=4, tatp=8)
        other_spec = ParallelSpec(dp=8, tatp=4)
        uniform = {node.node_id: uniform_spec for node in graph.nodes()}
        alternating = {
            node.node_id: (uniform_spec if index % 2 == 0 else other_spec)
            for index, node in enumerate(graph.nodes())
        }
        assert (graph_cost(graph, alternating, wafer_config)
                > graph_cost(graph, uniform, wafer_config))


class TestDataset:
    def test_generates_requested_counts(self):
        samples = generate_dataset(num_samples=20, seed=1)
        assert len(samples) == 60
        categories = {sample.category for sample in samples}
        assert categories == {"compute", "communication", "overlap"}

    def test_reproducible(self):
        a = generate_dataset(num_samples=5, seed=3)
        b = generate_dataset(num_samples=5, seed=3)
        assert [s.latency for s in a] == [s.latency for s in b]

    def test_latencies_positive(self):
        assert all(s.latency > 0 for s in generate_dataset(num_samples=10))

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            generate_dataset(num_samples=0)


class TestFeatures:
    def test_feature_vector_shape_and_order(self):
        vector = sample_features({"batch": 4, "seq": 128, "is_collective": 1.0})
        assert vector.shape == (len(FEATURE_NAMES),)
        assert vector[FEATURE_NAMES.index("is_collective")] == 1.0

    def test_feature_matrix_stacks(self):
        matrix = feature_matrix([{"batch": 1}, {"batch": 2}])
        assert matrix.shape == (2, len(FEATURE_NAMES))

    def test_empty_matrix(self):
        assert feature_matrix([]).shape == (0, len(FEATURE_NAMES))


class TestEvaluationMetrics:
    def test_correlation_perfect(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_correlation_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            correlation([1, 2], [1])

    def test_relative_error(self):
        assert mean_relative_error([110, 90], [100, 100]) == pytest.approx(0.1)

    def test_relative_error_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_relative_error([], [])


class TestLearnedModels:
    @pytest.fixture(scope="class")
    def split_data(self):
        train = generate_dataset(num_samples=120, seed=0)
        test = generate_dataset(num_samples=60, seed=1)
        return train, test

    def test_regression_fits_and_predicts(self, split_data):
        train, test = split_data
        model = LinearCostModel().fit(train)
        predictions = model.predict(test)
        assert predictions.shape == (len(test),)
        assert np.all(predictions > 0)

    def test_regression_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            LinearCostModel().predict_inputs([{"batch": 1}])

    def test_mlp_fits_and_beats_regression(self, split_data):
        train, test = split_data
        mlp = MLPCostModel(epochs=120, seed=0).fit(train)
        regression = LinearCostModel().fit(train)
        mlp_acc = evaluate_model(mlp, test)
        reg_acc = evaluate_model(regression, test)
        mlp_error = max(acc.relative_error for acc in mlp_acc.values())
        reg_error = max(acc.relative_error for acc in reg_acc.values())
        assert mlp_error < reg_error
        # The quick unit-test training budget is small; the full Fig. 21 bench
        # trains longer and reaches > 0.98 correlation.
        assert min(acc.correlation for acc in mlp_acc.values()) > 0.8

    def test_mlp_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            MLPCostModel().predict_inputs([{"batch": 1}])

    def test_fit_on_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            MLPCostModel().fit([])
        with pytest.raises(ValueError):
            LinearCostModel().fit([])

    def test_predict_one(self, split_data):
        train, _ = split_data
        model = LinearCostModel().fit(train)
        value = model.predict_one(train[0].inputs)
        assert value > 0
