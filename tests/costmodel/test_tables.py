"""Parity tests for the vectorized cost-table layer.

The scalar functions of :mod:`repro.costmodel.analytical` are the reference
implementation of Eqs. (2)-(4); :class:`repro.costmodel.tables.CostTables`
must reproduce every cell to within 1e-9 relative error, and the solvers
built on the tables must return the same assignments and costs as the scalar
implementation they replaced.
"""

import random

import numpy as np
import pytest

from repro.costmodel.analytical import (
    graph_cost,
    inter_operator_cost,
    intra_operator_cost,
)
from repro.costmodel.tables import CostTables, PlanCache
from repro.hardware.config import default_wafer_config
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.solver.dp import optimize_segments
from repro.solver.genetic import GeneticConfig, GeneticRefiner
from repro.workloads.transformer import representative_layer_graph

REL = 1e-9


@pytest.fixture(scope="module")
def wafer_config():
    return default_wafer_config()


@pytest.fixture(scope="module")
def sim():
    return SimulatorConfig()


@pytest.fixture(scope="module")
def layer_graph(gpt3_6b):
    return representative_layer_graph(gpt3_6b)


@pytest.fixture(scope="module")
def candidates():
    # Exercise every cost-model branch: pure DP, TATP, TP collectives, FSDP
    # gathers, DP gradient reduction, SP/CP sequence splits, and the
    # Megatron-3 coupled-SP layout.
    return [
        ParallelSpec(dp=32),
        ParallelSpec(dp=4, tatp=8),
        ParallelSpec(dp=2, tp=2, tatp=8),
        ParallelSpec(tatp=32),
        ParallelSpec(fsdp=32),
        ParallelSpec(dp=2, fsdp=2, tp=4, sp=2),
        ParallelSpec(tp=8, sp=4),
        ParallelSpec(tp=4, tatp=8, sp_within_tp=True),
        ParallelSpec(dp=2, cp=2, tp=8),
    ]


@pytest.fixture(scope="module")
def tables(layer_graph, candidates, wafer_config, sim):
    return CostTables(layer_graph, candidates, wafer_config, sim)


class TestScalarParity:
    def test_intra_matches_scalar(
            self, layer_graph, candidates, wafer_config, sim, tables):
        for node in layer_graph.nodes():
            row = tables.intra_row(node.node_id)
            mem = tables.memory_row(node.node_id)
            for s, spec in enumerate(candidates):
                ref = intra_operator_cost(node.operator, spec, wafer_config, sim)
                assert row[s] == pytest.approx(ref.total, rel=REL)
                assert mem[s] == pytest.approx(ref.memory_bytes, rel=REL)

    def test_reshard_matches_scalar(
            self, layer_graph, candidates, wafer_config, sim, tables):
        for src, _ in layer_graph.edges():
            matrix = tables.reshard_matrix(src)
            producer = layer_graph.node(src).operator
            for a, spec_a in enumerate(candidates):
                for b, spec_b in enumerate(candidates):
                    ref = inter_operator_cost(
                        producer, spec_a, spec_b, wafer_config, sim)
                    assert matrix[a, b] == pytest.approx(ref, rel=REL, abs=0.0)

    def test_assignment_cost_matches_graph_cost(
            self, layer_graph, candidates, wafer_config, sim, tables):
        rng = random.Random(0)
        for _ in range(10):
            assignment = {
                node.node_id: candidates[rng.randrange(len(candidates))]
                for node in layer_graph.nodes()
            }
            want = graph_cost(layer_graph, assignment, wafer_config, sim)
            assert tables.assignment_cost(assignment) == pytest.approx(
                want, rel=REL)

    def test_population_costs_match_genome_cost(self, layer_graph, tables):
        rng = random.Random(1)
        genomes = np.asarray([
            [rng.randrange(tables.num_specs)
             for _ in range(layer_graph.num_nodes)]
            for _ in range(8)
        ])
        batched = tables.population_costs(genomes)
        for genome, cost in zip(genomes, batched):
            assert cost == pytest.approx(tables.genome_cost(genome), rel=REL)

    def test_delta_cost_matches_full_rescore(self, layer_graph, tables):
        rng = random.Random(2)
        length = layer_graph.num_nodes
        for _ in range(20):
            genome = [rng.randrange(tables.num_specs) for _ in range(length)]
            child = list(genome)
            for _ in range(rng.randrange(0, length)):
                child[rng.randrange(length)] = rng.randrange(tables.num_specs)
            base = tables.genome_cost(np.asarray(genome))
            got = tables.delta_cost(genome, base, child)
            want = tables.genome_cost(np.asarray(child))
            assert got == pytest.approx(want, rel=REL)


def _scalar_chain_dp(graph, chain, candidates, wafer, sim):
    """The seed implementation's scalar chain DP, kept as the test oracle."""
    num_ops, num_specs = len(chain), len(candidates)
    intra = [
        [intra_operator_cost(graph.node(nid).operator, spec, wafer, sim).total
         for spec in candidates]
        for nid in chain
    ]
    best = [[float("inf")] * num_specs for _ in range(num_ops)]
    parent = [[-1] * num_specs for _ in range(num_ops)]
    best[0] = list(intra[0])
    for i in range(1, num_ops):
        producer = graph.node(chain[i - 1]).operator
        for s in range(num_specs):
            for prev in range(num_specs):
                cost = best[i - 1][prev] + inter_operator_cost(
                    producer, candidates[prev], candidates[s], wafer, sim
                ) + intra[i][s]
                if cost < best[i][s]:
                    best[i][s] = cost
                    parent[i][s] = prev
    final = min(range(num_specs), key=lambda s: best[num_ops - 1][s])
    chosen = [0] * num_ops
    chosen[-1] = final
    for i in range(num_ops - 1, 0, -1):
        chosen[i - 1] = parent[i][chosen[i]]
    return (
        {chain[i]: candidates[chosen[i]] for i in range(num_ops)},
        best[num_ops - 1][final],
    )


class TestSolverParity:
    def test_dp_matches_scalar_reference(
            self, layer_graph, candidates, wafer_config, sim):
        result = optimize_segments(layer_graph, candidates, wafer_config, sim)
        want_cost = 0.0
        want_assignment = {}
        for chain in layer_graph.partition_at_residual_boundaries():
            assignment, cost = _scalar_chain_dp(
                layer_graph, chain, candidates, wafer_config, sim)
            want_assignment.update(assignment)
            want_cost += cost
        assert result.assignment == want_assignment
        assert result.total_cost == pytest.approx(want_cost, rel=REL)

    def test_dp_evaluations_count_table_cells(
            self, layer_graph, candidates, wafer_config, sim):
        result = optimize_segments(layer_graph, candidates, wafer_config, sim)
        num_specs = len(candidates)
        transitions = sum(
            len(chain) - 1
            for chain in layer_graph.partition_at_residual_boundaries())
        expected = (layer_graph.num_nodes * num_specs
                    + transitions * num_specs ** 2)
        assert result.evaluations == expected

    def test_mismatched_tables_rejected(
            self, layer_graph, candidates, wafer_config, sim, tables, gpt3_6b):
        subset = candidates[:3]
        with pytest.raises(ValueError, match="different candidate list"):
            optimize_segments(layer_graph, subset, wafer_config, sim,
                              tables=tables)
        with pytest.raises(ValueError, match="different candidate list"):
            GeneticRefiner(layer_graph, subset, wafer_config, sim,
                           tables=tables)
        other_graph = representative_layer_graph(gpt3_6b)
        with pytest.raises(ValueError, match="different graph"):
            optimize_segments(other_graph, candidates, wafer_config, sim,
                              tables=tables)
        other_wafer = default_wafer_config(rows=2, cols=4)
        with pytest.raises(ValueError, match="different wafer"):
            optimize_segments(layer_graph, candidates, other_wafer, sim,
                              tables=tables)
        other_sim = SimulatorConfig(base_mfu=0.123)
        with pytest.raises(ValueError, match="different simulator"):
            GeneticRefiner(layer_graph, candidates, wafer_config, other_sim,
                           tables=tables)
        # Omitting config means default knobs, not "accept whatever the
        # tables were built with".
        nondefault = CostTables(layer_graph, candidates, wafer_config, other_sim)
        with pytest.raises(ValueError, match="different simulator"):
            optimize_segments(layer_graph, candidates, wafer_config,
                              tables=nondefault)
        with pytest.raises(ValueError, match="different simulator"):
            GeneticRefiner(layer_graph, candidates, wafer_config,
                           tables=nondefault)

    def test_ga_matches_scalar_cost_function(
            self, layer_graph, candidates, wafer_config, sim):
        genetic_config = GeneticConfig(
            population_size=10, generations=6, seed=11)
        dp_result = optimize_segments(layer_graph, candidates, wafer_config, sim)
        fast = GeneticRefiner(
            layer_graph, candidates, wafer_config, sim,
            genetic_config=genetic_config,
        ).refine(initial_assignment=dp_result.assignment)
        reference = GeneticRefiner(
            layer_graph, candidates, wafer_config, sim,
            genetic_config=genetic_config,
            cost_function=lambda assignment: graph_cost(
                layer_graph, assignment, wafer_config, sim),
        ).refine(initial_assignment=dp_result.assignment)
        assert fast.assignment == reference.assignment
        assert fast.cost == pytest.approx(reference.cost, rel=REL)
        assert fast.history == pytest.approx(reference.history, rel=REL)


class TestPlanCache:
    def test_repeat_analyze_hits_cache(self, gpt3_6b):
        cache = PlanCache()
        spec = ParallelSpec(dp=4, tatp=8)
        first = cache.analyze(gpt3_6b, spec)
        again = cache.analyze(gpt3_6b, spec)
        assert first is again
        assert (cache.hits, cache.misses) == (1, 1)

    def test_device_count_normalised(self, gpt3_6b):
        # Implicit (None) and explicit device counts describe the same plan
        # and must share one cache entry.
        cache = PlanCache()
        spec = ParallelSpec(dp=4, tatp=8)
        implicit = cache.analyze(gpt3_6b, spec)
        explicit = cache.analyze(gpt3_6b, spec, num_devices=spec.total_degree)
        assert implicit is explicit
        assert cache.misses == 1

    def test_distinct_variants_are_distinct_entries(self, gpt3_6b):
        cache = PlanCache()
        spec = ParallelSpec(dp=4, tatp=8)
        plain = cache.analyze(gpt3_6b, spec)
        checkpointed = cache.analyze(
            gpt3_6b, spec, activation_checkpointing=True)
        assert plain is not checkpointed
        assert cache.misses == 2

    def test_eviction_bound(self, gpt3_6b):
        cache = PlanCache(max_entries=1)
        cache.analyze(gpt3_6b, ParallelSpec(dp=4, tatp=8))
        cache.analyze(gpt3_6b, ParallelSpec(dp=32))
        cache.analyze(gpt3_6b, ParallelSpec(dp=4, tatp=8))
        assert len(cache) == 1
        assert cache.misses == 3

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)
