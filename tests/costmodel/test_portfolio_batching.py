"""Portfolio batching: subset gathers, shared tables, sweep bit-parity.

The batching layers of :mod:`repro.costmodel.portfolio` are pure
memoisation, so every test here is an exact-equality test — no tolerances:
a batched sweep must be indistinguishable from the per-point path it
replaces.
"""

import json

import numpy as np
import pytest

from repro.costmodel.portfolio import BatchedPlanService, PortfolioTables
from repro.costmodel.tables import CostTables
from repro.hardware.config import default_wafer_config
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.transformer import representative_layer_graph


@pytest.fixture(scope="module")
def candidates():
    return [
        ParallelSpec(dp=32),
        ParallelSpec(dp=4, tatp=8),
        ParallelSpec(dp=2, tp=2, tatp=8),
        ParallelSpec(fsdp=32),
        ParallelSpec(tp=8, sp=4),
        ParallelSpec(dp=2, cp=2, tp=8),
    ]


@pytest.fixture(scope="module")
def parent_tables(gpt3_6b, candidates):
    graph = representative_layer_graph(gpt3_6b)
    return CostTables(graph, candidates, default_wafer_config(),
                      SimulatorConfig())


@pytest.fixture(scope="module")
def fig13():
    from repro.api.portfolio import ensure_loaded, get_portfolio

    ensure_loaded()
    portfolio = get_portfolio("fig13").build(True)
    return portfolio, portfolio.expand()


class TestSubset:
    def test_gathered_cells_bit_identical_to_fresh_build(
            self, gpt3_6b, candidates, parent_tables):
        sub = [candidates[4], candidates[1], candidates[2]]
        child = parent_tables.subset(sub)
        fresh = CostTables(parent_tables.graph, sub, default_wafer_config(),
                           SimulatorConfig())
        assert child.candidates == sub
        np.testing.assert_array_equal(child.intra_matrix(),
                                      fresh.intra_matrix())
        for node in parent_tables.graph.nodes():
            np.testing.assert_array_equal(child.memory_row(node.node_id),
                                          fresh.memory_row(node.node_id))
            np.testing.assert_array_equal(
                child.reshard_matrix(node.node_id),
                fresh.reshard_matrix(node.node_id))

    def test_uncovered_candidate_rejected(self, parent_tables):
        with pytest.raises(ValueError, match="not covered"):
            parent_tables.subset([ParallelSpec(tatp=32)])


class TestPortfolioTables:
    def test_exact_candidate_match_returns_shared_tables(self, fig13):
        portfolio, points = fig13
        scenario = points[0].scenario
        model = scenario.workload.resolve()
        specs = [ParallelSpec(dp=32), ParallelSpec(fsdp=32)]
        tables = PortfolioTables()
        first = tables.tables_for(scenario, model, specs)
        second = tables.tables_for(scenario, model, specs)
        assert second is first
        assert tables.tables_misses == 1 and tables.tables_hits == 1

    def test_narrowed_candidates_reuse_parent_cells(self, fig13):
        _, points = fig13
        scenario = points[0].scenario
        model = scenario.workload.resolve()
        specs = [ParallelSpec(dp=32), ParallelSpec(fsdp=32),
                 ParallelSpec(tp=8, sp=4)]
        tables = PortfolioTables()
        parent = tables.tables_for(scenario, model, specs)
        parent.intra_matrix()
        child = tables.tables_for(scenario, model, specs[:2])
        assert tables.tables_hits == 1
        np.testing.assert_array_equal(child.intra_matrix(),
                                      parent.intra_matrix()[:, :2])

    def test_stats_shape(self):
        stats = PortfolioTables().stats()
        assert set(stats) == {"report_cache", "route_tables",
                              "solver_tables", "hardware_groups"}
        assert stats["solver_tables"] == {"hits": 0, "misses": 0,
                                          "entries": 0}


class TestBatchedSweepParity:
    def test_fig13_reduced_rows_bit_identical(self, fig13):
        """The tentpole contract: batched == per-point, byte for byte."""
        from repro.server.portfolio import run_portfolio_local

        portfolio, points = fig13
        baseline = run_portfolio_local(portfolio, jobs=1, points=points,
                                       batched=False)
        batched = run_portfolio_local(portfolio, jobs=1, points=points,
                                      batched=True)
        assert len(batched) == len(baseline) == len(points)
        base_payloads = [outcome.payload for outcome in baseline]
        batch_payloads = [outcome.payload for outcome in batched]
        assert batch_payloads == base_payloads
        assert (json.dumps(batch_payloads, sort_keys=True)
                == json.dumps(base_payloads, sort_keys=True))

    def test_batched_with_workers_rejected(self, fig13):
        from repro.server.portfolio import run_portfolio_local

        portfolio, points = fig13
        with pytest.raises(ValueError, match="in-process"):
            run_portfolio_local(portfolio, jobs=2, points=points,
                                batched=True)

    def test_batched_service_records_sharing(self, fig13):
        """Evaluating two overlapping points must hit every batching layer."""
        _, points = fig13
        service = BatchedPlanService()
        service.evaluate(points[0].scenario)
        service.evaluate(points[0].scenario)
        stats = service.stats()["portfolio"]
        assert stats["route_tables"]["hits"] > 0
        assert stats["report_cache"]["hits"] > 0
        assert stats["hardware_groups"] == 1
