"""Tests for ParallelSpec and the communication-task abstractions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallelism.comm import (
    CollectiveType,
    CommTask,
    collective_wire_bytes,
    merge_tasks,
)
from repro.parallelism.spec import ParallelSpec


class TestParallelSpec:
    def test_defaults_are_trivial(self):
        spec = ParallelSpec()
        assert spec.total_degree == 1
        assert spec.active_dimensions() == []

    def test_total_degree_is_product(self):
        spec = ParallelSpec(dp=2, tp=4, tatp=4)
        assert spec.total_degree == 32
        assert spec.intra_stage_degree == 32

    def test_pipeline_excluded_from_intra_stage(self):
        spec = ParallelSpec(dp=4, pp=2)
        assert spec.intra_stage_degree == 4
        assert spec.total_degree == 8
        assert spec.without_pipeline().pp == 1

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            ParallelSpec(dp=0)

    def test_sp_within_tp_requires_sp_one(self):
        with pytest.raises(ValueError):
            ParallelSpec(tp=4, sp=2, sp_within_tp=True)

    def test_effective_sp_follows_coupling(self):
        coupled = ParallelSpec(tp=8, sp_within_tp=True)
        assert coupled.effective_sp == 8
        assert coupled.sequence_split_degree == 8
        standalone = ParallelSpec(sp=4)
        assert standalone.effective_sp == 4

    def test_validate_for(self):
        spec = ParallelSpec(dp=4, tatp=8)
        spec.validate_for(32)
        with pytest.raises(ValueError):
            spec.validate_for(16)

    def test_fits(self):
        spec = ParallelSpec(dp=4)
        assert spec.fits(32)
        assert not spec.fits(6)

    def test_label_mentions_extras_only_when_used(self):
        assert "pp" not in ParallelSpec(dp=2).label()
        assert "pp=2" in ParallelSpec(dp=2, pp=2).label()
        assert "fsdp=4" in ParallelSpec(fsdp=4).label()

    def test_with_degree(self):
        spec = ParallelSpec(dp=4).with_degree("tatp", 8)
        assert spec.tatp == 8 and spec.dp == 4
        with pytest.raises(KeyError):
            spec.with_degree("unknown", 2)

    def test_from_tuple_matches_paper_notation(self):
        spec = ParallelSpec.from_tuple(2, 1, 1, 16)
        assert (spec.dp, spec.tp, spec.sp, spec.tatp) == (2, 1, 1, 16)

    def test_enumerate_covers_all_factorizations(self):
        specs = list(ParallelSpec.enumerate(8, dimensions=("dp", "tatp")))
        pairs = {(spec.dp, spec.tatp) for spec in specs}
        assert pairs == {(1, 8), (2, 4), (4, 2), (8, 1)}

    @given(st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=8, deadline=None)
    def test_enumerate_products_match_device_count(self, devices):
        for spec in ParallelSpec.enumerate(devices):
            assert spec.total_degree == devices

    def test_data_parallel_degree_combines_dp_and_fsdp(self):
        spec = ParallelSpec(dp=2, fsdp=4)
        assert spec.data_parallel_degree == 8


class TestCollectiveWireBytes:
    def test_allreduce_volume(self):
        wire = collective_wire_bytes(CollectiveType.ALL_REDUCE, 1000, 4)
        assert wire == pytest.approx(2 * 3 / 4 * 1000)

    def test_allgather_volume(self):
        wire = collective_wire_bytes(CollectiveType.ALL_GATHER, 1000, 4)
        assert wire == pytest.approx(3 / 4 * 1000)

    def test_p2p_volume_is_buffer(self):
        assert collective_wire_bytes(CollectiveType.P2P, 1000, 2) == 1000

    def test_single_member_group_is_free(self):
        assert collective_wire_bytes(CollectiveType.ALL_REDUCE, 1000, 1) == 0

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError):
            collective_wire_bytes(CollectiveType.ALL_REDUCE, -1, 4)

    @given(st.integers(2, 64), st.floats(1, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_allreduce_is_twice_allgather(self, group, buffer_bytes):
        ar = collective_wire_bytes(CollectiveType.ALL_REDUCE, buffer_bytes, group)
        ag = collective_wire_bytes(CollectiveType.ALL_GATHER, buffer_bytes, group)
        assert ar == pytest.approx(2 * ag)


class TestCommTask:
    def test_total_bytes(self):
        task = CommTask(CollectiveType.P2P, group_size=2, bytes_per_device=100)
        assert task.total_bytes == 200

    def test_trivial_tasks(self):
        assert CommTask(CollectiveType.P2P, 1, 100).is_trivial
        assert CommTask(CollectiveType.P2P, 2, 0).is_trivial
        assert not CommTask(CollectiveType.P2P, 2, 10).is_trivial

    def test_validation(self):
        with pytest.raises(ValueError):
            CommTask(CollectiveType.P2P, 0, 10)
        with pytest.raises(ValueError):
            CommTask(CollectiveType.P2P, 2, -10)

    def test_scaled_multiplies_count(self):
        task = CommTask(CollectiveType.P2P, 2, 10, count=3)
        assert task.scaled(2).count == 6

    def test_merge_tasks_sums_counts(self):
        task = CommTask(CollectiveType.P2P, 2, 10, count=1, label="x")
        merged = merge_tasks([task, task.scaled(2)])
        assert len(merged) == 1
        assert merged[0].count == 3

    def test_merge_keeps_distinct_tasks(self):
        a = CommTask(CollectiveType.P2P, 2, 10, label="a")
        b = CommTask(CollectiveType.ALL_REDUCE, 4, 10, label="b")
        assert len(merge_tasks([a, b])) == 2
