"""Tests for TSPP/TATP: Algorithm 1, the naive ring, and the stream policy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallelism.tatp import (
    StreamChoice,
    TATPCharacteristics,
    bidirectional_schedule,
    naive_ring_schedule,
    select_stream_tensor,
)


class TestBidirectionalSchedule:
    @pytest.mark.parametrize("degree", [1, 2, 3, 4, 5, 8, 16])
    def test_schedule_is_valid(self, degree):
        schedule = bidirectional_schedule(degree)
        schedule.validate()
        assert schedule.num_rounds == degree

    @pytest.mark.parametrize("degree", [2, 4, 8, 16, 32])
    def test_all_transfers_are_one_hop(self, degree):
        schedule = bidirectional_schedule(degree)
        assert schedule.max_hops_per_transfer() <= 1

    def test_each_rank_computes_one_distinct_output_per_round(self):
        schedule = bidirectional_schedule(8)
        for round_compute in schedule.compute:
            assert len(round_compute) == 8
        for rank in range(8):
            seen = [schedule.compute[t][rank] for t in range(8)]
            assert sorted(seen) == list(range(8))

    def test_lower_half_ascending_upper_half_descending(self):
        schedule = bidirectional_schedule(4)
        assert [schedule.compute[t][0] for t in range(4)] == [0, 1, 2, 3]
        assert [schedule.compute[t][3] for t in range(4)] == [3, 2, 1, 0]

    def test_at_most_two_sends_per_rank_per_round(self):
        schedule = bidirectional_schedule(16)
        assert schedule.sends_per_rank_per_round() <= 2

    def test_degenerate_degree_one(self):
        schedule = bidirectional_schedule(1)
        assert schedule.num_rounds == 1
        assert schedule.transfers == [[]]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            bidirectional_schedule(0)

    @given(st.integers(1, 24))
    @settings(max_examples=24, deadline=None)
    def test_validate_never_fails_for_any_degree(self, degree):
        schedule = bidirectional_schedule(degree)
        schedule.validate()
        assert schedule.max_hops_per_transfer() <= 1

    def test_validate_catches_corrupted_schedule(self):
        schedule = bidirectional_schedule(4)
        schedule.compute[1][0] = schedule.compute[0][0]
        with pytest.raises(ValueError):
            schedule.validate()


class TestNaiveRingSchedule:
    @pytest.mark.parametrize("degree", [2, 4, 8])
    def test_naive_ring_is_functionally_correct(self, degree):
        schedule = naive_ring_schedule(degree)
        schedule.validate()

    def test_naive_ring_needs_wraparound_hop(self):
        schedule = naive_ring_schedule(8)
        # The rank-0 -> rank-7 wrap is a 7-position jump on a linear chain.
        assert schedule.max_hops_per_transfer() == 7

    def test_tatp_strictly_improves_worst_hop(self):
        for degree in (4, 8, 16):
            naive = naive_ring_schedule(degree)
            tatp = bidirectional_schedule(degree)
            assert tatp.max_hops_per_transfer() < naive.max_hops_per_transfer()


class TestStreamPolicy:
    def test_smaller_operand_is_streamed(self):
        assert select_stream_tensor(100, 300) is StreamChoice.WEIGHTS
        assert select_stream_tensor(300, 100) is StreamChoice.ACTIVATIONS

    def test_tie_prefers_weights(self):
        assert select_stream_tensor(100, 100) is StreamChoice.WEIGHTS

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            select_stream_tensor(-1, 10)

    def test_long_sequence_prefers_weights(self):
        # Llama2-7B style: activations ~3x larger than weights at 14k tokens.
        weight_bytes = 4096 * 11008 * 2
        activation_bytes = 14336 * 4096 * 2 * 3
        assert select_stream_tensor(weight_bytes, activation_bytes) is \
            StreamChoice.WEIGHTS


class TestTATPCharacteristics:
    def test_memory_and_flops_scale_inversely_with_degree(self):
        small = TATPCharacteristics.for_operator(2, 1e12, 1e9, 4e9, 4e9)
        large = TATPCharacteristics.for_operator(8, 1e12, 1e9, 4e9, 4e9)
        assert large.memory_bytes_per_die == pytest.approx(
            small.memory_bytes_per_die / 4)
        assert large.flops_per_die == pytest.approx(small.flops_per_die / 4)

    def test_no_replication_memory(self):
        chars = TATPCharacteristics.for_operator(4, 1e12, 1e9, 2e9, 2e9)
        assert chars.memory_bytes_per_die == pytest.approx((1e9 + 2e9 + 2e9) / 4)

    def test_stream_choice_recorded(self):
        chars = TATPCharacteristics.for_operator(4, 1e12, 1e9, 4e9, 4e9)
        assert chars.stream_choice is StreamChoice.WEIGHTS
        assert chars.streamed_bytes_per_round == pytest.approx(1e9 / 4)

    def test_rounds_equal_degree(self):
        assert TATPCharacteristics.for_operator(16, 1e12, 1e9, 1e9, 1e9).num_rounds == 16

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            TATPCharacteristics.for_operator(0, 1e12, 1e9, 1e9, 1e9)

    @given(st.integers(1, 64), st.floats(1e6, 1e12), st.floats(1e3, 1e9),
           st.floats(1e3, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_per_round_quantities_consistent(self, degree, flops, weights, acts):
        chars = TATPCharacteristics.for_operator(degree, flops, weights, acts, acts)
        assert chars.flops_per_round * degree == pytest.approx(chars.flops_per_die)
        streamed_total = min(weights, acts)
        assert chars.streamed_bytes_per_round * degree == pytest.approx(streamed_total)
