"""Tests for the strategy analysis (memory footprints and communication tasks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallelism.baselines import (
    BaselineScheme,
    candidate_specs,
    fsdp_spec,
    megatron1_spec,
    mesp_spec,
)
from repro.parallelism.comm import CollectiveType
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_layer, analyze_model
from repro.workloads.models import get_model


class TestMemoryFootprints:
    def test_megatron_tp_replicates_activations(self, gpt3_6b):
        tp_only = analyze_model(gpt3_6b, ParallelSpec(tp=8), num_devices=8)
        ideal = analyze_model(gpt3_6b, ParallelSpec(tatp=8), num_devices=8)
        # TATP shards both operands, so its activation footprint is lower.
        assert tp_only.memory.activations > ideal.memory.activations

    def test_sp_within_tp_removes_replication(self, gpt3_6b):
        plain_tp = analyze_model(gpt3_6b, ParallelSpec(tp=8), num_devices=8)
        mesp = analyze_model(
            gpt3_6b, ParallelSpec(tp=8, sp_within_tp=True), num_devices=8)
        assert mesp.memory.activations < plain_tp.memory.activations

    def test_weights_shard_by_tp_and_tatp_but_not_dp(self, gpt3_6b):
        dp = analyze_model(gpt3_6b, ParallelSpec(dp=8), num_devices=8)
        tp = analyze_model(gpt3_6b, ParallelSpec(tp=8), num_devices=8)
        tatp = analyze_model(gpt3_6b, ParallelSpec(tatp=8), num_devices=8)
        assert dp.memory.weights == pytest.approx(8 * tp.memory.weights)
        assert tp.memory.weights == pytest.approx(tatp.memory.weights)

    def test_zero1_shards_optimizer_across_dp(self, gpt3_6b):
        zero1 = analyze_model(
            gpt3_6b, ParallelSpec(dp=8, zero1_optimizer=True), num_devices=8)
        replicated = analyze_model(
            gpt3_6b, ParallelSpec(dp=8, zero1_optimizer=False), num_devices=8)
        assert replicated.memory.optimizer == pytest.approx(
            8 * zero1.memory.optimizer)

    def test_fsdp_shards_everything(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(fsdp=32), num_devices=32)
        single = analyze_model(gpt3_6b, ParallelSpec(), num_devices=1)
        assert plan.memory.weights == pytest.approx(single.memory.weights / 32)
        assert plan.memory.optimizer == pytest.approx(single.memory.optimizer / 32)

    def test_activation_checkpointing_reduces_memory_increases_flops(self, gpt3_6b):
        spec = ParallelSpec(fsdp=32)
        plain = analyze_model(gpt3_6b, spec, num_devices=32)
        checkpointed = analyze_model(gpt3_6b, spec, num_devices=32,
                                     activation_checkpointing=True)
        assert checkpointed.memory.activations < plain.memory.activations
        assert checkpointed.flops_per_device > plain.flops_per_device

    def test_flops_split_evenly(self, gpt3_6b):
        plan8 = analyze_model(gpt3_6b, ParallelSpec(tatp=8), num_devices=8)
        plan32 = analyze_model(gpt3_6b, ParallelSpec(tatp=32), num_devices=32)
        assert plan8.flops_per_device == pytest.approx(4 * plan32.flops_per_device)

    @given(st.sampled_from([1, 2, 4, 8]), st.sampled_from([1, 2, 4]),
           st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_memory_never_negative_and_monotone_in_tatp(self, tatp, dp, tp):
        model = get_model("gpt3-6.7b")
        spec = ParallelSpec(dp=dp, tp=tp, tatp=tatp)
        plan = analyze_model(model, spec)
        assert plan.memory.total > 0
        doubled = analyze_model(model, spec.with_degree("tatp", tatp * 2))
        assert doubled.memory.total <= plan.memory.total + 1e-6


class TestCommunicationTasks:
    def test_pure_dp_has_single_gradient_allreduce(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=8), num_devices=8)
        labels = [task.label for task in plan.comm_tasks]
        assert labels == ["dp-grad-allreduce"]
        assert plan.overlap_tasks == []

    def test_tp_adds_activation_collectives_scaled_by_layers(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(tp=8), num_devices=8)
        tp_tasks = [t for t in plan.comm_tasks if t.dimension == "tp"]
        assert len(tp_tasks) == 1
        assert tp_tasks[0].count == pytest.approx(4 * gpt3_6b.num_layers)

    def test_fsdp_gathers_weights_twice_per_layer(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(fsdp=8), num_devices=8)
        gather = next(t for t in plan.comm_tasks
                      if t.label == "fsdp-weight-allgather")
        scatter = next(t for t in plan.comm_tasks
                       if t.label == "fsdp-grad-reducescatter")
        assert gather.count == pytest.approx(2 * gpt3_6b.num_layers)
        assert scatter.count == pytest.approx(gpt3_6b.num_layers)

    def test_tatp_stream_is_overlappable(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(tatp=8), num_devices=8)
        assert plan.comm_tasks == []
        assert len(plan.overlap_tasks) == 1
        stream = plan.overlap_tasks[0]
        assert stream.kind is CollectiveType.STREAM
        assert stream.overlappable
        assert plan.tatp_rounds_per_layer == 8

    def test_tatp_plus_dp_mixes_tasks(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tatp=8), num_devices=32)
        dims = {t.dimension for t in plan.all_tasks}
        assert dims == {"dp", "tatp"}

    def test_cp_adds_kv_allgather(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(cp=4), num_devices=4)
        assert any(t.dimension == "cp" for t in plan.comm_tasks)

    def test_sp_without_tp_gathers_sequence(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(sp=4), num_devices=4)
        assert any(t.label == "sp-sequence-allgather" for t in plan.comm_tasks)

    def test_pipeline_adds_p2p(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, pp=2), num_devices=8)
        assert any(t.dimension == "pp" for t in plan.comm_tasks)
        assert plan.num_microbatches > 1

    def test_tp_collective_volume_shrinks_with_dp(self, gpt3_6b):
        narrow = analyze_model(gpt3_6b, ParallelSpec(dp=4, tp=8), num_devices=32)
        wide = analyze_model(gpt3_6b, ParallelSpec(dp=1, tp=8), num_devices=8)
        narrow_tp = next(t for t in narrow.comm_tasks if t.dimension == "tp")
        wide_tp = next(t for t in wide.comm_tasks if t.dimension == "tp")
        assert narrow_tp.bytes_per_device < wide_tp.bytes_per_device

    def test_mismatched_device_count_rejected(self, gpt3_6b):
        with pytest.raises(ValueError):
            analyze_model(gpt3_6b, ParallelSpec(dp=4), num_devices=32)

    def test_analyze_layer_uses_single_layer(self, gpt3_6b):
        layer = analyze_layer(gpt3_6b, ParallelSpec(tp=8), num_devices=8)
        full = analyze_model(gpt3_6b, ParallelSpec(tp=8), num_devices=8)
        assert layer.flops_per_device < full.flops_per_device

    def test_breakdown_by_dimension(self, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tatp=8), num_devices=32)
        breakdown = plan.tasks_by_dimension()
        assert set(breakdown) == {"dp", "tatp"}
        assert all(value >= 0 for value in breakdown.values())


class TestBaselineSpecs:
    def test_megatron1_spec_replicates_optimizer(self):
        spec = megatron1_spec(32, tp=8)
        assert spec.dp == 4 and spec.tp == 8
        assert not spec.zero1_optimizer

    def test_mesp_spec_couples_sp(self):
        spec = mesp_spec(32, tp=8)
        assert spec.sp_within_tp
        assert spec.total_degree == 32

    def test_fsdp_spec_defaults_to_full_shard(self):
        spec = fsdp_spec(32)
        assert spec.fsdp == 32

    def test_invalid_divisions_rejected(self):
        with pytest.raises(ValueError):
            megatron1_spec(32, tp=5)
        with pytest.raises(ValueError):
            fsdp_spec(32, fsdp=5)

    @pytest.mark.parametrize("scheme", list(BaselineScheme))
    def test_candidates_fill_the_wafer(self, scheme):
        for spec in candidate_specs(scheme, 32, max_tp=8, max_tatp=32):
            assert spec.total_degree == 32

    def test_temp_space_includes_tatp(self):
        specs = candidate_specs(BaselineScheme.TEMP, 32)
        assert any(spec.tatp > 1 for spec in specs)

    def test_megatron_space_excludes_tatp_and_fsdp(self):
        specs = candidate_specs(BaselineScheme.MEGATRON1, 32)
        assert all(spec.tatp == 1 and spec.fsdp == 1 for spec in specs)

    def test_fsdp_space_has_no_tensor_parallelism(self):
        specs = candidate_specs(BaselineScheme.FSDP, 32)
        assert all(spec.tp == 1 for spec in specs)
        assert any(spec.fsdp == 32 for spec in specs)

    def test_pipeline_degrees_respected(self):
        specs = candidate_specs(BaselineScheme.TEMP, 64, pipeline_degrees=(2,))
        assert all(spec.pp == 2 for spec in specs)

    def test_no_duplicate_candidates(self):
        specs = candidate_specs(BaselineScheme.MESP, 32)
        keys = [(s.dp, s.tp, s.sp, s.cp, s.fsdp, s.tatp, s.pp, s.sp_within_tp)
                for s in specs]
        assert len(keys) == len(set(keys))
