"""Tests for the coordinate-based unified parallelism representation (Fig. 10)."""

import pytest

from repro.parallelism.representation import (
    DEFAULT_DIMENSION_ORDER,
    SubTensorCoordinate,
    build_parallel_groups,
    build_unified_mapping,
)
from repro.parallelism.spec import ParallelSpec


class TestParallelGroups:
    def test_fig10_example_groups(self):
        """DP=2 x TATP=2 on four dies: DP groups {0,2},{1,3}; TATP {0,1},{2,3}."""
        spec = ParallelSpec(dp=2, tatp=2)
        groups = build_parallel_groups(spec, [0, 1, 2, 3])
        assert sorted(map(sorted, groups["dp"])) == [[0, 2], [1, 3]]
        assert sorted(map(sorted, groups["tatp"])) == [[0, 1], [2, 3]]

    def test_innermost_dimension_gets_consecutive_dies(self):
        spec = ParallelSpec(dp=2, tatp=4)
        groups = build_parallel_groups(spec, list(range(8)))
        assert sorted(map(sorted, groups["tatp"])) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_custom_order_changes_nesting(self):
        spec = ParallelSpec(dp=2, tatp=4)
        order = ("tatp", "fsdp", "cp", "sp", "tp", "dp")
        groups = build_parallel_groups(spec, list(range(8)), order=order)
        assert sorted(map(sorted, groups["dp"])) == [
            [0, 1], [2, 3], [4, 5], [6, 7]]

    def test_trivial_dimensions_have_no_groups(self):
        spec = ParallelSpec(dp=4)
        groups = build_parallel_groups(spec, list(range(4)))
        assert groups["tp"] == []
        assert len(groups["dp"]) == 1

    def test_wrong_die_count_rejected(self):
        with pytest.raises(ValueError):
            build_parallel_groups(ParallelSpec(dp=4), [0, 1])

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            build_parallel_groups(ParallelSpec(dp=2), [0, 1], order=("dp",))

    def test_groups_partition_the_dies(self):
        spec = ParallelSpec(dp=2, tp=2, tatp=2)
        dies = list(range(8))
        groups = build_parallel_groups(spec, dies)
        for dimension in ("dp", "tp", "tatp"):
            flattened = sorted(die for group in groups[dimension] for die in group)
            assert flattened == dies


class TestUnifiedMapping:
    def test_fig10_tensor_allocation(self):
        """DP=2, TATP=2 on 4 dies: inputs all distinct, weights replicated per DP."""
        mapping = build_unified_mapping(ParallelSpec(dp=2, tatp=2), [0, 1, 2, 3])
        assert mapping.num_rounds == 2
        assert not mapping.has_replication("input")
        assert mapping.has_replication("weight")

    def test_pure_tatp_has_no_replication_at_all(self):
        mapping = build_unified_mapping(ParallelSpec(tatp=4), [0, 1, 2, 3])
        assert not mapping.has_replication("input")
        assert not mapping.has_replication("weight")

    def test_megatron_tp_replicates_inputs(self):
        mapping = build_unified_mapping(ParallelSpec(tp=4), [0, 1, 2, 3])
        assert mapping.has_replication("input")
        assert not mapping.has_replication("weight")

    def test_compute_assignment_covers_all_weight_slots(self):
        mapping = build_unified_mapping(ParallelSpec(tatp=4), [0, 1, 2, 3])
        for die in range(4):
            slots = [mapping.compute_assignment[r][die].intermediate
                     for r in range(4)]
            assert sorted(slots) == [0, 1, 2, 3]

    def test_resident_coordinates_listed(self):
        mapping = build_unified_mapping(ParallelSpec(dp=2, tatp=2), [0, 1, 2, 3])
        coords = mapping.resident_coordinates(0, round_index=0)
        tensors = {coord.tensor for coord in coords}
        assert tensors == {"input", "weight"}

    def test_coordinate_tuple_roundtrip(self):
        coord = SubTensorCoordinate("weight", hidden=2, intermediate=3)
        assert coord.as_tuple() == ("weight", 0, 0, 2, 3)

    def test_dimension_order_constant_covers_all_intra_dims(self):
        assert set(DEFAULT_DIMENSION_ORDER) == {"dp", "fsdp", "cp", "sp", "tp", "tatp"}
