"""Shared pytest fixtures.

The ``src`` layout is importable after ``pip install -e .`` (or
``python setup.py develop``); the path insertion below keeps the suite
runnable from a plain checkout as well.
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.hardware.config import default_wafer_config  # noqa: E402
from repro.hardware.wafer import WaferScaleChip  # noqa: E402
from repro.simulation.config import SimulatorConfig  # noqa: E402
from repro.workloads.models import get_model  # noqa: E402


@pytest.fixture(scope="session")
def wafer() -> WaferScaleChip:
    """The default 4x8 Table I wafer."""
    return WaferScaleChip()


@pytest.fixture(scope="session")
def small_wafer() -> WaferScaleChip:
    """A small 2x4 wafer for fast mapping/simulation tests."""
    return WaferScaleChip(default_wafer_config(rows=2, cols=4))


@pytest.fixture(scope="session")
def sim_config() -> SimulatorConfig:
    """Default simulator knobs."""
    return SimulatorConfig()


@pytest.fixture(scope="session")
def gpt3_6b():
    """The GPT-3 6.7B model configuration."""
    return get_model("gpt3-6.7b")


@pytest.fixture(scope="session")
def llama70b():
    """The Llama3 70B model configuration."""
    return get_model("llama3-70b")


@pytest.fixture(scope="session")
def tiny_model():
    """A deliberately small model for fast end-to-end tests."""
    return get_model("gpt3-6.7b").with_overrides(
        batch_size=8, seq_length=512, num_layers=2)
