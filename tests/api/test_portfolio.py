"""Tests of the typed Portfolio spec: serde, expansion, registry."""

import json

import pytest

from repro.api.portfolio import (
    Portfolio,
    PortfolioAxis,
    PortfolioError,
    get_portfolio,
    portfolio_from_scenarios,
    portfolio_names,
)
from repro.api.scenario import SCHEMA_VERSION, Scenario, WorkloadSpec


def _portfolio(**overrides):
    """A small two-axis cartesian portfolio."""
    kwargs = dict(
        name="demo",
        axes=(
            PortfolioAxis(name="model", path="workload.model",
                          values=("gpt3-6.7b", "llama3-70b")),
            PortfolioAxis(name="rows", path="hardware.rows", values=(2, 4)),
        ),
    )
    kwargs.update(overrides)
    return Portfolio(**kwargs)


class TestExpansion:
    def test_cartesian_order_first_axis_outermost(self):
        points = _portfolio().expand()
        assert [point.params for point in points] == [
            {"model": "gpt3-6.7b", "rows": 2},
            {"model": "gpt3-6.7b", "rows": 4},
            {"model": "llama3-70b", "rows": 2},
            {"model": "llama3-70b", "rows": 4},
        ]
        assert points[0].scenario.workload.model == "gpt3-6.7b"
        assert points[3].scenario.hardware.rows == 4
        assert [point.index for point in points] == [0, 1, 2, 3]

    def test_zip_advances_axes_together(self):
        portfolio = _portfolio(expansion="zip")
        points = portfolio.expand()
        assert [point.params for point in points] == [
            {"model": "gpt3-6.7b", "rows": 2},
            {"model": "llama3-70b", "rows": 4},
        ]

    def test_zip_rejects_unequal_axes(self):
        with pytest.raises(PortfolioError, match="equal lengths"):
            _portfolio(
                expansion="zip",
                axes=(
                    PortfolioAxis(name="model", path="workload.model",
                                  values=("gpt3-6.7b",)),
                    PortfolioAxis(name="rows", path="hardware.rows",
                                  values=(2, 4)),
                ))

    def test_section_axis_swaps_the_whole_section(self):
        portfolio = Portfolio(
            name="sections",
            axes=(
                PortfolioAxis(
                    name="solver", path="solver",
                    values=({"scheme": "mesp", "engine": "gmap"},),
                    labels=("MeSP+GMap",)),
            ),
            base=Scenario(workload=WorkloadSpec(model="gpt3-6.7b")),
        )
        (point,) = portfolio.expand()
        assert point.scenario.solver.scheme == "mesp"
        assert point.scenario.workload.model == "gpt3-6.7b"
        assert point.params == {"solver": "MeSP+GMap"}

    def test_annotation_axis_records_without_touching_the_scenario(self):
        portfolio = _portfolio(
            expansion="zip",
            axes=(
                PortfolioAxis(name="model", path="workload.model",
                              values=("gpt3-6.7b", "llama3-70b")),
                PortfolioAxis(name="label", values=("small", "large")),
            ))
        points = portfolio.expand()
        assert points[1].params == {"model": "llama3-70b", "label": "large"}
        assert points[1].scenario.hardware.rows == 4  # base untouched

    def test_unrecorded_axis_applies_but_stays_out_of_params(self):
        portfolio = _portfolio(
            expansion="zip",
            axes=(
                PortfolioAxis(name="model", path="workload.model",
                              values=("gpt3-6.7b", "llama3-70b")),
                PortfolioAxis(name="rows", path="hardware.rows",
                              values=(2, 4), record=False),
            ))
        points = portfolio.expand()
        assert points[1].params == {"model": "llama3-70b"}
        assert points[1].scenario.hardware.rows == 4

    def test_invalid_point_is_a_portfolio_error_naming_the_point(self):
        portfolio = _portfolio(
            axes=(
                PortfolioAxis(name="rows", path="hardware.rows",
                              values=(2, -1)),
            ),
            base=Scenario(workload=WorkloadSpec(model="gpt3-6.7b")))
        with pytest.raises(PortfolioError, match="point 1"):
            portfolio.expand()

    def test_max_points_cap(self):
        with pytest.raises(PortfolioError, match="over the cap"):
            _portfolio().expand(max_points=3)
        assert len(_portfolio().expand(max_points=4)) == 4

    def test_num_points(self):
        assert _portfolio().num_points() == 4
        assert _portfolio(expansion="zip").num_points() == 2

    def test_duplicate_points_share_a_cache_key(self):
        portfolio = _portfolio(
            expansion="zip",
            axes=(
                PortfolioAxis(name="model", path="workload.model",
                              values=("gpt3-6.7b", "gpt3-6.7b")),
                PortfolioAxis(name="step", values=(1, 2)),
            ))
        first, second = portfolio.expand()
        assert first.cache_key() == second.cache_key()
        assert first.params != second.params


class TestValidation:
    def test_unknown_field_path_rejected(self):
        with pytest.raises(PortfolioError, match="names no workload field"):
            PortfolioAxis(name="bad", path="workload.nope", values=(1,))

    def test_unknown_section_rejected(self):
        with pytest.raises(PortfolioError, match="does not start with"):
            PortfolioAxis(name="bad", path="simulator.mfu", values=(1,))

    def test_section_axis_requires_object_values(self):
        with pytest.raises(PortfolioError, match="must be an object"):
            PortfolioAxis(name="bad", path="solver", values=("temp",))

    def test_empty_axis_rejected(self):
        with pytest.raises(PortfolioError, match="no values"):
            PortfolioAxis(name="empty", values=())

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(PortfolioError, match="labels"):
            PortfolioAxis(name="bad", values=(1, 2), labels=("one",))

    def test_pointless_axis_rejected(self):
        with pytest.raises(PortfolioError, match="neither applies"):
            PortfolioAxis(name="bad", values=(1,), path=None, record=False)

    def test_non_json_value_rejected(self):
        with pytest.raises(PortfolioError, match="not strict JSON"):
            PortfolioAxis(name="bad", values=(float("inf"),))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(PortfolioError, match="duplicate axis names"):
            _portfolio(axes=(
                PortfolioAxis(name="model", path="workload.model",
                              values=("gpt3-6.7b",)),
                PortfolioAxis(name="model", values=("again",)),
            ))

    def test_no_axes_rejected(self):
        with pytest.raises(PortfolioError, match="no axes"):
            Portfolio(name="empty", axes=())

    def test_unknown_expansion_rejected(self):
        with pytest.raises(PortfolioError, match="expansion"):
            _portfolio(expansion="diagonal")


class TestSerde:
    def test_round_trip_is_lossless(self):
        # Exercise every axis feature: labels, unrecorded axes, annotation
        # axes, and a non-default expansion mode.
        portfolio = _portfolio(
            description="round trip",
            axes=(
                PortfolioAxis(name="model", path="workload.model",
                              values=("gpt3-6.7b", "llama3-70b"),
                              labels=("small", "large")),
                PortfolioAxis(name="rows", path="hardware.rows",
                              values=(2, 4), record=False),
                PortfolioAxis(name="note", values=("a", "b")),
            ),
            expansion="zip")
        parsed = Portfolio.from_dict(portfolio.to_dict())
        assert parsed == portfolio
        assert Portfolio.from_json(portfolio.to_json()) == portfolio
        assert (json.dumps(parsed.to_dict(), sort_keys=True)
                == json.dumps(portfolio.to_dict(), sort_keys=True))

    def test_unknown_keys_rejected_at_every_level(self):
        document = _portfolio().to_dict()
        document["bogus"] = 1
        with pytest.raises(PortfolioError, match="unknown portfolio keys"):
            Portfolio.from_dict(document)
        document = _portfolio().to_dict()
        document["axes"][0]["bogus"] = 1
        with pytest.raises(PortfolioError, match="unknown portfolio axis"):
            Portfolio.from_dict(document)

    def test_missing_schema_version_rejected(self):
        document = _portfolio().to_dict()
        del document["schema_version"]
        with pytest.raises(PortfolioError, match="schema_version"):
            Portfolio.from_dict(document)

    def test_wrong_schema_version_rejected(self):
        document = _portfolio().to_dict()
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(PortfolioError, match="not supported"):
            Portfolio.from_dict(document)

    def test_invalid_base_is_a_portfolio_error(self):
        # A bad base section must surface as PortfolioError (what the CLI
        # and the HTTP 400 handler catch), not a bare ScenarioError.
        document = _portfolio().to_dict()
        document["base"] = {"schema_version": SCHEMA_VERSION,
                            "workload": {"modle": "typo"}}
        with pytest.raises(PortfolioError, match="invalid portfolio base"):
            Portfolio.from_dict(document)
        document["base"] = "not an object"
        with pytest.raises(PortfolioError, match="invalid portfolio base"):
            Portfolio.from_dict(document)

    def test_non_string_axis_path_is_a_portfolio_error(self):
        with pytest.raises(PortfolioError, match="path must be a string"):
            PortfolioAxis(name="bad", values=(1,), path=123)
        document = _portfolio().to_dict()
        document["axes"][0]["path"] = 123
        with pytest.raises(PortfolioError, match="path must be a string"):
            Portfolio.from_dict(document)

    def test_non_object_document_rejected(self):
        with pytest.raises(PortfolioError, match="JSON object"):
            Portfolio.from_dict([1, 2])
        with pytest.raises(PortfolioError, match="invalid portfolio JSON"):
            Portfolio.from_json("{broken")

    def test_base_scenario_round_trips(self):
        portfolio = _portfolio(
            base=Scenario(workload=WorkloadSpec(model="llama2-7b",
                                                batch_size=16)))
        parsed = Portfolio.from_dict(portfolio.to_dict())
        assert parsed.base.workload.batch_size == 16


class TestScenarioListPortfolio:
    def test_points_mirror_the_scenario_list(self):
        scenarios = [
            Scenario(workload=WorkloadSpec(model="gpt3-6.7b")),
            Scenario(workload=WorkloadSpec(model="llama3-70b")),
        ]
        portfolio = portfolio_from_scenarios("adhoc", scenarios)
        points = portfolio.expand()
        assert [point.scenario for point in points] == scenarios
        assert [point.params for point in points] == [
            {"scenario": 0}, {"scenario": 1}]

    def test_empty_list_rejected(self):
        with pytest.raises(PortfolioError, match="no scenarios"):
            portfolio_from_scenarios("empty", [])


class TestRegistry:
    def test_figure_portfolios_are_registered(self):
        names = portfolio_names()
        for figure in ("fig13", "fig17", "fig19"):
            assert figure in names
            template = get_portfolio(figure)
            assert template.figure == figure
            assert template.row is not None

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="fig13"):
            get_portfolio("not-a-portfolio")

    def test_registered_portfolio_documents_round_trip(self):
        for name in portfolio_names():
            portfolio = get_portfolio(name).build(True)
            assert Portfolio.from_json(portfolio.to_json()) == portfolio
