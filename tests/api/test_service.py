"""PlanService dispatch, PlanResult schema, and deprecation-shim parity."""

import math

import pytest

from repro.api.scenario import (
    HardwareSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    WorkloadSpec,
)
from repro.api.service import PlanResult, PlanService, validate_result_payload
from repro.core.framework import TEMP, evaluate_baseline
from repro.core.multiwafer import evaluate_multiwafer
from repro.parallelism.baselines import BaselineScheme
from repro.workloads.models import get_model


def _scenario(model="gpt3-6.7b", **solver_kwargs) -> Scenario:
    return Scenario(workload=WorkloadSpec(model=model),
                    solver=SolverSpec(**solver_kwargs))


class TestDeprecatedShims:
    """The loose-kwargs entry points warn but stay bit-identical."""

    def test_evaluate_baseline_warns_and_matches_service(self, gpt3_6b):
        with pytest.warns(DeprecationWarning, match="evaluate_baseline"):
            old = evaluate_baseline(BaselineScheme.MESP, "gmap", gpt3_6b)
        new = PlanService().evaluate_raw(
            _scenario(scheme="mesp", engine="gmap"))
        assert old.best_spec == new.best_spec
        assert old.report.step_time == new.report.step_time
        assert old.report.memory.total == new.report.memory.total
        assert old.candidates_evaluated == new.candidates_evaluated
        assert sorted(old.all_reports) == sorted(new.all_reports)

    def test_temp_warns_and_matches_framework_scenario(self, gpt3_6b):
        with pytest.warns(DeprecationWarning, match="TEMP"):
            old = TEMP().optimize(gpt3_6b)
        new = PlanService().evaluate_raw(
            Scenario(workload=WorkloadSpec(model="gpt3-6.7b"),
                     solver=SolverSpec.for_framework()))
        assert old.best_spec == new.best_spec
        assert old.report.step_time == new.report.step_time
        assert old.report.throughput == new.report.throughput

    def test_evaluate_multiwafer_warns_and_matches_service(self):
        model = get_model("gpt3-175b")
        with pytest.warns(DeprecationWarning, match="evaluate_multiwafer"):
            old = evaluate_multiwafer(BaselineScheme.TEMP, "tcme", model, 2,
                                      num_microbatches=8)
        new = PlanService().evaluate_raw(Scenario(
            workload=WorkloadSpec(model="gpt3-175b"),
            hardware=HardwareSpec(num_wafers=2, num_microbatches=8),
            solver=SolverSpec.for_framework()))
        assert old.best_spec == new.best_spec
        assert old.step_time == new.step_time
        assert old.bubble_time == new.bubble_time


class TestDispatch:
    @pytest.fixture(scope="class")
    def service(self):
        return PlanService()

    def test_single_wafer_search(self, service):
        result = service.evaluate(_scenario(scheme="fsdp", engine="smap"))
        assert result.kind == "single_wafer"
        assert result.scheme == "fsdp" and result.engine == "smap"
        assert not result.oom
        assert result.step_time > 0 and result.throughput > 0
        assert result.candidates_evaluated > 1

    def test_fixed_spec_skips_search(self, service):
        result = service.evaluate(
            _scenario(fixed_spec={"dp": 4, "tatp": 8}))
        assert result.kind == "fixed_spec"
        assert result.candidates_evaluated == 1
        assert result.spec == "(dp=4,tp=1,sp=1,tatp=8)"

    def test_multi_wafer_path(self, service):
        result = service.evaluate(Scenario(
            workload=WorkloadSpec(model="gpt3-175b"),
            hardware=HardwareSpec(num_wafers=2, num_microbatches=8),
            solver=SolverSpec.for_framework()))
        assert result.kind == "multi_wafer"
        assert result.num_wafers == 2
        assert result.pp_degree >= 2
        assert result.bubble_time >= 0

    def test_fault_path_zero_rate_is_lossless(self, service):
        result = service.evaluate(Scenario(
            workload=WorkloadSpec(model="gpt3-6.7b"),
            hardware=HardwareSpec(core_fault_rate=0.0),
            solver=SolverSpec(fixed_spec={"dp": 4, "tatp": 8})))
        assert result.kind == "fault"
        assert result.relative_throughput == pytest.approx(1.0)

    def test_fault_path_requires_fixed_spec(self, service):
        scenario = Scenario(workload=WorkloadSpec(model="gpt3-6.7b"),
                            hardware=HardwareSpec(link_fault_rate=0.2))
        with pytest.raises(ScenarioError, match="fixed_spec"):
            service.evaluate(scenario)

    def test_gpu_cluster_path(self, service):
        result = service.evaluate(Scenario(
            workload=WorkloadSpec(model="gpt3-6.7b"),
            hardware=HardwareSpec(platform="gpu_cluster"),
            solver=SolverSpec(scheme="mesp", engine="cluster")))
        assert result.kind == "gpu_cluster"
        assert not result.oom
        assert result.step_time > 0

    def test_wafer_cache_reuses_geometry(self, service):
        hardware = HardwareSpec(rows=2, cols=4)
        assert service.wafer_for(hardware) is service.wafer_for(hardware)

    def test_fault_path_honours_geometry(self, service):
        result = service.evaluate(Scenario(
            workload=WorkloadSpec(model="gpt3-6.7b"),
            hardware=HardwareSpec(rows=8, cols=10, core_fault_rate=0.0),
            solver=SolverSpec(fixed_spec={"dp": 10, "tatp": 8})))
        assert result.kind == "fault"
        assert result.relative_throughput == pytest.approx(1.0)

    def test_multi_wafer_path_honours_geometry(self, service):
        raw = service.evaluate_raw(Scenario(
            workload=WorkloadSpec(model="gpt3-6.7b", batch_size=8,
                                  seq_length=512, num_layers=2),
            hardware=HardwareSpec(rows=2, cols=2, num_wafers=2,
                                  num_microbatches=4),
            solver=SolverSpec(scheme="mesp", engine="gmap")))
        # Two 4-die wafers: the winning spec fills 8 devices, not 64.
        assert raw.num_wafers == 2
        assert raw.best_spec.total_degree == 8

    def test_inconsistent_hardware_combos_rejected(self):
        with pytest.raises(ScenarioError, match="multi-wafer"):
            HardwareSpec(num_wafers=2, link_fault_rate=0.4)
        with pytest.raises(ScenarioError, match="wafer platform"):
            HardwareSpec(platform="gpu_cluster", core_fault_rate=0.1)
        with pytest.raises(ScenarioError, match="num_wafers"):
            HardwareSpec(platform="gpu_cluster", num_wafers=2)
        with pytest.raises(ScenarioError, match="gpu_cluster comparator"):
            HardwareSpec(platform="gpu_cluster", rows=8, cols=8)
        with pytest.raises(ScenarioError, match="gpu_cluster comparator"):
            HardwareSpec(platform="gpu_cluster", hbm_capacity=1e11)

    def test_invalid_fixed_spec_degree_raises_scenario_error(self):
        with pytest.raises(ScenarioError, match="invalid fixed_spec"):
            SolverSpec(fixed_spec={"dp": 0}).resolve_fixed_spec()

    def test_shared_cache_is_pure_memoisation(self):
        scenario = _scenario(scheme="mesp", engine="smap")
        cold = PlanService().evaluate(scenario)
        service = PlanService()
        service.evaluate(_scenario(scheme="mesp", engine="gmap"))  # warm it
        warm = service.evaluate(scenario)
        assert cold == warm


class TestPlanResult:
    def test_to_dict_is_json_safe_and_validates(self):
        result = PlanService().evaluate(_scenario(max_candidates=4))
        payload = result.to_dict()
        assert validate_result_payload(payload) == []
        import json
        json.dumps(payload, allow_nan=False)

    def test_validator_flags_missing_and_extra_keys(self):
        result = PlanService().evaluate(_scenario(max_candidates=4))
        payload = result.to_dict()
        payload.pop("step_time")
        payload["surprise"] = 1
        problems = validate_result_payload(payload)
        assert any("missing" in problem for problem in problems)
        assert any("unexpected" in problem for problem in problems)

    def test_validator_flags_schema_version_and_kind(self):
        payload = PlanService().evaluate(_scenario(max_candidates=4)).to_dict()
        payload["schema_version"] = 99
        payload["kind"] = "quantum"
        problems = validate_result_payload(payload)
        assert any("schema_version" in problem for problem in problems)
        assert any("kind" in problem for problem in problems)

    def test_oom_step_time_serialises_as_null(self):
        result = PlanResult.from_gpu("m", "mesp", "cluster",
                                     float("inf"), 0.0, 3)
        assert result.oom
        assert result.to_dict()["step_time"] is None
        assert math.isinf(result.step_time)


class TestSolve:
    def test_solve_returns_flat_outcome(self, gpt3_6b):
        outcome = PlanService().solve(_scenario(ga_generations=4))
        assert outcome.model == "gpt3-6.7b"
        assert not outcome.oom
        assert outcome.candidates_considered > 0
        assert outcome.finalists_simulated >= 1
        assert outcome.evaluations > 0
        assert validate_result_payload.__name__  # smoke: module linkage

    def test_solve_rejects_gpu_platform(self):
        scenario = Scenario(workload=WorkloadSpec(model="gpt3-6.7b"),
                            hardware=HardwareSpec(platform="gpu_cluster"))
        with pytest.raises(ScenarioError, match="wafer platform"):
            PlanService().solve(scenario)
