"""Serde contract of the Scenario API (round-trip, strictness, versioning)."""

import json
from dataclasses import replace

import pytest

from repro.api.scenario import (
    SCHEMA_VERSION,
    HardwareSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    WorkloadSpec,
)
from repro.runner import registry
from repro.workloads.models import get_model


class TestRegistryGridRoundTrip:
    """Every registered figure's grids map to JSON-round-trippable scenarios."""

    @pytest.mark.parametrize("figure", registry.figure_ids())
    def test_every_figure_registers_a_scenario_builder(self, figure):
        assert registry.get_experiment(figure).scenario is not None

    @pytest.mark.parametrize("figure", registry.figure_ids())
    @pytest.mark.parametrize("reduced", [False, True])
    def test_default_and_reduced_grids_round_trip(self, figure, reduced):
        experiment = registry.get_experiment(figure)
        cells = experiment.cells(reduced)
        assert cells, f"{figure} has an empty grid"
        for params in cells:
            scenario = experiment.scenario_for(**params)
            document = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(document) == scenario, (figure, params)

    def test_unregistered_builder_raises(self):
        experiment = replace(registry.get_experiment("fig13"), scenario=None)
        with pytest.raises(ValueError, match="no scenario builder"):
            experiment.scenario_for(model="gpt3-6.7b", system="TEMP")


class TestRoundTrip:
    def test_json_string_round_trip(self):
        scenario = Scenario(
            workload=WorkloadSpec(model="gpt3-6.7b", seq_length=4096),
            hardware=HardwareSpec(rows=6, cols=8, num_wafers=2),
            solver=SolverSpec(scheme="mesp", engine="gmap",
                              pipeline_degrees=(1, 2),
                              fixed_spec={"dp": 4, "tatp": 8}),
        )
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_inline_hyperparams_round_trip_and_resolve(self):
        inline = get_model("gpt3-6.7b").to_dict()
        scenario = Scenario(workload=WorkloadSpec(hyperparams=inline))
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.workload.resolve() == get_model("gpt3-6.7b")

    def test_workload_overrides_apply(self):
        workload = WorkloadSpec(model="gpt3-6.7b", batch_size=8,
                                seq_length=512, num_layers=2)
        model = workload.resolve()
        assert (model.batch_size, model.seq_length, model.num_layers) == \
            (8, 512, 2)

    def test_missing_sections_take_defaults(self):
        scenario = Scenario.from_dict({"schema_version": SCHEMA_VERSION})
        assert scenario == Scenario()

    def test_pipeline_degrees_normalise_to_tuple(self):
        spec = SolverSpec(pipeline_degrees=[1, 2])
        assert spec.pipeline_degrees == (1, 2)


class TestStrictness:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys: extra"):
            Scenario.from_dict({"schema_version": SCHEMA_VERSION, "extra": 1})

    @pytest.mark.parametrize("section", ["workload", "hardware", "solver"])
    def test_unknown_section_key_rejected(self, section):
        document = {"schema_version": SCHEMA_VERSION, section: {"bogus": 1}}
        with pytest.raises(ScenarioError, match=f"unknown {section} keys"):
            Scenario.from_dict(document)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(ScenarioError, match="missing 'schema_version'"):
            Scenario.from_dict({"workload": {"model": "gpt3-6.7b"}})

    def test_schema_version_mismatch_rejected(self):
        document = Scenario().to_dict()
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ScenarioError, match="not supported"):
            Scenario.from_dict(document)

    def test_constructor_rejects_foreign_schema_version(self):
        with pytest.raises(ScenarioError, match="not supported"):
            Scenario(schema_version=SCHEMA_VERSION + 1)

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ScenarioError, match="JSON object"):
            Scenario.from_dict(["not", "a", "mapping"])

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError, match="invalid scenario JSON"):
            Scenario.from_json("{not json")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scheme"):
            SolverSpec(scheme="alpa")

    def test_unknown_fixed_spec_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fixed_spec keys"):
            SolverSpec(fixed_spec={"warp": 9})

    def test_unknown_platform_rejected(self):
        with pytest.raises(ScenarioError, match="platform"):
            HardwareSpec(platform="tpu_pod")

    def test_fault_rate_bounds(self):
        with pytest.raises(ScenarioError, match="link_fault_rate"):
            HardwareSpec(link_fault_rate=1.5)

    def test_workload_needs_exactly_one_source(self):
        with pytest.raises(ScenarioError, match="exactly one"):
            WorkloadSpec().resolve()
        with pytest.raises(ScenarioError, match="exactly one"):
            WorkloadSpec(model="gpt3-6.7b",
                         hyperparams={"name": "x"}).resolve()

    def test_unknown_model_name_mentions_zoo(self):
        with pytest.raises(ScenarioError, match="unknown model"):
            WorkloadSpec(model="gpt5").resolve()

    @pytest.mark.parametrize("section,raw", [
        ("hardware", {"rows": "4"}),          # TypeError inside validation
        ("hardware", {"num_wafers": None}),
        ("solver", {"pipeline_degrees": [1, "two"]}),
    ])
    def test_wrong_typed_field_values_become_scenario_errors(self, section,
                                                             raw):
        document = {"schema_version": SCHEMA_VERSION, section: raw}
        with pytest.raises(ScenarioError,
                           match=f"invalid {section} section"):
            Scenario.from_dict(document)


class TestResolution:
    def test_for_framework_dedups_scheme_resolution(self):
        full = SolverSpec.for_framework()
        assert (full.scheme, full.engine, full.max_tatp) == ("temp", "tcme", 32)
        no_tatp = SolverSpec.for_framework(enable_tatp=False)
        assert (no_tatp.scheme, no_tatp.max_tatp) == ("fsdp", 1)
        no_tcme = SolverSpec.for_framework(enable_tcme=False)
        assert no_tcme.engine == "smap"

    def test_hardware_resolves_geometry_overrides(self):
        hardware = HardwareSpec(rows=6, cols=8, d2d_bandwidth=2.0e12,
                                hbm_capacity=64.0 * 1024 ** 3)
        config = hardware.resolve_config()
        assert (config.rows, config.cols) == (6, 8)
        assert config.d2d.bandwidth == 2.0e12
        assert config.die.hbm.capacity == 64.0 * 1024 ** 3
        assert hardware.resolve_wafer().num_dies == 48

    def test_simulator_override_only_when_set(self):
        assert HardwareSpec().resolve_simulator() is None
        assert HardwareSpec(base_mfu=0.5).resolve_simulator().base_mfu == 0.5

    def test_fault_model_sampling_is_seeded(self):
        hardware = HardwareSpec(link_fault_rate=0.2)
        first = hardware.resolve_fault_model(seed=7)
        second = hardware.resolve_fault_model(seed=7)
        assert first.failed_links == second.failed_links
        assert first.failed_links  # 20% of a 4x8 mesh is non-empty

    def test_fixed_spec_resolves_to_parallel_spec(self):
        spec = SolverSpec(fixed_spec={"dp": 4, "tatp": 8}).resolve_fixed_spec()
        assert (spec.dp, spec.tatp, spec.total_degree) == (4, 8, 32)
        with pytest.raises(ScenarioError, match="no fixed_spec"):
            SolverSpec().resolve_fixed_spec()

    def test_with_fixed_spec_round_trips_flags(self):
        from repro.parallelism.spec import ParallelSpec
        pinned = Scenario().with_fixed_spec(
            ParallelSpec(dp=4, tp=8, zero1_optimizer=False))
        resolved = pinned.solver.resolve_fixed_spec()
        assert resolved == ParallelSpec(dp=4, tp=8, zero1_optimizer=False)
