"""End-to-end tests of the ``repro plan`` CLI subcommand."""

import json

import pytest

from repro.api.scenario import SCHEMA_VERSION
from repro.api.service import validate_result_payload
from repro.runner.cli import main


def _reduced_scenario(**solver_extra) -> str:
    solver = {"scheme": "temp", "engine": "tcme", "max_candidates": 4}
    solver.update(solver_extra)
    return json.dumps({
        "schema_version": SCHEMA_VERSION,
        "workload": {"model": "gpt3-6.7b"},
        "solver": solver,
    })


class TestPlanCommand:
    def test_evaluates_a_scenario_end_to_end(self, capsys):
        assert main(["plan", _reduced_scenario(), "--validate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_result_payload(payload) == []
        assert payload["model"] == "gpt3-6.7b"
        assert payload["kind"] == "single_wafer"
        assert payload["oom"] is False
        assert payload["step_time"] > 0

    def test_reads_scenario_from_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(_reduced_scenario())
        assert main(["plan", "--file", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_reads_scenario_from_stdin(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(_reduced_scenario()))
        assert main(["plan", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "gpt3-6.7b"

    def test_solve_emits_solver_outcome(self, capsys):
        assert main(["plan", _reduced_scenario(ga_generations=4),
                     "--solve"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "gpt3-6.7b"
        assert payload["candidates_considered"] > 0
        assert payload["oom"] is False

    def test_invalid_document_exits_2(self, capsys):
        assert main(["plan", "{\"schema_version\": 99}"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, capsys):
        assert main(["plan", "{broken"]) == 2
        assert "invalid scenario JSON" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["plan", "--file", "/does/not/exist.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_validate_with_solve_is_rejected(self, capsys):
        assert main(["plan", _reduced_scenario(), "--solve",
                     "--validate"]) == 2
        assert "--validate only applies" in capsys.readouterr().err

    def test_invalid_fixed_spec_degree_exits_2(self, capsys):
        document = json.dumps({
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-6.7b"},
            "solver": {"fixed_spec": {"dp": 0}},
        })
        assert main(["plan", document]) == 2
        assert "invalid fixed_spec" in capsys.readouterr().err


class TestPlanBatchMode:
    """`repro plan` with a JSON array: the offline twin of /v1/plan/batch."""

    def test_array_in_array_out(self, capsys):
        batch = json.dumps([json.loads(_reduced_scenario()),
                            json.loads(_reduced_scenario(max_candidates=2))])
        assert main(["plan", batch, "--validate"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert isinstance(payloads, list) and len(payloads) == 2
        for payload in payloads:
            assert validate_result_payload(payload) == []
            assert payload["model"] == "gpt3-6.7b"

    def test_empty_array(self, capsys):
        assert main(["plan", "[]", "--validate"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_batch_shares_one_plan_service(self, capsys):
        # The same scenario twice: the second evaluation must hit the
        # shared PlanCache, which --stats surfaces on stderr.
        batch = json.dumps([json.loads(_reduced_scenario())] * 2)
        assert main(["plan", batch, "--stats"]) == 0
        captured = capsys.readouterr()
        payloads = json.loads(captured.out)
        assert payloads[0] == payloads[1]
        stats = json.loads(captured.err.strip().splitlines()[-1])
        assert stats["plan_cache"]["hits"] > 0

    def test_invalid_item_exits_2(self, capsys):
        batch = json.dumps([json.loads(_reduced_scenario()),
                            {"schema_version": 99}])
        assert main(["plan", batch]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_solve_batch(self, capsys):
        batch = json.dumps(
            [json.loads(_reduced_scenario(ga_generations=2))])
        assert main(["plan", batch, "--solve"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 1
        assert payloads[0]["candidates_considered"] > 0


def test_plan_stats_flag_reports_plan_cache_counters(capsys):
    assert main(["plan", _reduced_scenario(), "--stats"]) == 0
    captured = capsys.readouterr()
    stats = json.loads(captured.err.strip().splitlines()[-1])
    assert set(stats) == {"plan_cache", "wafers_cached"}
    assert stats["plan_cache"]["misses"] > 0


@pytest.mark.parametrize("fixture_kind", ["fault", "multiwafer"])
def test_plan_covers_non_default_paths(fixture_kind, capsys):
    if fixture_kind == "fault":
        document = {
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-6.7b"},
            "hardware": {"core_fault_rate": 0.25},
            "solver": {"seed": 3, "fixed_spec": {"dp": 4, "tatp": 8}},
        }
        expected_kind = "fault"
    else:
        document = {
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-175b"},
            "hardware": {"num_wafers": 2, "num_microbatches": 8},
            "solver": {"scheme": "temp", "engine": "tcme"},
        }
        expected_kind = "multi_wafer"
    assert main(["plan", json.dumps(document), "--validate"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == expected_kind
