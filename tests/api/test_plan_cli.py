"""End-to-end tests of the ``repro plan`` CLI subcommand."""

import json

import pytest

from repro.api.scenario import SCHEMA_VERSION
from repro.api.service import validate_result_payload
from repro.runner.cli import main


def _reduced_scenario(**solver_extra) -> str:
    solver = {"scheme": "temp", "engine": "tcme", "max_candidates": 4}
    solver.update(solver_extra)
    return json.dumps({
        "schema_version": SCHEMA_VERSION,
        "workload": {"model": "gpt3-6.7b"},
        "solver": solver,
    })


class TestPlanCommand:
    def test_evaluates_a_scenario_end_to_end(self, capsys):
        assert main(["plan", _reduced_scenario(), "--validate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_result_payload(payload) == []
        assert payload["model"] == "gpt3-6.7b"
        assert payload["kind"] == "single_wafer"
        assert payload["oom"] is False
        assert payload["step_time"] > 0

    def test_reads_scenario_from_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(_reduced_scenario())
        assert main(["plan", "--file", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_reads_scenario_from_stdin(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(_reduced_scenario()))
        assert main(["plan", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "gpt3-6.7b"

    def test_solve_emits_solver_outcome(self, capsys):
        assert main(["plan", _reduced_scenario(ga_generations=4),
                     "--solve"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "gpt3-6.7b"
        assert payload["candidates_considered"] > 0
        assert payload["oom"] is False

    def test_invalid_document_exits_2(self, capsys):
        assert main(["plan", "{\"schema_version\": 99}"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, capsys):
        assert main(["plan", "{broken"]) == 2
        assert "invalid scenario JSON" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["plan", "--file", "/does/not/exist.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_validate_with_solve_is_rejected(self, capsys):
        assert main(["plan", _reduced_scenario(), "--solve",
                     "--validate"]) == 2
        assert "--validate only applies" in capsys.readouterr().err

    def test_invalid_fixed_spec_degree_exits_2(self, capsys):
        document = json.dumps({
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-6.7b"},
            "solver": {"fixed_spec": {"dp": 0}},
        })
        assert main(["plan", document]) == 2
        assert "invalid fixed_spec" in capsys.readouterr().err


@pytest.mark.parametrize("fixture_kind", ["fault", "multiwafer"])
def test_plan_covers_non_default_paths(fixture_kind, capsys):
    if fixture_kind == "fault":
        document = {
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-6.7b"},
            "hardware": {"core_fault_rate": 0.25},
            "solver": {"seed": 3, "fixed_spec": {"dp": 4, "tatp": 8}},
        }
        expected_kind = "fault"
    else:
        document = {
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-175b"},
            "hardware": {"num_wafers": 2, "num_microbatches": 8},
            "solver": {"scheme": "temp", "engine": "tcme"},
        }
        expected_kind = "multi_wafer"
    assert main(["plan", json.dumps(document), "--validate"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == expected_kind
