"""Pins the ``Scenario.cache_key`` contract.

The key is the identity the plan server's dedup map and result store are
built on, so two properties are load-bearing: it is invariant to document
key ordering, and it changes whenever *any* spec field changes (the
alternative-value tables below are checked for exhaustiveness against the
dataclass fields, so adding a spec field without extending them fails
loudly here).
"""

import dataclasses
import hashlib
import json

import pytest

from repro.api.scenario import (
    HardwareSpec,
    Scenario,
    SolverSpec,
    WorkloadSpec,
)


def _base() -> Scenario:
    return Scenario(workload=WorkloadSpec(model="gpt3-6.7b"))


#: One alternative (non-default, different-from-base) value per spec field.
ALTERNATIVES = {
    "workload": {
        "model": "llama3-70b",
        "hyperparams": {"num_layers": 4},
        "batch_size": 16,
        "seq_length": 1024,
        "num_layers": 2,
    },
    "hardware": {
        "platform": "gpu_cluster",
        "rows": 2,
        "cols": 4,
        "d2d_bandwidth": 1e12,
        "hbm_capacity": 2e9,
        "base_mfu": 0.5,
        "num_wafers": 2,
        "num_microbatches": 8,
        "link_fault_rate": 0.1,
        "core_fault_rate": 0.2,
        "topology": {"name": "torus"},
    },
    "solver": {
        "scheme": "mesp",
        "engine": "gmap",
        "max_tatp": 16,
        "pipeline_degrees": (1, 2),
        "max_candidates": 6,
        "num_finalists": 4,
        "ga_generations": 3,
        "seed": 7,
        "fixed_spec": {"dp": 4},
        "allow_checkpoint_fallback": False,
    },
}

_SECTION_CLASSES = {"workload": WorkloadSpec, "hardware": HardwareSpec,
                    "solver": SolverSpec}


def test_alternative_tables_cover_every_spec_field():
    """A new spec field must get an alternative value (and thus coverage)."""
    for section, section_cls in _SECTION_CLASSES.items():
        fields = {field.name for field in dataclasses.fields(section_cls)}
        assert set(ALTERNATIVES[section]) == fields


class TestStability:
    def test_key_shape(self):
        key = _base().cache_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_equal_scenarios_share_a_key(self):
        assert _base().cache_key() == _base().cache_key()

    def test_key_is_sha256_of_canonical_json(self):
        scenario = _base()
        expected = hashlib.sha256(
            scenario.canonical_json().encode("utf-8")).hexdigest()
        assert scenario.cache_key() == expected

    def test_roundtrip_preserves_the_key(self):
        scenario = _base()
        restored = Scenario.from_json(scenario.to_json())
        assert restored.cache_key() == scenario.cache_key()

    def test_invariant_to_document_key_ordering(self):
        document = _base().to_dict()
        shuffled = {
            "solver": dict(reversed(list(document["solver"].items()))),
            "hardware": dict(reversed(list(document["hardware"].items()))),
            "schema_version": document["schema_version"],
            "workload": dict(reversed(list(document["workload"].items()))),
        }
        assert Scenario.from_dict(shuffled).cache_key() == \
            _base().cache_key()

    def test_canonical_json_is_compact_and_sorted(self):
        text = _base().canonical_json()
        assert ": " not in text and ", " not in text
        assert json.loads(text) == _base().to_dict()


@pytest.mark.parametrize(
    "section,field_name",
    [(section, field_name) for section, table in ALTERNATIVES.items()
     for field_name in table])
def test_any_field_change_changes_the_key(section, field_name):
    base = _base()
    replaced_section = dataclasses.replace(
        getattr(base, section), **{field_name: ALTERNATIVES[section][field_name]})
    changed = dataclasses.replace(base, **{section: replaced_section})
    assert changed.cache_key() != base.cache_key()
