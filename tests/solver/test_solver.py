"""Tests for the search space, DP, genetic refinement, exhaustive baseline, and DLWS."""

import pytest

from repro.hardware.config import default_wafer_config
from repro.parallelism.baselines import BaselineScheme
from repro.parallelism.spec import ParallelSpec
from repro.solver.dlws import DualLevelWaferSolver
from repro.solver.dp import optimize_segments
from repro.solver.exhaustive import ExhaustiveSolver
from repro.solver.genetic import GeneticConfig, GeneticRefiner
from repro.solver.search_space import SearchSpace, prune_specs
from repro.workloads.models import get_model
from repro.workloads.transformer import representative_layer_graph


@pytest.fixture(scope="module")
def wafer_config():
    return default_wafer_config()


@pytest.fixture(scope="module")
def layer_graph(gpt3_6b):
    return representative_layer_graph(gpt3_6b)


@pytest.fixture(scope="module")
def candidates():
    return [
        ParallelSpec(dp=32),
        ParallelSpec(dp=4, tatp=8),
        ParallelSpec(dp=2, tp=2, tatp=8),
        ParallelSpec(tatp=32),
    ]


class TestSearchSpace:
    def test_candidates_match_scheme(self, gpt3_6b):
        space = SearchSpace(model=gpt3_6b, num_devices=32,
                            scheme=BaselineScheme.TEMP)
        specs = space.candidates()
        assert specs
        assert all(spec.total_degree == 32 for spec in specs)

    def test_tp_capped_by_heads(self):
        small_heads = get_model("gpt3-6.7b").with_overrides()
        space = SearchSpace(model=small_heads, num_devices=32, max_tp=64)
        assert all(spec.tp <= small_heads.num_heads for spec in space.candidates())

    def test_pruning_drops_hopeless_configs(self, llama70b, wafer_config):
        specs = [ParallelSpec(dp=32), ParallelSpec(tatp=32)]
        survivors = prune_specs(specs, llama70b, wafer_config, memory_margin=1.0)
        assert ParallelSpec(tatp=32) in survivors
        assert ParallelSpec(dp=32) not in survivors

    def test_pruning_keeps_checkpointable_configs(self, llama70b, wafer_config):
        # FSDP-32 only fits with activation checkpointing; pruning must keep it.
        specs = [ParallelSpec(fsdp=32)]
        survivors = prune_specs(specs, llama70b, wafer_config, memory_margin=1.0)
        assert survivors == specs

    def test_invalid_margin(self, gpt3_6b, wafer_config):
        with pytest.raises(ValueError):
            prune_specs([], gpt3_6b, wafer_config, memory_margin=0)


class TestDynamicProgramming:
    def test_assignment_covers_every_node(self, layer_graph, candidates, wafer_config):
        result = optimize_segments(layer_graph, candidates, wafer_config)
        assert set(result.assignment) == {node.node_id for node in layer_graph.nodes()}
        assert result.total_cost > 0
        assert result.evaluations > 0

    def test_dp_not_worse_than_any_uniform_assignment(
            self, layer_graph, candidates, wafer_config):
        from repro.costmodel.analytical import graph_cost
        result = optimize_segments(layer_graph, candidates, wafer_config)
        uniform_costs = []
        for spec in candidates:
            assignment = {node.node_id: spec for node in layer_graph.nodes()}
            uniform_costs.append(graph_cost(layer_graph, assignment, wafer_config))
        assert result.total_cost <= min(uniform_costs) * 1.0001

    def test_memory_limit_respected_when_possible(
            self, layer_graph, candidates, wafer_config):
        unconstrained = optimize_segments(layer_graph, candidates, wafer_config)
        constrained = optimize_segments(
            layer_graph, candidates, wafer_config,
            memory_limit=wafer_config.die.hbm.capacity)
        assert constrained.total_cost >= 0
        assert set(constrained.assignment) == set(unconstrained.assignment)

    def test_empty_candidates_rejected(self, layer_graph, wafer_config):
        with pytest.raises(ValueError):
            optimize_segments(layer_graph, [], wafer_config)

    def test_oom_fallback_cost_includes_resharding(
            self, layer_graph, candidates, wafer_config):
        from repro.costmodel.analytical import (
            inter_operator_cost, intra_operator_cost)
        # A zero-byte budget forces the fallback path on every segment. The
        # reported cost must equal the full chain cost — intra plus
        # resharding — of the assignment actually returned (the seed
        # implementation silently dropped the resharding terms here).
        result = optimize_segments(
            layer_graph, candidates, wafer_config, memory_limit=0.0)
        want = 0.0
        for chain in layer_graph.partition_at_residual_boundaries():
            for node_id in chain:
                want += intra_operator_cost(
                    layer_graph.node(node_id).operator,
                    result.assignment[node_id], wafer_config).total
            for prev_id, node_id in zip(chain, chain[1:]):
                want += inter_operator_cost(
                    layer_graph.node(prev_id).operator,
                    result.assignment[prev_id],
                    result.assignment[node_id], wafer_config)
        assert result.total_cost == pytest.approx(want, rel=1e-9)


class TestGeneticRefiner:
    def test_refinement_not_worse_than_seed(self, layer_graph, candidates, wafer_config):
        from repro.costmodel.analytical import graph_cost
        dp_result = optimize_segments(layer_graph, candidates, wafer_config)
        refiner = GeneticRefiner(
            layer_graph, candidates, wafer_config,
            genetic_config=GeneticConfig(population_size=8, generations=5, seed=1))
        ga_result = refiner.refine(initial_assignment=dp_result.assignment)
        # Elitism guarantees the GA never regresses below its DP seed when both
        # are measured with the same whole-graph cost (Eq. 4).
        seed_cost = graph_cost(layer_graph, dp_result.assignment, wafer_config)
        assert ga_result.cost <= seed_cost * 1.0001
        assert len(ga_result.history) == 6

    def test_deterministic_for_fixed_seed(self, layer_graph, candidates, wafer_config):
        config = GeneticConfig(population_size=6, generations=3, seed=7)
        results = [
            GeneticRefiner(layer_graph, candidates, wafer_config,
                           genetic_config=config).refine().cost
            for _ in range(2)
        ]
        assert results[0] == pytest.approx(results[1])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneticConfig(population_size=1)
        with pytest.raises(ValueError):
            GeneticConfig(mutation_rate=2.0)
        with pytest.raises(ValueError):
            GeneticConfig(elite_count=50, population_size=10)

    def test_empty_candidates_rejected(self, layer_graph, wafer_config):
        with pytest.raises(ValueError):
            GeneticRefiner(layer_graph, [], wafer_config)


class TestExhaustiveSolver:
    def test_finds_best_uniform_assignment_on_tiny_problem(self, wafer_config, gpt3_6b):
        tiny = get_model("gpt3-6.7b").with_overrides(num_layers=1, batch_size=8,
                                                     seq_length=512)
        graph = representative_layer_graph(tiny)
        candidates = [ParallelSpec(dp=8), ParallelSpec(tatp=8)]
        solver = ExhaustiveSolver(wafer_config, max_evaluations=5000)
        result = solver.search(graph, candidates)
        assert result.evaluations > 0
        assert result.cost > 0

    def test_truncation_flag(self, layer_graph, candidates, wafer_config):
        solver = ExhaustiveSolver(wafer_config, max_evaluations=10)
        result = solver.search(layer_graph, candidates)
        assert result.truncated
        assert result.evaluations == 10

    def test_total_combinations(self):
        assert ExhaustiveSolver.total_combinations(12, 4) == 4 ** 12
        with pytest.raises(ValueError):
            ExhaustiveSolver.total_combinations(-1, 2)


class TestDualLevelWaferSolver:
    def test_solver_returns_feasible_best(self, gpt3_6b):
        solver = DualLevelWaferSolver(num_finalists=4)
        result = solver.solve(gpt3_6b)
        assert result.best_spec.total_degree == 32
        assert not result.best_report.oom
        assert result.candidates_considered > 0
        assert result.search_seconds > 0

    def test_solver_prefers_tatp_for_large_models(self, llama70b):
        solver = DualLevelWaferSolver(num_finalists=6)
        result = solver.solve(llama70b)
        assert result.best_spec.tatp > 1

    def test_invalid_finalist_count(self):
        with pytest.raises(ValueError):
            DualLevelWaferSolver(num_finalists=0)

    def test_solve_never_reanalyzes_a_plan(self, gpt3_6b, monkeypatch):
        # Pruning, finalist ranking, and finalist simulation all need the
        # same execution plans; the shared plan cache must derive each
        # distinct (model, spec, devices, checkpointing) plan exactly once.
        import repro.costmodel.tables as tables_module
        real_analyze = tables_module.analyze_model
        computed = []

        def counting_analyze(model, spec, num_devices=None,
                             activation_checkpointing=False, **kwargs):
            computed.append(
                (model.name, spec, num_devices, activation_checkpointing))
            return real_analyze(
                model, spec, num_devices=num_devices,
                activation_checkpointing=activation_checkpointing, **kwargs)

        monkeypatch.setattr(tables_module, "analyze_model", counting_analyze)
        solver = DualLevelWaferSolver(num_finalists=4)
        result = solver.solve(gpt3_6b)
        assert len(computed) == len(set(computed)), \
            "analyze_model ran twice for the same (model, spec) key"
        # Finalist ranking and simulation re-read plans the pruning already
        # derived, so the cache must have served repeat lookups.
        assert result.plan_cache_hits > 0
        assert result.plan_cache_misses == len(computed)
