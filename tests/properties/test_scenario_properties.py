"""Property-based fuzzing of the Scenario/Portfolio document layer.

Hypothesis generates random *valid* spec trees and random *corrupted*
documents and pins the three contracts every serving layer leans on:

* serde is lossless and bit-identical — ``from_dict(to_dict()) == self``
  and the canonical JSON survives a full parse/re-serialise cycle
  unchanged (the plan server's store and dedup map key off that string);
* ``cache_key()`` is invariant to document key order and distinct for
  distinct scenarios (key equality iff scenario equality);
* malformed documents of any shape raise :class:`ScenarioError` /
  :class:`PortfolioError` — never a bare ``KeyError``/``AttributeError``
  traceback leaking out of the parser.

The suite stays fast (bounded example counts, no plan evaluation — these
properties are pure document-layer checks).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.portfolio import Portfolio, PortfolioAxis, PortfolioError
from repro.api.scenario import (
    HardwareSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    WorkloadSpec,
)
from repro.parallelism.baselines import BaselineScheme
from repro.workloads.models import get_model, list_models

#: Shared profile: generous enough to explore, bounded enough for tier-1.
FAST = settings(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

MODELS = list_models()
SCHEMES = [scheme.value for scheme in BaselineScheme]
ENGINES = ["tcme", "gmap", "smap", "scattered"]

finite_floats = st.floats(min_value=1e-3, max_value=1e13,
                          allow_nan=False, allow_infinity=False)


def workloads() -> st.SearchStrategy:
    """Valid workload specs: zoo names or inline hyperparams + overrides."""
    inline = st.sampled_from(MODELS).map(
        lambda name: get_model(name).to_dict())
    return st.one_of(
        st.builds(
            WorkloadSpec,
            model=st.sampled_from(MODELS),
            batch_size=st.none() | st.integers(1, 4096),
            seq_length=st.none() | st.integers(16, 65536),
            num_layers=st.none() | st.integers(1, 256),
        ),
        st.builds(
            WorkloadSpec,
            hyperparams=inline,
            batch_size=st.none() | st.integers(1, 4096),
        ),
    )


#: Valid fabric specs on the default 4x8 geometry (kept in sync with the
#: registered topology zoo; mesh stays None half the time so the default
#: path is fuzzed too).
FABRIC_SPECS = [
    None,
    {"name": "mesh"},
    {"name": "torus"},
    {"name": "torus", "wrap_latency_factor": 2.0},
    {"name": "mesh3d", "layers": 2},
    {"name": "chiplet", "chiplet_rows": 2, "chiplet_cols": 2},
    {"name": "express", "stride": 2},
]


def hardwares() -> st.SearchStrategy:
    """Valid hardware specs across all four mutually-exclusive shapes."""
    single_wafer = st.builds(
        HardwareSpec,
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        d2d_bandwidth=st.none() | finite_floats,
        hbm_capacity=st.none() | finite_floats,
        base_mfu=st.none() | st.floats(0.05, 1.0, allow_nan=False),
        num_microbatches=st.integers(1, 64),
        link_fault_rate=st.none() | st.floats(0.0, 1.0, allow_nan=False),
        core_fault_rate=st.none() | st.floats(0.0, 1.0, allow_nan=False),
    )
    multi_wafer = st.builds(
        HardwareSpec,
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        num_wafers=st.integers(2, 8),
        num_microbatches=st.integers(1, 64),
    )
    gpu_cluster = st.just(HardwareSpec(platform="gpu_cluster"))
    # Fabric shape: a topology-zoo spec on the default geometry (non-mesh
    # fabrics are single-wafer and fault-free by validation).
    fabric = st.builds(
        HardwareSpec,
        topology=st.sampled_from(FABRIC_SPECS).map(
            lambda spec: dict(spec) if spec is not None else None),
        num_microbatches=st.integers(1, 64),
    )
    return st.one_of(single_wafer, multi_wafer, gpu_cluster, fabric)


def solvers() -> st.SearchStrategy:
    """Valid solver specs, with and without pinned parallel specs."""
    fixed_specs = st.fixed_dictionaries(
        {},
        optional={
            "dp": st.sampled_from([1, 2, 4, 8]),
            "tp": st.sampled_from([1, 2, 4, 8]),
            "sp": st.sampled_from([1, 2, 4]),
            "tatp": st.sampled_from([1, 2, 4, 8, 16]),
            "pp": st.sampled_from([1, 2, 4]),
            "sp_within_tp": st.booleans(),
            "zero1_optimizer": st.booleans(),
        })
    return st.builds(
        SolverSpec,
        scheme=st.sampled_from(SCHEMES),
        engine=st.sampled_from(ENGINES),
        max_tatp=st.sampled_from([1, 4, 16, 32]),
        pipeline_degrees=st.lists(st.integers(1, 8), min_size=1,
                                  max_size=3).map(tuple),
        max_candidates=st.none() | st.integers(1, 64),
        num_finalists=st.integers(1, 16),
        ga_generations=st.none() | st.integers(1, 10),
        seed=st.integers(0, 2**31 - 1),
        fixed_spec=st.none() | fixed_specs,
    )


def scenarios() -> st.SearchStrategy:
    return st.builds(Scenario, workload=workloads(), hardware=hardwares(),
                     solver=solvers())


def _reorder(value):
    """The same JSON value with every object's key order reversed."""
    if isinstance(value, dict):
        return {key: _reorder(value[key]) for key in reversed(list(value))}
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


class TestScenarioRoundTrip:
    @FAST
    @given(scenario=scenarios())
    def test_dict_round_trip_is_lossless(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    @FAST
    @given(scenario=scenarios())
    def test_json_round_trip_is_bit_identical(self, scenario):
        text = scenario.to_json()
        reparsed = Scenario.from_json(text)
        assert reparsed == scenario
        assert reparsed.to_json() == text
        assert reparsed.canonical_json() == scenario.canonical_json()

    @FAST
    @given(scenario=scenarios())
    def test_canonical_json_parses_back_to_the_document(self, scenario):
        assert json.loads(scenario.canonical_json()) == scenario.to_dict()


class TestCacheKey:
    @FAST
    @given(scenario=scenarios())
    def test_cache_key_is_order_invariant(self, scenario):
        shuffled = _reorder(scenario.to_dict())
        assert list(shuffled) != list(scenario.to_dict())  # really reordered
        assert Scenario.from_dict(shuffled).cache_key() \
            == scenario.cache_key()

    @FAST
    @given(first=scenarios(), second=scenarios())
    def test_key_equality_iff_scenario_equality(self, first, second):
        assert (first.cache_key() == second.cache_key()) \
            == (first == second)

    @FAST
    @given(scenario=scenarios(), delta=st.integers(1, 1000))
    def test_any_field_perturbation_changes_the_key(self, scenario, delta):
        import dataclasses

        perturbed = dataclasses.replace(
            scenario,
            solver=dataclasses.replace(scenario.solver,
                                       seed=scenario.solver.seed + delta))
        assert perturbed.cache_key() != scenario.cache_key()


def _corruptions() -> st.SearchStrategy:
    """Corrupted scenario documents (plus arbitrary JSON garbage)."""
    json_garbage = st.recursive(
        st.none() | st.booleans() | st.integers() | st.text(max_size=8),
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=8), children, max_size=3),
        max_leaves=10)

    def corrupt(base, mode, key, value):
        document = base.to_dict()
        if mode == "unknown_top_key":
            document[key or "bogus"] = value
        elif mode == "unknown_section_key":
            document["workload"][key or "bogus"] = value
        elif mode == "bad_schema_version":
            document["schema_version"] = value
        elif mode == "missing_schema_version":
            del document["schema_version"]
        elif mode == "scalar_section":
            document["hardware"] = value
        elif mode == "wrong_typed_field":
            document["hardware"]["rows"] = str(value)
        elif mode == "bad_platform":
            document["hardware"]["platform"] = key or "tpu"
        elif mode == "bad_scheme":
            document["solver"]["scheme"] = key or "magic"
        return document

    corrupted = st.builds(
        corrupt,
        base=scenarios(),
        mode=st.sampled_from([
            "unknown_top_key", "unknown_section_key", "bad_schema_version",
            "missing_schema_version", "scalar_section", "wrong_typed_field",
            "bad_platform", "bad_scheme"]),
        key=st.text(max_size=8),
        value=st.none() | st.integers() | st.text(max_size=8),
    )
    return st.one_of(corrupted, json_garbage)


class TestMalformedDocuments:
    @FAST
    @given(document=_corruptions())
    def test_malformed_documents_raise_structured_errors(self, document):
        # A corrupted document must either still be a valid scenario (some
        # corruptions are no-ops, e.g. schema_version set back to 1) or
        # raise ScenarioError — never any other exception type, and never
        # one smuggling a traceback into its message.
        try:
            Scenario.from_dict(document)
        except ScenarioError as error:
            assert "Traceback" not in str(error)

    @FAST
    @given(document=_corruptions())
    def test_malformed_portfolio_documents_raise_structured_errors(
            self, document):
        try:
            Portfolio.from_dict(document)
        except PortfolioError as error:
            assert "Traceback" not in str(error)


def portfolios() -> st.SearchStrategy:
    """Small valid portfolios over scenario fields."""
    model_axis = st.lists(
        st.sampled_from(MODELS), min_size=1, max_size=3, unique=True
    ).map(lambda models: PortfolioAxis(
        name="model", path="workload.model", values=tuple(models)))
    rows_axis = st.lists(
        st.integers(1, 8), min_size=1, max_size=3, unique=True
    ).map(lambda rows: PortfolioAxis(
        name="rows", path="hardware.rows", values=tuple(rows)))
    note_axis = st.lists(
        st.text(max_size=6), min_size=1, max_size=3, unique=True
    ).map(lambda notes: PortfolioAxis(name="note", values=tuple(notes)))
    return st.builds(
        lambda axes, description: Portfolio(
            name="fuzz", axes=axes, description=description),
        axes=st.tuples(model_axis, rows_axis, note_axis),
        description=st.text(max_size=16),
    )


def _portfolio_corruptions() -> st.SearchStrategy:
    """Corrupted *portfolio* documents (shapes scenario fuzzing misses)."""

    def corrupt(portfolio, mode, value):
        document = portfolio.to_dict()
        if mode == "non_string_path":
            document["axes"][0]["path"] = value
        elif mode == "bad_base_section":
            document["base"] = {"schema_version": 1,
                                "workload": {"bogus": value}}
        elif mode == "scalar_base":
            document["base"] = value
        elif mode == "scalar_axes":
            document["axes"] = value
        elif mode == "garbage_axis":
            document["axes"] = [value]
        elif mode == "bad_expansion":
            document["expansion"] = value
        return document

    return st.builds(
        corrupt,
        portfolio=portfolios(),
        mode=st.sampled_from([
            "non_string_path", "bad_base_section", "scalar_base",
            "scalar_axes", "garbage_axis", "bad_expansion"]),
        value=st.none() | st.integers() | st.text(max_size=6)
        | st.lists(st.integers(), max_size=2),
    )


class TestPortfolioProperties:
    @FAST
    @given(document=_portfolio_corruptions())
    def test_corrupted_portfolio_documents_raise_structured_errors(
            self, document):
        try:
            Portfolio.from_dict(document)
        except PortfolioError as error:
            assert "Traceback" not in str(error)

    @FAST
    @given(portfolio=portfolios())
    def test_round_trip_is_lossless(self, portfolio):
        assert Portfolio.from_dict(portfolio.to_dict()) == portfolio
        assert Portfolio.from_json(portfolio.to_json()) == portfolio

    @FAST
    @given(portfolio=portfolios())
    def test_expansion_is_deterministic_and_complete(self, portfolio):
        points = portfolio.expand()
        assert len(points) == portfolio.num_points()
        assert [point.index for point in points] == list(range(len(points)))
        again = Portfolio.from_dict(portfolio.to_dict()).expand()
        assert [point.params for point in again] \
            == [point.params for point in points]
        assert [point.scenario for point in again] \
            == [point.scenario for point in points]

    @FAST
    @given(portfolio=portfolios())
    def test_point_keys_agree_with_scenario_equality(self, portfolio):
        points = portfolio.expand()
        keys = [point.cache_key() for point in points]
        for i, left in enumerate(points):
            for j, right in enumerate(points):
                assert (keys[i] == keys[j]) \
                    == (left.scenario == right.scenario)


@pytest.mark.parametrize("document", [None, 7, "text", [1, 2]])
def test_non_object_documents_are_scenario_errors(document):
    with pytest.raises(ScenarioError):
        Scenario.from_dict(document)
    with pytest.raises(PortfolioError):
        Portfolio.from_dict(document)
