"""Property-based invariants over every registered fabric family.

Hypothesis samples (family, geometry, params, die pairs) across the whole
topology zoo and pins the structural contracts the mapping layer leans on:

* canonical routes use only links the fabric actually has, chain
  contiguously from src to dst, and match the BFS hop distance;
* enumerated contiguous rings are genuine cycles — each die once, every
  consecutive (and wrap-around) pair fabric-adjacent;
* ``HardwareSpec.topology`` survives document round-trips losslessly;
* ``cache_key()`` distinguishes scenarios iff the topology name/params
  differ.

The suite stays pure topology/document work — no plan evaluation.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.scenario import HardwareSpec, Scenario
from repro.hardware.topologies import build_topology, topology_names

FAST = settings(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

#: (rows, cols, spec) triples covering every family on valid geometries.
FABRIC_CASES = [
    (4, 8, {"name": "mesh"}),
    (3, 5, {"name": "mesh"}),
    (4, 8, {"name": "torus"}),
    (3, 5, {"name": "torus"}),
    (4, 8, {"name": "torus", "wrap_latency_factor": 2.5,
            "wrap_bandwidth_factor": 0.5}),
    (4, 8, {"name": "mesh3d", "layers": 2}),
    (6, 4, {"name": "mesh3d", "layers": 3,
            "vertical_latency_factor": 1.5}),
    (4, 8, {"name": "mesh3d", "layers": 4,
            "vertical_bandwidth_factor": 0.25}),
    (4, 8, {"name": "chiplet", "chiplet_rows": 2, "chiplet_cols": 2}),
    (4, 8, {"name": "chiplet", "chiplet_rows": 2, "chiplet_cols": 4,
            "gateways": 1}),
    (6, 6, {"name": "chiplet", "chiplet_rows": 3, "chiplet_cols": 3,
            "backbone_latency_factor": 3.0}),
    (4, 8, {"name": "express", "stride": 2}),
    (4, 8, {"name": "express", "stride": 3,
            "express_latency_factor": 1.25}),
    (5, 9, {"name": "express", "stride": 4}),
]

assert {case[2]["name"] for case in FABRIC_CASES} == set(topology_names())


@st.composite
def fabric_and_pair(draw):
    """A built fabric plus a random healthy (src, dst) die pair."""
    rows, cols, spec = draw(st.sampled_from(FABRIC_CASES))
    topology = build_topology(spec, rows, cols)
    dies = topology.dies()
    src = draw(st.sampled_from(dies))
    dst = draw(st.sampled_from(dies))
    return topology, src, dst


@st.composite
def fabric_and_group(draw):
    """A built fabric plus one of its canonical partition groups."""
    rows, cols, spec = draw(st.sampled_from(FABRIC_CASES))
    topology = build_topology(spec, rows, cols)
    sizes = [size for size in (2, 4, 8, 16) if size <= topology.num_dies]
    groups = topology.partition_into_groups(draw(st.sampled_from(sizes)))
    return topology, draw(st.sampled_from(groups))


class TestRoutingInvariants:
    @FAST
    @given(case=fabric_and_pair())
    def test_routes_use_only_fabric_links(self, case):
        topology, src, dst = case
        for route in (topology.xy_route(src, dst),
                      topology.yx_route(src, dst)):
            for link in route:
                assert topology.has_link(link.src, link.dst)
                assert topology.link(link.src, link.dst) == link

    @FAST
    @given(case=fabric_and_pair())
    def test_routes_chain_from_src_to_dst(self, case):
        topology, src, dst = case
        route = topology.xy_route(src, dst)
        if src == dst:
            assert route == []
            return
        assert route[0].src == src
        assert route[-1].dst == dst
        for left, right in zip(route, route[1:]):
            assert left.dst == right.src

    @FAST
    @given(case=fabric_and_pair())
    def test_route_length_equals_hop_distance(self, case):
        topology, src, dst = case
        assert len(topology.xy_route(src, dst)) \
            == topology.hop_distance(src, dst)

    @FAST
    @given(case=fabric_and_pair())
    def test_hop_cost_at_least_one_between_distinct_dies(self, case):
        topology, src, dst = case
        if src == dst:
            assert topology.hop_cost(src, dst) == 0
        else:
            assert topology.hop_cost(src, dst) >= 1


class TestRingInvariants:
    @FAST
    @given(case=fabric_and_group())
    def test_enumerated_rings_are_valid_cycles(self, case):
        topology, group = case
        ring = topology.contiguous_ring(group)
        if ring is None:
            return
        assert sorted(ring) == sorted(group)
        if len(ring) <= 2:
            return
        for a, b in zip(ring, ring[1:] + [ring[0]]):
            assert topology.are_adjacent(a, b)

    @FAST
    @given(case=fabric_and_group())
    def test_ring_penalty_is_positive_for_real_groups(self, case):
        topology, group = case
        penalty = topology.ring_penalty_hops(group)
        assert penalty >= (1 if len(group) > 1 else 0)


def topology_specs() -> st.SearchStrategy:
    """Serialisable topology documents over the sampled fabric cases."""
    return st.sampled_from(FABRIC_CASES).map(
        lambda case: (case[0], case[1], dict(case[2])))


class TestTopologySerde:
    @FAST
    @given(case=topology_specs())
    def test_hardware_topology_round_trips_losslessly(self, case):
        rows, cols, spec = case
        scenario = Scenario(hardware=HardwareSpec(rows=rows, cols=cols,
                                                  topology=spec))
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert restored.hardware.topology == spec
        assert Scenario.from_json(scenario.to_json()) == scenario

    @FAST
    @given(first=topology_specs(), second=topology_specs())
    def test_cache_key_changes_iff_topology_differs(self, first, second):
        rows, cols = 4, 8

        def scenario(spec):
            # Keep only the fabric name/params: geometry is pinned so the
            # key can only differ through the topology section. Not every
            # sampled spec is valid on 4x8, so filter to the ones that are.
            try:
                return Scenario(hardware=HardwareSpec(rows=rows, cols=cols,
                                                      topology=spec[2]))
            except Exception:
                return None

        left, right = scenario(first), scenario(second)
        if left is None or right is None:
            return
        assert (left.cache_key() == right.cache_key()) \
            == (first[2] == second[2])

    @FAST
    @given(case=topology_specs())
    def test_unset_and_explicit_mesh_have_distinct_keys(self, case):
        rows, cols, _ = case
        unset = Scenario(hardware=HardwareSpec(rows=rows, cols=cols))
        explicit = Scenario(hardware=HardwareSpec(
            rows=rows, cols=cols, topology={"name": "mesh"}))
        assert unset.cache_key() != explicit.cache_key()

    @FAST
    @given(case=topology_specs())
    def test_non_topology_perturbation_keeps_sections_independent(self, case):
        rows, cols, spec = case
        scenario = Scenario(hardware=HardwareSpec(rows=rows, cols=cols,
                                                  topology=spec))
        perturbed = dataclasses.replace(
            scenario,
            solver=dataclasses.replace(scenario.solver,
                                       seed=scenario.solver.seed + 1))
        assert perturbed.cache_key() != scenario.cache_key()
        assert perturbed.to_dict()["hardware"] \
            == scenario.to_dict()["hardware"]
