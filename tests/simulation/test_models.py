"""Tests for the compute / communication / memory / power models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.config import ComputeDieConfig, LinkConfig, MB, default_wafer_config
from repro.parallelism.comm import CollectiveType, CommTask
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model
from repro.simulation.communication import (
    bottleneck_time,
    collective_steps,
    effective_bandwidth,
    task_time,
)
from repro.simulation.compute import compute_time, compute_utilization, kernel_launches
from repro.simulation.config import SimulatorConfig
from repro.simulation.memory import (
    dram_traffic_bytes,
    fits_in_memory,
    hbm_time,
    memory_pressure,
)
from repro.simulation.power import PowerBreakdown, power_breakdown, power_efficiency
from repro.workloads.training import MemoryFootprint


class TestSimulatorConfig:
    def test_defaults_valid(self):
        config = SimulatorConfig()
        assert 0 < config.base_mfu <= 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SimulatorConfig(base_mfu=0.0)
        with pytest.raises(ValueError):
            SimulatorConfig(overlap_efficiency=1.5)
        with pytest.raises(ValueError):
            SimulatorConfig(kernel_overhead=-1)
        with pytest.raises(ValueError):
            SimulatorConfig(pipeline_microbatches=0)


class TestComputeModel:
    def test_time_scales_inversely_with_peak(self):
        die = ComputeDieConfig()
        config = SimulatorConfig(kernel_overhead=0.0)
        base = compute_time(1e15, die, config)
        derated = compute_time(1e15, die, config, peak_flops_override=die.peak_flops / 2)
        assert derated == pytest.approx(2 * base)

    def test_kernel_overhead_adds_per_launch(self):
        die = ComputeDieConfig()
        config = SimulatorConfig(kernel_overhead=1e-6, operators_per_layer=10)
        with_overhead = compute_time(0.0, die, config, num_layers=2, tatp_rounds=4)
        assert with_overhead == pytest.approx(2 * 10 * 4 * 1e-6)

    def test_kernel_launches(self):
        assert kernel_launches(2, 10, 0) == 20
        assert kernel_launches(2, 10, 4) == 80

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            compute_time(-1, ComputeDieConfig(), SimulatorConfig())

    def test_utilization_bounded(self):
        die = ComputeDieConfig()
        assert compute_utilization(1e30, 1.0, die, 1) == 1.0
        assert compute_utilization(1e12, 0.0, die, 1) == 0.0

    @given(st.floats(1e9, 1e16))
    @settings(max_examples=30, deadline=None)
    def test_time_monotone_in_flops(self, flops):
        die = ComputeDieConfig()
        config = SimulatorConfig()
        assert compute_time(flops * 2, die, config) > compute_time(flops, die, config)


class TestCommunicationModel:
    def test_collective_steps(self):
        assert collective_steps(CollectiveType.ALL_REDUCE, 8) == 14
        assert collective_steps(CollectiveType.ALL_GATHER, 8) == 7
        assert collective_steps(CollectiveType.P2P, 2) == 1
        assert collective_steps(CollectiveType.ALL_REDUCE, 1) == 0

    def test_effective_bandwidth_ramps_with_chunk_size(self):
        link = LinkConfig()
        config = SimulatorConfig(link_ramp_bytes=32 * MB)
        small = effective_bandwidth(link, 1 * MB, config)
        large = effective_bandwidth(link, 1024 * MB, config)
        assert small < large <= link.bandwidth
        assert large == pytest.approx(link.bandwidth * 1024 / (1024 + 32))

    def test_task_time_grows_with_hops_and_contention(self):
        link = LinkConfig()
        config = SimulatorConfig()
        task = CommTask(CollectiveType.ALL_REDUCE, 8, 1e9)
        base = task_time(task, link, config)
        hops = task_time(task, link, config, hop_factor=4)
        contended = task_time(task, link, config, contention_factor=3.0)
        assert hops > base
        assert contended > base

    def test_trivial_task_is_free(self):
        task = CommTask(CollectiveType.ALL_REDUCE, 1, 1e9)
        assert task_time(task, LinkConfig(), SimulatorConfig()) == 0.0

    def test_invalid_factors_rejected(self):
        task = CommTask(CollectiveType.P2P, 2, 1e6)
        with pytest.raises(ValueError):
            task_time(task, LinkConfig(), SimulatorConfig(), hop_factor=0)
        with pytest.raises(ValueError):
            task_time(task, LinkConfig(), SimulatorConfig(), contention_factor=0.5)

    def test_bottleneck_time(self):
        assert bottleneck_time(0, LinkConfig(), SimulatorConfig()) == 0.0
        assert bottleneck_time(1e12, LinkConfig(), SimulatorConfig()) > 0.9


class TestMemoryModel:
    def test_fits_in_memory(self):
        die = ComputeDieConfig()
        small = MemoryFootprint(1e9, 1e9, 1e9, 1e9)
        huge = MemoryFootprint(1e12, 0, 0, 0)
        assert fits_in_memory(small, die)
        assert not fits_in_memory(huge, die)

    def test_slack_validation(self):
        with pytest.raises(ValueError):
            fits_in_memory(MemoryFootprint(0, 0, 0, 0), ComputeDieConfig(), slack=0)

    def test_memory_pressure_ratio(self):
        die = ComputeDieConfig()
        footprint = MemoryFootprint(die.hbm.capacity / 2, 0, 0, 0)
        assert memory_pressure(footprint, die) == pytest.approx(0.5)

    def test_dram_traffic_positive_and_scales_with_model(self, gpt3_6b, llama70b):
        small = dram_traffic_bytes(analyze_model(gpt3_6b, ParallelSpec(tatp=32),
                                                 num_devices=32))
        large = dram_traffic_bytes(analyze_model(llama70b, ParallelSpec(tatp=32),
                                                 num_devices=32))
        assert 0 < small < large

    def test_hbm_time(self):
        die = ComputeDieConfig()
        assert hbm_time(0, die) == pytest.approx(die.hbm.latency)
        with pytest.raises(ValueError):
            hbm_time(-1, die)


class TestPowerModel:
    def test_breakdown_sums(self):
        breakdown = PowerBreakdown(compute=100, dram=50, communication=25)
        assert breakdown.total == 175
        assert breakdown.share("compute") == pytest.approx(100 / 175)

    def test_power_breakdown_from_counts(self):
        wafer = default_wafer_config()
        breakdown = power_breakdown(
            total_flops=2e15, dram_bytes=1e12, comm_link_bytes=1e12,
            step_time=1.0, wafer=wafer)
        assert breakdown.compute == pytest.approx(2e15 / 2e12)
        assert breakdown.dram > breakdown.communication

    def test_invalid_inputs_rejected(self):
        wafer = default_wafer_config()
        with pytest.raises(ValueError):
            power_breakdown(1, 1, 1, 0.0, wafer)
        with pytest.raises(ValueError):
            power_breakdown(-1, 1, 1, 1.0, wafer)

    def test_power_efficiency(self):
        assert power_efficiency(1000, 10) == 100
        assert power_efficiency(1000, 0) == 0.0
