"""Tests for the end-to-end wafer simulator and the GPU-cluster comparator."""

import pytest

from repro.hardware.gpu_cluster import GPUCluster
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model
from repro.simulation.gpu import GPUClusterSimulator
from repro.simulation.simulator import WaferSimulator


@pytest.fixture(scope="module")
def simulator(wafer):
    return WaferSimulator(wafer)


class TestWaferSimulator:
    def test_report_fields_are_consistent(self, simulator, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tatp=8), num_devices=32)
        report = simulator.simulate(plan)
        assert report.step_time > 0
        assert report.step_time == pytest.approx(
            report.compute_time + report.critical_comm_time
            + report.exposed_comm_time + report.bubble_time)
        assert report.throughput == pytest.approx(
            gpt3_6b.tokens_per_batch / report.step_time)
        assert 0 <= report.compute_utilization <= 1
        assert 0 <= report.bandwidth_utilization <= 1
        assert report.power.total > 0
        assert report.power_efficiency > 0

    def test_breakdown_normalises_to_one(self, simulator, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=32), num_devices=32)
        report = simulator.simulate(plan)
        assert sum(report.normalized_breakdown().values()) == pytest.approx(1.0)

    def test_oom_detection(self, simulator, llama70b):
        replicated = analyze_model(llama70b, ParallelSpec(dp=32), num_devices=32)
        sharded = analyze_model(llama70b, ParallelSpec(tatp=32), num_devices=32)
        assert simulator.simulate(replicated).oom
        assert not simulator.simulate(sharded).oom

    def test_tp_collectives_sit_on_critical_path(self, simulator, gpt3_6b):
        tp_plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tp=8), num_devices=32)
        tatp_plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tatp=8), num_devices=32)
        tp_report = simulator.simulate(tp_plan)
        tatp_report = simulator.simulate(tatp_plan)
        assert tp_report.critical_comm_time > tatp_report.critical_comm_time
        assert tatp_report.step_time < tp_report.step_time

    def test_tatp_stream_overlaps_with_compute(self, simulator, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(tatp=32), num_devices=32)
        report = simulator.simulate(plan)
        assert report.overlap_comm_time > 0
        assert report.exposed_comm_time < report.overlap_comm_time

    def test_pipeline_adds_bubble(self, simulator, gpt3_6b):
        flat = analyze_model(gpt3_6b, ParallelSpec(dp=32), num_devices=32)
        piped = analyze_model(gpt3_6b, ParallelSpec(dp=16, pp=2), num_devices=32)
        assert simulator.simulate(flat).bubble_time == 0.0
        assert simulator.simulate(piped).bubble_time > 0.0

    def test_engines_are_selectable(self, simulator, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(fsdp=4, tatp=8), num_devices=32)
        for engine in ("smap", "gmap", "tcme"):
            report = simulator.simulate(plan, engine=engine)
            assert report.engine == engine

    def test_tcme_not_slower_than_smap(self, simulator, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(fsdp=4, tatp=8), num_devices=32)
        smap = simulator.simulate(plan, engine="smap")
        tcme = simulator.simulate(plan, engine="tcme")
        assert tcme.step_time <= smap.step_time * 1.001

    def test_more_dies_reduce_step_time(self, gpt3_6b):
        from repro.hardware.config import default_wafer_config
        small = WaferSimulator(WaferScaleChip(default_wafer_config(2, 4)))
        large = WaferSimulator(WaferScaleChip(default_wafer_config(4, 8)))
        plan8 = analyze_model(gpt3_6b, ParallelSpec(dp=2, tatp=4), num_devices=8)
        plan32 = analyze_model(gpt3_6b, ParallelSpec(dp=4, tatp=8), num_devices=32)
        assert large.simulate(plan32).step_time < small.simulate(plan8).step_time

    def test_comm_time_by_dimension_populated(self, simulator, gpt3_6b):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tp=8), num_devices=32)
        report = simulator.simulate(plan)
        assert "tp" in report.comm_time_by_dimension
        assert "dp" in report.comm_time_by_dimension

    def test_slower_link_bandwidth_increases_comm_time(self, gpt3_6b):
        from repro.hardware.config import default_wafer_config
        fast = WaferSimulator(WaferScaleChip(default_wafer_config()))
        slow = WaferSimulator(WaferScaleChip(
            default_wafer_config(d2d_bandwidth=default_wafer_config().d2d.bandwidth / 8)))
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tp=8), num_devices=32)
        assert (slow.simulate(plan).critical_comm_time
                > fast.simulate(plan).critical_comm_time)


class TestGPUClusterSimulator:
    def test_report_consistency(self, gpt3_6b):
        simulator = GPUClusterSimulator(GPUCluster())
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=4, tp=8, sp_within_tp=True),
                             num_devices=32)
        report = simulator.simulate(plan)
        assert report.step_time == pytest.approx(
            report.compute_time + report.comm_time)
        assert report.throughput > 0

    def test_gpu_cluster_detects_oom(self, llama70b):
        simulator = GPUClusterSimulator(GPUCluster())
        plan = analyze_model(llama70b, ParallelSpec(dp=32), num_devices=32)
        assert simulator.simulate(plan).oom

    def test_cross_node_collectives_cost_more(self, gpt3_6b):
        simulator = GPUClusterSimulator(GPUCluster())
        inside = analyze_model(gpt3_6b, ParallelSpec(dp=4, tp=8), num_devices=32)
        across = analyze_model(gpt3_6b, ParallelSpec(dp=2, tp=16), num_devices=32)
        assert (simulator.simulate(across).comm_time
                > simulator.simulate(inside).comm_time)
