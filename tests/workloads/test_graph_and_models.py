"""Tests for the compute-graph IR, the transformer builder, and the model zoo."""

import pytest

from repro.workloads.graph import ComputeGraph, TensorSpec
from repro.workloads.models import (
    MODEL_ZOO,
    MULTI_WAFER_MODELS,
    TABLE_II_MODELS,
    get_model,
    list_models,
)
from repro.workloads.operators import DType, Elementwise, Linear
from repro.workloads.training import MemoryFootprint, TrainingStep
from repro.workloads.transformer import (
    build_model_graph,
    build_transformer_block,
    representative_layer_graph,
)


class TestTensorSpec:
    def test_bytes(self):
        spec = TensorSpec("act", (2, 4, 8), DType.FP16)
        assert spec.num_elements == 64
        assert spec.num_bytes == 128

    def test_split_divides_axis(self):
        spec = TensorSpec("act", (2, 8, 8))
        shard = spec.split(axis=1, parts=4)
        assert shard.shape == (2, 2, 8)

    def test_uneven_split_rounds_up(self):
        spec = TensorSpec("act", (7,))
        assert spec.split(0, 2).shape == (4,)

    def test_invalid_split(self):
        spec = TensorSpec("act", (4,))
        with pytest.raises(ValueError):
            spec.split(2, 2)
        with pytest.raises(ValueError):
            spec.split(0, 0)


class TestComputeGraph:
    def _chain(self, length=3):
        graph = ComputeGraph("chain")
        previous = None
        for index in range(length):
            op = Linear(f"fc{index}", 1, 4, 8, 8)
            previous = graph.add_operator(
                op, inputs=[previous] if previous is not None else [])
        return graph

    def test_chain_construction(self):
        graph = self._chain(3)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.topological_order() == [0, 1, 2]

    def test_successors_and_predecessors(self):
        graph = self._chain(3)
        assert graph.successors(0) == [1]
        assert graph.predecessors(2) == [1]

    def test_missing_node_raises(self):
        graph = self._chain(2)
        with pytest.raises(KeyError):
            graph.node(99)

    def test_self_edge_rejected(self):
        graph = ComputeGraph()
        node = graph.add_operator(Linear("fc", 1, 1, 2, 2))
        with pytest.raises(KeyError):
            graph.add_operator(Linear("fc2", 1, 1, 2, 2), inputs=[99])
        with pytest.raises(ValueError):
            graph._add_edge(node, node)

    def test_residual_edges_tracked(self):
        graph = ComputeGraph()
        a = graph.add_operator(Elementwise("a", 1, 2, 4))
        b = graph.add_operator(Elementwise("b", 1, 2, 4), inputs=[a])
        c = graph.add_operator(Elementwise("c", 1, 2, 4), inputs=[b],
                               residual_from=a)
        assert graph.is_residual_edge(a, c)
        assert not graph.is_residual_edge(a, b)
        assert graph.residual_edges() == [(a, c)]

    def test_partition_respects_residual_spans(self):
        graph = ComputeGraph()
        a = graph.add_operator(Elementwise("a", 1, 2, 4))
        b = graph.add_operator(Elementwise("b", 1, 2, 4), inputs=[a])
        c = graph.add_operator(Elementwise("c", 1, 2, 4), inputs=[b],
                               residual_from=a)
        d = graph.add_operator(Elementwise("d", 1, 2, 4), inputs=[c])
        segments = graph.partition_at_residual_boundaries()
        # No cut may fall strictly between a and c.
        assert [a, b, c] in segments or [a, b, c, d] in segments

    def test_totals_accumulate(self):
        graph = self._chain(2)
        assert graph.total_flops() > 0
        assert graph.total_weight_bytes() == 2 * 8 * 8 * 2
        assert graph.total_activation_bytes() > 0


class TestTransformerBuilder:
    def test_block_has_thirteen_operators(self, tiny_model):
        graph = ComputeGraph()
        build_transformer_block(graph, tiny_model, 0)
        assert graph.num_nodes == 12  # 13 ops incl. embedding handled outside
        blocks = {node.block for node in graph.nodes()}
        assert blocks == {"mha", "ffn"}

    def test_full_model_graph_scales_with_layers(self, tiny_model):
        one = build_model_graph(tiny_model, num_layers=1)
        two = build_model_graph(tiny_model, num_layers=2)
        assert two.num_nodes == 2 * (one.num_nodes - 1) + 1  # shared embedding

    def test_graph_is_acyclic_and_residuals_present(self, tiny_model):
        graph = build_model_graph(tiny_model)
        order = graph.topological_order()
        assert len(order) == graph.num_nodes
        assert len(graph.residual_edges()) == 2 * len(graph.layers())

    def test_representative_layer_graph_has_no_embedding(self, tiny_model):
        graph = representative_layer_graph(tiny_model)
        assert all(node.block != "embed" for node in graph.nodes())

    def test_invalid_layer_count(self, tiny_model):
        with pytest.raises(ValueError):
            build_model_graph(tiny_model, num_layers=0)

    def test_gated_ffn_has_wider_fc1(self):
        gated = get_model("llama2-7b").with_overrides(num_layers=1, batch_size=1,
                                                      seq_length=128)
        graph = build_model_graph(gated, include_embedding=False)
        fc1 = next(node.operator for node in graph.nodes()
                   if node.operator.name.endswith("fc1"))
        assert fc1.dim("K") == 2 * gated.ffn_hidden_size


class TestModelZoo:
    def test_table_ii_models_present(self):
        for name in TABLE_II_MODELS:
            assert name in MODEL_ZOO

    def test_multiwafer_models_present(self):
        for name in MULTI_WAFER_MODELS:
            assert name in MODEL_ZOO

    def test_unknown_model_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_model("gpt5")

    def test_list_models_sorted(self):
        names = list_models()
        assert names == sorted(names)

    @pytest.mark.parametrize("name,expected_billion", [
        ("gpt3-6.7b", 6.7), ("llama2-7b", 7), ("llama3-70b", 70),
        ("gpt3-76b", 76), ("gpt3-175b", 175), ("opt-175b", 175),
    ])
    def test_parameter_counts_close_to_names(self, name, expected_billion):
        model = get_model(name)
        billions = model.num_parameters / 1e9
        assert billions == pytest.approx(expected_billion, rel=0.25)

    def test_table_ii_hyperparameters(self):
        gpt76 = get_model("gpt3-76b")
        assert gpt76.num_heads == 80
        assert gpt76.hidden_size == 10240
        assert gpt76.num_layers == 60
        assert gpt76.seq_length == 2048
        assert gpt76.batch_size == 128

    def test_with_overrides_does_not_mutate(self):
        base = get_model("gpt3-6.7b")
        changed = base.with_overrides(seq_length=16384)
        assert base.seq_length == 2048
        assert changed.seq_length == 16384

    def test_training_flops_follow_6pd_rule(self):
        model = get_model("gpt3-6.7b")
        expected = 6 * model.num_parameters * model.tokens_per_batch
        assert model.training_flops_per_step() == pytest.approx(expected)


class TestTrainingStep:
    def test_footprint_components(self, gpt3_6b):
        step = TrainingStep.from_model(gpt3_6b)
        footprint = step.replicated_footprint()
        assert footprint.weights == pytest.approx(gpt3_6b.num_parameters * 2)
        assert footprint.optimizer == pytest.approx(gpt3_6b.num_parameters * 8)
        assert footprint.total == pytest.approx(
            footprint.weights + footprint.gradients + footprint.optimizer
            + footprint.activations)

    def test_ideal_footprint_divides_evenly(self, gpt3_6b):
        step = TrainingStep.from_model(gpt3_6b)
        ideal = step.ideal_footprint(32)
        assert ideal.total == pytest.approx(step.replicated_footprint().total / 32)

    def test_ideal_footprint_rejects_bad_count(self, gpt3_6b):
        with pytest.raises(ValueError):
            TrainingStep.from_model(gpt3_6b).ideal_footprint(0)

    def test_checkpointing_reduces_activations_and_adds_flops(self, gpt3_6b):
        plain = TrainingStep.from_model(gpt3_6b)
        checkpointed = TrainingStep.from_model(gpt3_6b,
                                               activation_checkpointing=True)
        assert checkpointed.activation_bytes < plain.activation_bytes
        assert checkpointed.flops > plain.flops

    def test_graph_based_step_scales_to_full_depth(self, gpt3_6b):
        graph = build_model_graph(gpt3_6b, num_layers=1)
        step = TrainingStep.from_model(gpt3_6b, graph=graph)
        closed_form = TrainingStep.from_model(gpt3_6b)
        assert step.flops == pytest.approx(closed_form.flops, rel=0.5)

    def test_memory_footprint_scaled(self):
        footprint = MemoryFootprint(10, 20, 30, 40)
        half = footprint.scaled(0.5)
        assert half.total == pytest.approx(50)
        assert half.as_dict()["weights"] == 5
