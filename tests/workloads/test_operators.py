"""Tests for the analytical operator models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.operators import (
    AttentionContext,
    AttentionScore,
    DType,
    Elementwise,
    Embedding,
    LayerNorm,
    Linear,
    OperatorKind,
    Softmax,
)


class TestLinear:
    def test_flop_count(self):
        op = Linear("fc", batch=2, seq=4, in_features=8, out_features=16)
        assert op.forward_flops == pytest.approx(2 * 2 * 4 * 8 * 16)
        assert op.backward_flops == pytest.approx(2 * op.forward_flops)

    def test_byte_counts(self):
        op = Linear("fc", batch=2, seq=4, in_features=8, out_features=16)
        assert op.input_bytes == 2 * 4 * 8 * 2
        assert op.weight_bytes == 8 * 16 * 2
        assert op.output_bytes == 2 * 4 * 16 * 2

    def test_weightless_linear(self):
        op = Linear("fc", 1, 1, 4, 4, has_weight=False)
        assert op.weight_bytes == 0
        assert op.backward_flops == op.forward_flops

    def test_dims_recorded(self):
        op = Linear("fc", 2, 4, 8, 16)
        assert op.dim("B") == 2 and op.dim("M") == 4
        assert op.dim("N") == 8 and op.dim("K") == 16
        with pytest.raises(KeyError):
            op.dim("Z")

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear("fc", 0, 4, 8, 16)

    def test_fp32_doubles_bytes(self):
        fp16 = Linear("a", 1, 2, 4, 8, dtype=DType.FP16)
        fp32 = Linear("b", 1, 2, 4, 8, dtype=DType.FP32)
        assert fp32.weight_bytes == 2 * fp16.weight_bytes

    @given(st.integers(1, 8), st.integers(1, 64), st.integers(1, 128),
           st.integers(1, 128))
    @settings(max_examples=40, deadline=None)
    def test_arithmetic_intensity_positive(self, b, m, n, k):
        op = Linear("fc", b, m, n, k)
        assert op.arithmetic_intensity > 0
        assert op.total_flops == op.forward_flops + op.backward_flops


class TestAttention:
    def test_score_and_context_have_matching_flops(self):
        score = AttentionScore("qk", batch=2, heads=4, seq=128, head_dim=64)
        context = AttentionContext("sv", batch=2, heads=4, seq=128, head_dim=64)
        assert score.forward_flops == pytest.approx(context.forward_flops)

    def test_causal_masking_halves_flops(self):
        causal = AttentionScore("qk", 1, 1, 128, 64, causal=True)
        full = AttentionScore("qk", 1, 1, 128, 64, causal=False)
        assert causal.forward_flops == pytest.approx(full.forward_flops / 2)

    def test_kind(self):
        op = AttentionScore("qk", 1, 1, 16, 8)
        assert op.kind is OperatorKind.BATCHED_GEMM
        assert op.weight_bytes == 0


class TestSoftmaxAndNorms:
    def test_online_softmax_avoids_materialising_scores(self):
        online = Softmax("s", batch=1, heads=8, seq=1024, online=True)
        naive = Softmax("s", batch=1, heads=8, seq=1024, online=False)
        assert online.output_bytes < naive.output_bytes

    def test_layernorm_weight_is_two_vectors(self):
        op = LayerNorm("ln", batch=2, seq=8, hidden=512)
        assert op.weight_bytes == 2 * 512 * 2

    def test_elementwise_residual_flops(self):
        op = Elementwise("res", 2, 8, 512, flops_per_element=1.0)
        assert op.forward_flops == 2 * 8 * 512

    def test_embedding_weight_scales_with_vocab(self):
        small = Embedding("e", 1, 8, 128, vocab_size=1000)
        large = Embedding("e", 1, 8, 128, vocab_size=2000)
        assert large.weight_bytes == 2 * small.weight_bytes

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Softmax("s", 0, 1, 8)
        with pytest.raises(ValueError):
            LayerNorm("ln", 1, 1, 0)
