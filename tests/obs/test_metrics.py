"""Tests of the metrics registry: histograms, merging, Prometheus text."""

import math

import pytest

from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    CounterBundle,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    flatten_stats,
    prometheus_name,
    render_prometheus,
)


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5
        counter.merge(1.5)
        assert counter.snapshot() == 5.0

    def test_gauge_up_down_and_merge_sums(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.dec()
        gauge.inc(2.0)
        assert gauge.snapshot() == 5.0
        gauge.merge(3.0)
        assert gauge.snapshot() == 8.0


class TestHistogram:
    def test_rejects_non_ascending_buckets(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(MetricError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("h", buckets=())

    def test_observation_on_bucket_edge_lands_in_lower_bucket(self):
        # An upper *bound* is inclusive: exactly 1.0 belongs to le=1.
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0, 0]
        hist.observe(1.0000001)
        assert hist.counts == [1, 1, 0, 0]

    def test_percentile_interpolates_inside_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        # target rank 1.5 of 3 falls midway into the (1, 2] bucket.
        assert hist.percentile(0.50) == pytest.approx(1.5)
        assert hist.percentile(0.0) == 0.0
        # The top quantile is clamped to the true observed max, never the
        # bucket's upper bound.
        assert hist.percentile(1.0) == pytest.approx(3.0)

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(10.0)
        assert hist.counts == [0, 0, 1]
        assert hist.percentile(0.99) == pytest.approx(10.0)
        assert hist.summary()["max"] == pytest.approx(10.0)

    def test_single_observation_interpolates_by_rank_and_clamps(self):
        # Prometheus-style estimation: the quantile's rank is interpolated
        # inside the landing bucket's [lower, upper) range, and the top is
        # clamped to the true observed max.
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)
        assert hist.percentile(0.50) == pytest.approx(0.5)
        assert hist.percentile(0.95) == pytest.approx(0.95)
        assert hist.percentile(1.00) == pytest.approx(1.0)

    def test_non_finite_observations_dropped(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(math.nan)
        hist.observe(math.inf)
        assert hist.count == 0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h", buckets=(1.0,)).percentile(0.95) == 0.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0,)).percentile(1.5)

    def test_merge_requires_identical_bounds(self):
        left = Histogram("h", buckets=(1.0, 2.0))
        right = Histogram("h", buckets=(1.0, 2.0))
        other = Histogram("h", buckets=(1.0, 4.0))
        left.observe(0.5)
        right.observe(3.0)
        left.merge(right.snapshot())
        assert left.count == 2
        assert left.max == pytest.approx(3.0)
        assert left.counts == [1, 0, 1]
        with pytest.raises(MetricError):
            left.merge(other.snapshot())

    def test_summary_shape(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.25)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "mean", "max", "p50", "p95",
                                "p99"}
        assert summary["count"] == 1
        assert summary["mean"] == pytest.approx(0.25)


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1.0, 4.0))

    def test_snapshot_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("service.evaluations").inc(3)
        worker.gauge("entries").set(7)
        worker.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)

        parent = MetricsRegistry()
        parent.counter("service.evaluations").inc(1)
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(worker.snapshot())

        assert parent.counter("service.evaluations").snapshot() == 7.0
        assert parent.gauge("entries").snapshot() == 14.0
        assert parent.histogram("lat", buckets=(1.0, 2.0)).count == 2
        assert "lat" in parent.histogram_summaries()
        assert parent.histogram_snapshots()["lat"]["counts"] == [2, 0, 0]


class TestCounterBundle:
    def test_attribute_and_item_access_share_state(self):
        bundle = CounterBundle(hits=0, misses=0)
        bundle.hits += 1
        bundle["misses"] += 2
        assert bundle == {"hits": 1, "misses": 2}
        assert bundle.misses == 2
        with pytest.raises(AttributeError):
            bundle.nonexistent

    def test_snapshot_is_a_copy(self):
        bundle = CounterBundle(hits=1)
        snapshot = bundle.snapshot()
        bundle.hits += 1
        assert snapshot == {"hits": 1}

    def test_merge_and_reset(self):
        bundle = CounterBundle(hits=1)
        bundle.merge({"hits": 2, "writes": 5})
        assert bundle == {"hits": 3, "writes": 5}
        bundle.reset()
        assert bundle == {"hits": 0, "writes": 0}


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("scheduler.queue_wait_seconds") == \
            "repro_scheduler_queue_wait_seconds"
        assert prometheus_name("a-b c", prefix="") == "a_b_c"

    def test_flatten_stats(self):
        pairs = dict(flatten_stats({
            "scheduler": {"requests": 3, "note": "text"},
            "store": {"enabled": True},
            "latency": {"mean_seconds": 0.5},
            "timings": {"x": {"count": 1}},
            "empty": None,
        }, skip=("timings",)))
        assert pairs == {"scheduler.requests": 3.0, "store.enabled": 1.0,
                         "latency.mean_seconds": 0.5}

    def test_render_exposition_format(self):
        hist = Histogram("scheduler.queue_wait_seconds", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(
            {"scheduler": {"requests": 3}},
            {hist.name: hist.snapshot()})
        lines = text.splitlines()
        assert "# TYPE repro_scheduler_requests gauge" in lines
        assert "repro_scheduler_requests 3" in lines
        assert ("# TYPE repro_scheduler_queue_wait_seconds histogram"
                in lines)
        assert 'repro_scheduler_queue_wait_seconds_bucket{le="1"} 1' in lines
        assert 'repro_scheduler_queue_wait_seconds_bucket{le="2"} 1' in lines
        # Bucket counts are cumulative and +Inf equals the total count.
        assert ('repro_scheduler_queue_wait_seconds_bucket{le="+Inf"} 2'
                in lines)
        assert "repro_scheduler_queue_wait_seconds_sum 5.5" in lines
        assert "repro_scheduler_queue_wait_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_every_sample_line_parses(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.01)
        text = render_prometheus(
            {"scheduler": {"requests": 1}, "store": {"enabled": False}},
            registry.histogram_snapshots())
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            if not name.endswith('"}'):
                assert "{" not in name
            float(value)  # every sample value is a valid float

    def test_content_type_pins_text_exposition_version(self):
        assert PROMETHEUS_CONTENT_TYPE == \
            "text/plain; version=0.0.4; charset=utf-8"
