"""Tests of the tracing API: nesting, propagation, export, CLI."""

import asyncio
import json

import pytest

from repro.obs.tracing import (
    configure_tracing,
    disable_tracing,
    get_tracer,
    read_trace,
    span,
    summarize_trace,
    to_chrome_trace,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with the global tracer disabled."""
    disable_tracing()
    yield
    disable_tracing()


def _spans(path):
    return {record["name"]: record for record in read_trace(str(path))}


class TestSpans:
    def test_disabled_span_is_noop(self, tmp_path):
        assert not tracing_enabled()
        with span("anything") as handle:
            assert handle.span_id == ""

    def test_nested_spans_share_trace_and_parent_ids(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(path=str(path))
        with span("outer", model="m"):
            with span("inner"):
                pass
        disable_tracing()

        records = _spans(path)
        assert set(records) == {"outer", "inner"}
        outer, inner = records["outer"], records["inner"]
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"model": "m"}
        assert 0.0 <= inner["duration_seconds"] <= outer["duration_seconds"]

    def test_sibling_roots_get_distinct_traces(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(path=str(path))
        with span("first"):
            pass
        with span("second"):
            pass
        disable_tracing()
        records = _spans(path)
        assert records["first"]["trace_id"] != records["second"]["trace_id"]

    def test_parent_collects_stage_rollup(self, tmp_path):
        configure_tracing(path=str(tmp_path / "trace.jsonl"))
        with span("parent") as parent:
            with span("stage.a"):
                pass
            with span("stage.a"):
                pass
            with span("stage.b"):
                # Only *direct* children roll up.
                with span("stage.c"):
                    pass
        assert set(parent.stages) == {"stage.a", "stage.b"}

    def test_span_under_parents_across_a_boundary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = configure_tracing(path=str(path))
        with span("dispatch"):
            context = tracer.serialize_context()
        with tracer.span_under(context, "worker.root"):
            with span("worker.child"):
                pass
        # A stale remote context must not leak into later root spans.
        with span("unrelated"):
            pass
        disable_tracing()

        records = _spans(path)
        dispatch = records["dispatch"]
        assert records["worker.root"]["parent_id"] == dispatch["span_id"]
        assert records["worker.root"]["trace_id"] == dispatch["trace_id"]
        assert (records["worker.child"]["parent_id"]
                == records["worker.root"]["span_id"])
        assert records["unrelated"]["parent_id"] is None

    def test_record_span_emits_measured_duration(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = configure_tracing(path=str(path))
        with span("request"):
            context = tracer.serialize_context()
        tracer.record_span("queue_wait", 0.25, context=context, key="k")
        disable_tracing()

        records = _spans(path)
        wait = records["queue_wait"]
        assert wait["duration_seconds"] == pytest.approx(0.25)
        assert wait["parent_id"] == records["request"]["span_id"]
        assert wait["attrs"] == {"key": "k"}

    def test_buffered_mode_drains_and_reemits(self, tmp_path):
        tracer = configure_tracing(buffered=True)
        with span("worker.span"):
            pass
        batch = tracer.drain()
        assert [record["name"] for record in batch] == ["worker.span"]
        assert tracer.drain() == []

        path = tmp_path / "trace.jsonl"
        configure_tracing(path=str(path))
        for record in batch:
            get_tracer().emit(record)
        disable_tracing()
        assert "worker.span" in _spans(path)

    def test_spans_nest_across_asyncio_tasks_independently(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(path=str(path))

        async def point(name):
            with span(name):
                await asyncio.sleep(0)
                with span(name + ".child"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(point("a"), point("b"))

        asyncio.run(main())
        disable_tracing()
        records = _spans(path)
        assert records["a.child"]["parent_id"] == records["a"]["span_id"]
        assert records["b.child"]["parent_id"] == records["b"]["span_id"]
        assert records["a"]["trace_id"] != records["b"]["trace_id"]


class TestAnalysis:
    def test_read_trace_skips_bad_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok", "duration_seconds": 1.0}\n'
                        "not json\n"
                        '{"no_name": 1}\n')
        records = read_trace(str(path))
        assert [record["name"] for record in records] == ["ok"]

    def test_summarize_trace_aggregates_by_name(self):
        records = [
            {"name": "dp", "duration_seconds": 1.0},
            {"name": "dp", "duration_seconds": 3.0},
            {"name": "ga", "duration_seconds": 0.5},
        ]
        rows = {row["name"]: row for row in summarize_trace(records)}
        assert rows["dp"]["count"] == 2
        assert rows["dp"]["total_seconds"] == pytest.approx(4.0)
        assert rows["dp"]["mean_seconds"] == pytest.approx(2.0)
        assert rows["dp"]["p50_seconds"] == pytest.approx(2.0)
        assert rows["dp"]["max_seconds"] == pytest.approx(3.0)
        # Sorted by total time descending.
        assert [row["name"] for row in summarize_trace(records)] == \
            ["dp", "ga"]

    def test_chrome_trace_events(self):
        records = [{"name": "dp", "start_unix": 2.0,
                    "duration_seconds": 0.5, "pid": 7,
                    "attrs": {"k": "v"}}]
        document = to_chrome_trace(records)
        event = document["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(2.0e6)
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["pid"] == 7
        assert event["args"] == {"k": "v"}


class TestServiceTelemetry:
    def test_evaluate_carries_stage_timings_when_tracing(self, tmp_path):
        from repro.api.scenario import SCHEMA_VERSION, Scenario
        from repro.api.service import PlanService

        scenario = Scenario.from_dict({
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-6.7b", "num_layers": 2,
                         "batch_size": 8, "seq_length": 512},
            "solver": {"scheme": "temp", "engine": "tcme",
                       "max_candidates": 4},
        })
        service = PlanService()
        untraced = service.evaluate(scenario)
        assert untraced.telemetry is None

        configure_tracing(path=str(tmp_path / "trace.jsonl"))
        traced = service.evaluate(scenario)
        disable_tracing()
        # Telemetry rides outside the payload schema: identical results.
        assert traced.to_dict() == untraced.to_dict()
        assert traced.telemetry["evaluate_seconds"] > 0
        assert "evaluate.simulate" in traced.telemetry["stages"]


class TestObsCli:
    def _write_trace(self, path):
        configure_tracing(path=str(path))
        with span("outer"):
            with span("inner"):
                pass
        disable_tracing()

    def test_summarize_table_and_json(self, tmp_path, capsys):
        from repro.runner.cli import main

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        assert main(["obs", "summarize", str(path)]) == 0
        table = capsys.readouterr().out
        assert "outer" in table and "inner" in table

        assert main(["obs", "summarize", str(path), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["name"] for row in rows} == {"outer", "inner"}

    def test_chrome_export(self, tmp_path, capsys):
        from repro.runner.cli import main

        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        out = tmp_path / "chrome.json"
        assert main(["obs", "chrome", str(path), "-o", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert len(document["traceEvents"]) == 2

    def test_missing_or_empty_trace_fails_cleanly(self, tmp_path, capsys):
        from repro.runner.cli import main

        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "summarize", str(empty)]) == 1
        capsys.readouterr()
