"""Tests of the structured logging setup."""

import io
import json
import logging

from repro.obs.logs import setup_logging


def _log_to_buffer(**kwargs):
    stream = io.StringIO()
    logger = setup_logging(stream=stream, **kwargs)
    return logger, stream


class TestSetupLogging:
    def test_json_mode_emits_parseable_records(self):
        logger, stream = _log_to_buffer(level="info", json_mode=True)
        logger.info("evaluated %d scenarios", 3,
                    extra={"figure": "fig13"})
        record = json.loads(stream.getvalue())
        assert record["level"] == "INFO"
        assert record["logger"] == "repro"
        assert record["message"] == "evaluated 3 scenarios"
        assert record["figure"] == "fig13"
        assert "ts" in record

    def test_text_mode(self):
        logger, stream = _log_to_buffer(level="info", json_mode=False)
        logger.warning("queue is %s", "full")
        line = stream.getvalue()
        assert "WARNING" in line and "queue is full" in line

    def test_level_filtering(self):
        logger, stream = _log_to_buffer(level="warning")
        logger.info("hidden")
        logger.error("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_reconfiguration_replaces_handler(self):
        logger, _ = _log_to_buffer(level="info")
        _, stream = _log_to_buffer(level="info", json_mode=True)
        logger.info("only once")
        assert len(logging.getLogger("repro").handlers) == 1
        assert stream.getvalue().count("only once") == 1
