"""Cross-process span propagation through the scheduler's worker pool."""

import asyncio
import os

import pytest

from repro.api.scenario import SCHEMA_VERSION
from repro.obs.tracing import configure_tracing, disable_tracing, read_trace
from repro.server.scheduler import PlanScheduler
from repro.server.store import ResultStore

pytestmark = pytest.mark.slow  # spawns a real process pool


@pytest.fixture(autouse=True)
def _clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


def _doc():
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                     "seq_length": 512},
        "solver": {"scheme": "temp", "engine": "tcme", "max_candidates": 4},
    }


def test_pool_worker_spans_parent_under_dispatch(tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(path=str(path))

    async def scenario():
        async with PlanScheduler(store=ResultStore(None), jobs=2,
                                 batch_window=0.001) as scheduler:
            await scheduler.submit_doc(_doc())

    asyncio.run(scenario())
    disable_tracing()

    records = read_trace(str(path))
    by_name = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(record)
    by_id = {record["span_id"]: record for record in records}

    # The scheduler-side chain exists and nests request -> dispatch.
    request = by_name["scheduler.request"][0]
    dispatch = by_name["scheduler.dispatch"][0]
    assert dispatch["parent_id"] == request["span_id"]
    assert dispatch["trace_id"] == request["trace_id"]

    # The queue-wait span parents under the request too.
    wait = by_name["scheduler.queue_wait"][0]
    assert wait["parent_id"] == request["span_id"]

    # Worker spans were recorded in another process, shipped back, and
    # re-emitted under the dispatch span of this process.
    group = by_name["scheduler.evaluate_group"][0]
    assert group["pid"] != os.getpid()
    assert group["parent_id"] == dispatch["span_id"]
    assert group["trace_id"] == request["trace_id"]

    # The worker's evaluation chain hangs off its group span.
    evaluate = by_name["service.evaluate"][0]
    assert evaluate["pid"] == group["pid"]
    parent = by_id[evaluate["parent_id"]]
    assert parent["name"] == "scheduler.evaluate_group"
    assert "evaluate.simulate" in by_name


def test_in_process_worker_spans_parent_under_dispatch(tmp_path):
    path = tmp_path / "trace.jsonl"
    configure_tracing(path=str(path))

    async def scenario():
        async with PlanScheduler(store=ResultStore(None), jobs=1,
                                 batch_window=0.001) as scheduler:
            await scheduler.submit_doc(_doc())

    asyncio.run(scenario())
    disable_tracing()

    records = read_trace(str(path))
    by_name = {record["name"]: record for record in records}
    group = by_name["scheduler.evaluate_group"]
    assert group["pid"] == os.getpid()
    assert group["parent_id"] == by_name["scheduler.dispatch"]["span_id"]
    assert (by_name["service.evaluate"]["parent_id"] == group["span_id"])
