"""Registry contract: all figures registered, grids sane, cells executable."""

import pytest

import repro.experiments as experiments
from repro.runner.context import RunContext
from repro.runner.manifest import validate_manifest
from repro.runner.orchestrator import execute_cell, run_experiment
from repro.runner.registry import (
    all_experiments,
    expand_grid,
    figure_ids,
    get_experiment,
)

#: Every figure/table of the paper's evaluation plus the topology-zoo
#: study, in registry (sorted) order.
EXPECTED_FIGURES = [
    "fabric_zoo", "fig04", "fig07", "fig09", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "search_time",
]


class TestRegistry:
    def test_all_fourteen_figures_registered(self):
        assert figure_ids() == EXPECTED_FIGURES

    def test_lookup_unknown_figure_lists_known_ids(self):
        with pytest.raises(KeyError, match="fig13"):
            get_experiment("fig99")

    def test_metadata_is_complete(self):
        for experiment in all_experiments():
            assert experiment.paper
            assert experiment.title
            assert experiment.module.startswith("repro.experiments.")
            assert experiment.schema, experiment.figure
            assert experiment.entrypoints, experiment.figure
            assert callable(experiment.cell)

    def test_grids_expand_and_reduced_is_not_larger(self):
        for experiment in all_experiments():
            default_cells = experiment.cells(False)
            reduced_cells = experiment.cells(True)
            assert len(default_cells) >= 1
            assert len(reduced_cells) >= 1
            assert len(reduced_cells) <= len(default_cells)
            # Every cell's params must be a subset of the schema columns, so
            # merged rows can match the schema exactly.
            for cell in default_cells + reduced_cells:
                assert set(cell) <= set(experiment.schema), experiment.figure

    def test_expand_grid_product_and_explicit(self):
        assert expand_grid({"a": [1, 2], "b": ["x"]}) == [
            {"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert expand_grid([{"a": 1}, {"a": 2, "b": 3}]) == [
            {"a": 1}, {"a": 2, "b": 3}]

    def test_entrypoints_exported_from_experiments_package(self):
        for experiment in all_experiments():
            for name in experiment.entrypoints:
                assert name in experiments.__all__
                assert callable(getattr(experiments, name))

    def test_all_is_sorted_and_complete(self):
        registered = sorted(
            name for experiment in all_experiments()
            for name in experiment.entrypoints)
        assert experiments.__all__ == registered


class TestReducedGridsExecute:
    """Every figure's reduced grid runs and its manifest validates.

    One cell per figure is executed directly (cheap); the full reduced grids
    are exercised end-to-end for the two cheapest figures and, in CI, by the
    ``figures`` job for all of them.
    """

    @pytest.mark.parametrize("figure", EXPECTED_FIGURES)
    def test_first_reduced_cell_matches_schema(self, figure):
        experiment = get_experiment(figure)
        params = experiment.cells(reduced=True)[0]
        outcome = execute_cell(experiment, params, RunContext(reduced=True))
        assert outcome.error is None, outcome.error
        assert outcome.rows, f"{figure} produced no rows"
        for row in outcome.rows:
            assert set(row) == set(experiment.schema)

    @pytest.mark.parametrize("figure", ["fig09", "fig20"])
    def test_reduced_manifest_validates(self, figure, tmp_path):
        manifest = run_experiment(figure, reduced=True, jobs=1,
                                  output_dir=str(tmp_path))
        experiment = get_experiment(figure)
        assert validate_manifest(manifest, experiment) == []
        assert (tmp_path / f"{figure}.json").exists()
        assert len(manifest["cells"]) == len(experiment.cells(True))
