"""Orchestrator, manifest, docs, and CLI behaviour."""

import json

from repro.runner import docs as docs_module
from repro.runner.cli import main
from repro.runner.manifest import (
    finite,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.runner.orchestrator import run_all, run_experiment
from repro.runner.registry import get_experiment


class TestParallelSerialParity:
    def test_two_workers_bit_identical_to_serial(self, tmp_path):
        """Pins the shared-PlanCache injection contract: sharding cells
        across workers (each with a private cache) must not change any row.
        """
        serial = run_experiment("fig09", reduced=True, jobs=1,
                                output_dir=str(tmp_path / "serial"))
        parallel = run_experiment("fig09", reduced=True, jobs=2,
                                  output_dir=str(tmp_path / "parallel"))
        assert serial["rows"] == parallel["rows"]
        # Bit-identical through JSON serialisation as well.
        on_disk_serial = read_manifest(str(tmp_path / "serial" / "fig09.json"))
        on_disk_parallel = read_manifest(
            str(tmp_path / "parallel" / "fig09.json"))
        assert (json.dumps(on_disk_serial["rows"], sort_keys=True)
                == json.dumps(on_disk_parallel["rows"], sort_keys=True))

    def test_jobs_recorded_in_manifest(self):
        manifest = run_experiment("fig09", reduced=True, jobs=2)
        assert manifest["jobs"] == 2
        assert manifest["reduced"] is True

    def test_run_all_shared_pool_matches_independent_runs(self):
        """One pool serves several figures; rows still match solo runs."""
        manifests = run_all(["fig09", "fig20"], reduced=True, jobs=2)
        assert list(manifests) == ["fig09", "fig20"]
        for figure in ("fig09", "fig20"):
            solo = run_experiment(figure, reduced=True, jobs=1)
            assert manifests[figure]["rows"] == solo["rows"]

    def test_manifest_grid_does_not_alias_registry(self):
        manifest = run_experiment("fig09", reduced=True, jobs=1)
        manifest["grid"]["degree"].append(999)
        assert 999 not in get_experiment("fig09").reduced_grid["degree"]


class TestManifest:
    def test_finite_sanitises_nonfinite_floats(self):
        assert finite(float("inf")) is None
        assert finite(float("nan")) is None
        assert finite({"a": [1.0, float("-inf")]}) == {"a": [1.0, None]}
        assert finite("inf") == "inf"

    def test_manifest_shape_and_accounting(self, tmp_path):
        manifest = run_experiment("fig20", reduced=True, jobs=1,
                                  output_dir=str(tmp_path))
        assert manifest["figure"] == "fig20"
        assert manifest["version"] == 1
        assert len(manifest["cells"]) == 5
        for cell in manifest["cells"]:
            assert cell["wall_seconds"] >= 0
            assert cell["error"] is None
            assert cell["num_rows"] == 1
        assert manifest["timings"]["total_seconds"] > 0
        assert manifest["timings"]["max_cell_seconds"] >= \
            manifest["timings"]["mean_cell_seconds"]

    def test_validator_catches_schema_and_cell_errors(self, tmp_path):
        manifest = run_experiment("fig09", reduced=True, jobs=1)
        experiment = get_experiment("fig09")
        assert validate_manifest(manifest, experiment) == []

        broken = json.loads(json.dumps(manifest))
        broken["rows"][0].pop("throughput")
        assert any("mismatch schema" in problem
                   for problem in validate_manifest(broken, experiment))

        broken = json.loads(json.dumps(manifest))
        broken["cells"][0]["error"] = "boom"
        assert any("failed" in problem
                   for problem in validate_manifest(broken, experiment))

        broken = json.loads(json.dumps(manifest))
        del broken["rows"]
        assert any("missing top-level key" in problem
                   for problem in validate_manifest(broken, experiment))

    def test_failing_cell_is_recorded_not_raised(self):
        from repro.runner.context import RunContext
        from repro.runner.orchestrator import execute_cell
        experiment = get_experiment("fig07")
        outcome = execute_cell(experiment, {"model": "no-such-model",
                                            "wafer": "4x8"},
                               RunContext())
        assert outcome.error is not None
        assert outcome.rows == []

    def test_write_is_strict_json(self, tmp_path):
        manifest = run_experiment("fig09", reduced=True, jobs=1)
        path = write_manifest(manifest, str(tmp_path))
        text = open(path).read()
        assert "Infinity" not in text and "NaN" not in text
        json.loads(text)


class TestDocs:
    def test_rendered_docs_cover_all_figures(self):
        content = docs_module.render_experiments_md()
        from repro.runner.registry import figure_ids
        for figure in figure_ids():
            assert f"`{figure}`" in content

    def test_checked_in_experiments_md_is_fresh(self):
        """The repo's EXPERIMENTS.md must match the registry (CI parity)."""
        import pathlib
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        assert docs_module.check_experiments_md(
            str(repo_root / "EXPERIMENTS.md")), (
            "EXPERIMENTS.md is stale; regenerate with "
            "`PYTHONPATH=src python -m repro docs`")

    def test_check_reports_stale_file(self, tmp_path):
        stale = tmp_path / "EXPERIMENTS.md"
        stale.write_text("# stale\n")
        assert not docs_module.check_experiments_md(str(stale))
        assert not docs_module.check_experiments_md(
            str(tmp_path / "missing.md"))
        written = docs_module.write_experiments_md(
            str(tmp_path / "fresh.md"))
        assert docs_module.check_experiments_md(written)


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "search_time" in out

    def test_run_writes_manifest_and_check_passes_per_figure(self, tmp_path,
                                                            capsys):
        assert main(["run", "fig09", "--reduced",
                     "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "fig09.json").exists()
        # check fails while the other figures are missing.
        assert main(["check", "--output-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "MISSING" in err

    def test_run_unknown_figure_exits_nonzero(self, capsys):
        assert main(["run", "fig99", "--reduced", "--no-write"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err and "registered" in err

    def test_docs_check_against_repo_copy(self, tmp_path):
        import pathlib
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        assert main(["docs", "--check",
                     "--output", str(repo_root / "EXPERIMENTS.md")]) == 0
        stale = tmp_path / "EXPERIMENTS.md"
        stale.write_text("# stale\n")
        assert main(["docs", "--check", "--output", str(stale)]) == 1


class TestCacheStatsAggregation:
    def test_last_snapshot_per_pid_wins(self):
        """Counters are cumulative per process: summing every snapshot would
        double-count, so only each pid's final snapshot contributes.
        """
        from repro.runner.orchestrator import CellOutcome, aggregate_cache_stats

        def outcome(pid, hits, misses, entries):
            return CellOutcome(params={}, rows=[], wall_seconds=0.0,
                               oom_rows=0, pid=pid,
                               cache_stats={"hits": hits, "misses": misses,
                                            "entries": entries})

        stats = aggregate_cache_stats([
            outcome(100, 1, 5, 5),    # superseded by the later pid-100 snapshot
            outcome(200, 2, 3, 3),
            outcome(100, 10, 6, 6),
        ])
        assert stats == {"processes": 2, "hits": 12, "misses": 9,
                         "entries": 9, "hit_rate": round(12 / 21, 4)}

    def test_no_snapshots_is_all_zero(self):
        from repro.runner.orchestrator import CellOutcome, aggregate_cache_stats

        stats = aggregate_cache_stats([
            CellOutcome(params={}, rows=[], wall_seconds=0.0, oom_rows=0)])
        assert stats == {"processes": 0, "hits": 0, "misses": 0,
                         "entries": 0, "hit_rate": 0.0}

    def test_manifest_carries_fleet_wide_counters(self):
        # fig13 derives execution plans, so its cells actually touch the
        # plan cache (fig09 is a pure search-time figure and would not).
        serial = run_experiment("fig13", reduced=True, jobs=1)
        pooled = run_experiment("fig13", reduced=True, jobs=2)
        for manifest in (serial, pooled):
            cache = manifest["plan_cache"]
            assert cache["processes"] >= 1
            assert cache["hits"] + cache["misses"] > 0
            assert 0.0 <= cache["hit_rate"] <= 1.0
        # The pooled run aggregates every worker, not just the parent
        # (which executes no cells and would report zeros).
        assert pooled["plan_cache"]["misses"] > 0
