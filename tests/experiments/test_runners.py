"""Smoke and shape tests for the experiment runners (fast, reduced sizes)."""

import pytest

from repro.experiments.fig04_motivation import run_breakdown, run_memory_comparison
from repro.experiments.fig07_ring_utilization import run_ring_utilization
from repro.experiments.fig09_sweet_spot import (
    LinearLayerWorkload,
    optimal_degree,
    run_sweet_spot,
)
from repro.experiments.fig13_overall import format_table, run_overall_comparison
from repro.experiments.fig14_power import run_power_comparison
from repro.experiments.fig15_gpu_comparison import run_gpu_comparison
from repro.experiments.fig16_ablation import run_ablation
from repro.experiments.fig17_parallel_configs import run_config_sweep
from repro.experiments.fig18_convergence import (
    optimal_tatp_degrees,
    run_convergence,
)
from repro.experiments.fig19_multiwafer import run_multiwafer_study
from repro.experiments.fig20_fault_tolerance import run_fault_tolerance
from repro.experiments.fig21_cost_model import run_cost_model_validation
from repro.experiments.search_time import run_search_time_comparison


class TestMotivation:
    def test_breakdown_rows(self):
        rows = run_breakdown(models=["gpt3-6.7b"])
        assert len(rows) == 1
        row = rows[0]
        assert 0 < row.collective_fraction < 1
        assert row.collective_fraction + row.other_fraction == pytest.approx(1.0)

    def test_memory_overhead_exceeds_ideal(self):
        rows = run_memory_comparison(models=["llama2-70b"])
        assert rows[0].overhead > 1.0
        assert rows[0].megatron_oom


class TestRingUtilization:
    def test_physical_ring_never_worse(self):
        rows = run_ring_utilization(models=["llama2-7b"], wafer_sizes=[(4, 8)])
        assert rows
        for row in rows:
            assert row.physical_ring_utilization >= row.logical_ring_utilization - 1e-9
            assert row.utilization_drop >= -1e-9


class TestSweetSpot:
    def test_throughput_peaks_at_moderate_degree(self):
        points = run_sweet_spot()
        best = optimal_degree(points)
        assert 4 <= best <= 16
        throughputs = {p.degree: p.throughput for p in points}
        assert throughputs[best] > throughputs[64]
        assert throughputs[best] > throughputs[2]

    def test_memory_scales_inversely(self):
        points = run_sweet_spot(die_counts=[2, 4, 8])
        assert points[0].memory_bytes_per_die == pytest.approx(
            4 * points[2].memory_bytes_per_die)

    def test_workload_properties(self):
        workload = LinearLayerWorkload()
        assert workload.flops > 0
        assert workload.weight_bytes > 0


class TestOverallComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_overall_comparison(models=["gpt3-6.7b", "llama3-70b"])

    def test_grid_is_complete(self, comparison):
        assert len(comparison.systems()) == 7
        assert len(comparison.models()) == 2
        assert len(comparison.cells) == 14

    def test_temp_wins_on_average(self, comparison):
        speedups = comparison.average_speedups()
        assert all(value >= 1.0 for value in speedups.values())

    def test_megatron_ooms_on_70b(self, comparison):
        assert comparison.cell("llama3-70b", "Mega+SMap").oom
        assert not comparison.cell("llama3-70b", "TEMP").oom

    def test_normalized_latency_bounded(self, comparison):
        normalized = comparison.normalized_latency("gpt3-6.7b")
        assert max(normalized.values()) == pytest.approx(1.0)
        assert all(0 < value <= 1.0 for value in normalized.values())

    def test_memory_ratio_below_parity(self, comparison):
        ratios = comparison.memory_ratio("llama3-70b")
        assert all(ratio <= 1.1 for ratio in ratios.values())

    def test_format_table_mentions_all_systems(self, comparison):
        text = format_table(comparison)
        for system in comparison.systems():
            assert system in text


class TestPowerAndAblation:
    def test_power_breakdown_normalised(self):
        comparison = run_power_comparison(models=["gpt3-6.7b"])
        cell = comparison.cell("gpt3-6.7b", "TEMP")
        assert sum(cell.breakdown().values()) == pytest.approx(1.0)
        assert comparison.efficiency_gain_over("Mega+SMap") >= 1.0

    def test_ablation_gains_are_monotone(self):
        study = run_ablation(models=["llama3-70b"])
        row = study.rows[0]
        normalized = row.normalized()
        assert normalized["base"] == pytest.approx(1.0)
        assert normalized["base+tatp"] >= 0.999
        assert normalized["base+tatp+tcme"] >= normalized["base+tatp"] * 0.999


class TestConfigSweep:
    def test_sweep_contains_pure_and_hybrid_configs(self):
        sweep = run_config_sweep(model_name="llama2-7b", seq_length=2048,
                                 max_tatp=32)
        labels = {config.label for config in sweep.configs}
        assert "(32,1,1,1)" in labels
        assert "(1,1,1,32)" in labels
        best = sweep.best()
        assert best.throughput > 0

    def test_best_with_tatp_beats_best_without(self):
        sweep = run_config_sweep(model_name="llama2-7b", seq_length=2048)
        assert sweep.best_with_tatp().throughput >= \
            sweep.best_without_tatp().throughput * 0.95


class TestFaultToleranceRunner:
    def test_link_cliff_and_core_gracefulness(self):
        study = run_fault_tolerance(
            link_rates=[0.0, 0.2, 0.5], core_rates=[0.0, 0.25])
        assert study.link_sweep[0].relative_throughput == pytest.approx(1.0)
        assert study.link_sweep[-1].relative_throughput < 0.5
        assert study.core_sweep[-1].relative_throughput > 0.6


class TestSearchTime:
    def test_dls_faster_than_exhaustive(self):
        result = run_search_time_comparison(
            model_name="gpt3-6.7b", max_candidates=6, exhaustive_cap=2000,
            ga_generations=4)
        assert result.dls_seconds > 0
        assert result.exhaustive_total_space > result.dls_evaluations
        assert result.projected_speedup > 10


class TestGPUComparisonRunner:
    def test_wafer_temp_beats_both(self):
        rows = run_gpu_comparison(models=["gpt3-6.7b"])
        assert len(rows) == 1
        row = rows[0]
        # Paper: Wafer+TEMP achieves the lowest latency of the three systems.
        assert row.wafer_temp_time <= row.gpu_mesp_time * 1.001
        assert row.wafer_temp_time <= row.wafer_mesp_time * 1.001
        assert row.temp_speedup_over_gpu >= 1.0
        assert row.wafer_temp_throughput > 0


class TestConvergenceRunner:
    def test_optimal_tatp_in_moderate_band(self):
        results = run_convergence(model_names=("gpt3-6.7b",),
                                  seq_lengths=(2048,))
        assert set(results) == {("gpt3-6.7b", 2048)}
        sweep = results[("gpt3-6.7b", 2048)]
        best = sweep.best()
        # Paper: the winning TATP degree converges to a moderate band and the
        # best configuration never loses to the best TATP-free one.
        assert 1 <= best.tatp <= 32
        assert best.throughput >= sweep.best_without_tatp().throughput * 0.999
        degrees = optimal_tatp_degrees(results)
        assert degrees[("gpt3-6.7b", 2048)] == best.tatp


class TestMultiWaferRunner:
    @pytest.fixture(scope="class")
    def study(self):
        return run_multiwafer_study(models={"gpt3-175b": 2},
                                    num_microbatches=8)

    def test_grid_is_complete(self, study):
        assert study.models() == ["gpt3-175b"]
        assert len(study.systems()) == 7
        assert len(study.cells) == 7

    def test_temp_wins_without_oom(self, study):
        temp = study.cell("gpt3-175b", "TEMP")
        assert not temp.oom
        for system in study.systems():
            if system == "TEMP":
                continue
            assert study.temp_speedup("gpt3-175b", system) >= 0.999

    def test_pipeline_spans_wafers(self, study):
        for cell in study.cells:
            assert cell.num_wafers == 2
            if not cell.oom:
                assert cell.pp_degree >= cell.num_wafers


class TestCostModelRunner:
    def test_dnn_beats_regression_at_reduced_size(self):
        study = run_cost_model_validation(
            train_samples_per_category=60, test_samples_per_category=80,
            epochs=40, seed=0)
        assert set(study.dnn_accuracy) == set(study.regression_accuracy)
        assert study.dnn_max_error() < study.regression_max_error()
        assert study.dnn_min_correlation() > 0.5
        assert study.test_samples > study.training_samples
