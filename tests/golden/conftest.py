"""Options of the golden-manifest regression tests.

The refresh flow (after an intentional result change)::

    PYTHONPATH=src python -m pytest tests/golden --update-goldens
    git diff tests/golden/goldens/   # review the new numbers, then commit

``--update-goldens`` is registered here, so it is available whenever
``tests/golden`` is part of the initial command-line arguments (the
documented invocation above). ``REPRO_UPDATE_GOLDENS=1`` works from any
invocation as an environment fallback.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/golden/goldens/*.json from a fresh reduced run "
             "instead of asserting against them")


@pytest.fixture
def update_goldens(request):
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        return True
    try:
        return request.config.getoption("--update-goldens")
    except ValueError:
        return False
