"""Golden-manifest regression tests: reduced grids are pinned across time.

The within-run parity contracts (serial vs parallel, served vs direct,
sweep vs orchestrator) cannot catch a change that shifts *every* path at
once — a cost-model edit, a solver reordering, a serialisation change.
These tests pin the actual numbers: the checked-in goldens under
``tests/golden/goldens/`` hold the full reduced-grid rows of two figures,
and ``repro run <figure> --reduced`` must reproduce them row-identically.

After an *intentional* result change, refresh and review the goldens::

    PYTHONPATH=src python -m pytest tests/golden --update-goldens
    git diff tests/golden/goldens/

(``REPRO_UPDATE_GOLDENS=1`` is the environment-variable equivalent.)
"""

import json
from pathlib import Path

import pytest

from repro.runner import orchestrator
from repro.runner.manifest import validate_manifest
from repro.runner.registry import get_experiment

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Figures whose reduced grids are pinned (one cartesian single-wafer grid,
#: one zipped multi-wafer grid — cheap enough for tier-1).
GOLDEN_FIGURES = ["fig13", "fig19"]

pytestmark = pytest.mark.slow  # each test runs a full reduced grid


def _golden_document(figure, manifest):
    """The comparable slice of a manifest: identity + schema + rows.

    Timings and worker counts vary run to run; the rows (passed through a
    JSON round-trip so tuples/floats normalise exactly like the written
    artifact) are what the figure actually plots.
    """
    return {
        "figure": figure,
        "reduced": True,
        "schema": list(manifest["schema"]),
        "rows": json.loads(json.dumps(manifest["rows"], allow_nan=False)),
    }


@pytest.mark.parametrize("figure", GOLDEN_FIGURES)
def test_reduced_run_reproduces_golden_rows(figure, update_goldens):
    manifest = orchestrator.run_experiment(figure, reduced=True)
    assert validate_manifest(manifest, get_experiment(figure)) == []
    document = _golden_document(figure, manifest)
    path = GOLDEN_DIR / f"{figure}.json"
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(document, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        pytest.skip(f"updated {path}")
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema"] == golden["schema"], \
        "schema drifted from the golden manifest"
    assert len(document["rows"]) == len(golden["rows"]), \
        "row count drifted from the golden manifest"
    for index, (actual, expected) in enumerate(
            zip(document["rows"], golden["rows"])):
        assert actual == expected, (
            f"row {index} of {figure} drifted from the golden manifest; "
            f"if the change is intentional, refresh with "
            f"`pytest tests/golden --update-goldens` and review the diff")


@pytest.mark.parametrize("figure", GOLDEN_FIGURES)
def test_golden_files_are_well_formed(figure):
    # Cheap guard, independent of evaluation: the checked-in goldens parse,
    # match their figure's registered schema, and are non-empty.
    golden = json.loads(
        (GOLDEN_DIR / f"{figure}.json").read_text(encoding="utf-8"))
    experiment = get_experiment(figure)
    assert golden["figure"] == figure
    assert golden["schema"] == list(experiment.schema)
    assert golden["rows"], "golden manifest has no rows"
    for row in golden["rows"]:
        assert set(row) == set(experiment.schema)
