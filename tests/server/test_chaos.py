"""Tests of the resilience layer, driven by deterministic fault injection.

The acceptance contract of PR 6 lives here: a crashed worker (thread-mode
exception or a genuinely killed pool process) triggers retry, pool rebuild,
and — when a poison scenario keeps killing its group — bisection that
isolates the poison behind a terminal typed error while its batch-mates
come back bit-identical to a direct evaluation. Deadlines become structured
504s instead of hung futures, admission control sheds with 503 +
``Retry-After``, the client retries dropped connections with jittered
backoff, and every failure path is countable in ``/metrics``.
"""

import asyncio
import random
from types import SimpleNamespace

import pytest

from repro.api.scenario import SCHEMA_VERSION, Scenario
from repro.api.portfolio import Portfolio, PortfolioAxis
from repro.api.service import PlanService
from repro.runner.orchestrator import execute_cell
from repro.server.client import PlanClient, PlanServerError
from repro.server.faults import (
    FaultInjector,
    FaultSpecError,
    InjectedStoreWriteError,
    InjectedWorkerCrash,
    parse_spec,
)
from repro.server.portfolio import sweep_portfolio
from repro.server.resilience import (
    RetryPolicy,
    classify_exception,
    is_retryable_exception,
    is_retryable_payload,
)
from repro.server.scheduler import PlanRequestError, PlanScheduler
from repro.server.store import ResultStore


def _doc(**overrides):
    """A fast (~20 ms) single-wafer scenario document."""
    workload = {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                "seq_length": 512}
    workload.update(overrides.pop("workload", {}))
    document = {
        "schema_version": SCHEMA_VERSION,
        "workload": workload,
        "solver": {"scheme": "temp", "engine": "tcme", "max_candidates": 4},
    }
    document.update(overrides)
    return document


def _direct(document):
    return PlanService().evaluate(Scenario.from_dict(document)).to_dict()


def _run(coroutine):
    return asyncio.run(coroutine)


#: Fast retry policy so failure-path tests don't sleep for real.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.002,
                         jitter=0.0)


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"multiplier": 0.5},
        {"base_delay": 1.0, "max_delay": 0.5},
        {"jitter": 1.5},
        {"jitter": -0.1},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_bounds_and_is_seedable(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=2.0,
                             max_delay=1.0, jitter=0.5)
        rng = random.Random(1234)
        draws = [policy.delay(2, rng=rng) for _ in range(200)]
        assert all(0.2 * 0.5 <= delay <= 0.2 * 1.5 for delay in draws)
        # Jitter actually spreads the delays (not a constant).
        assert max(draws) - min(draws) > 0.01
        # Seeded rng makes the schedule reproducible.
        rng = random.Random(1234)
        again = [policy.delay(2, rng=rng) for _ in range(200)]
        assert draws == again

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)

    def test_to_dict_snapshot(self):
        assert RetryPolicy(max_attempts=2).to_dict()["max_attempts"] == 2
        assert set(RetryPolicy().to_dict()) == {
            "max_attempts", "base_delay", "multiplier", "max_delay",
            "jitter"}


class TestSpecParsing:
    def test_counted_rules_default_to_once(self):
        for name in ("worker-crash", "store-write-fail", "flaky-http"):
            (rule,) = parse_spec(name)
            assert rule.count == 1

    def test_once_alias_and_explicit_counts(self):
        (rule,) = parse_spec("worker-crash:once")
        assert rule.count == 1
        (rule,) = parse_spec("worker-crash:3")
        assert rule.count == 3

    def test_poison_and_slow_eval_arguments(self):
        (poison,) = parse_spec("poison:llama2-7b")
        assert poison.match == "llama2-7b"
        assert poison.count is None
        (slow,) = parse_spec("slow-eval:0.25")
        assert slow.seconds == 0.25
        assert slow.count is None
        (slow,) = parse_spec("slow-eval:0.25:2")
        assert slow.count == 2

    def test_comma_separated_rules_compose(self):
        rules = parse_spec("worker-crash:2, slow-eval:0.1, flaky-http")
        assert [rule.name for rule in rules] == [
            "worker-crash", "slow-eval", "flaky-http"]

    @pytest.mark.parametrize("spec", [
        "",
        "   ,  ",
        "segfault-everything",
        "worker-crash:0",
        "worker-crash:two",
        "worker-crash:1:2",
        "poison",
        "poison:",
        "slow-eval",
        "slow-eval:fast",
        "slow-eval:-1",
        "slow-eval:0.1:0",
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse_spec(spec)

    def test_from_spec_of_nothing_is_none(self):
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None
        assert FaultInjector.from_spec("   ") is None

    def test_counted_rules_share_one_token_budget(self, tmp_path):
        first = FaultInjector("worker-crash:2", state_dir=str(tmp_path))
        second = FaultInjector("worker-crash:2", state_dir=str(tmp_path))
        claims = [first._claim(first.rules[0]),
                  second._claim(second.rules[0]),
                  first._claim(first.rules[0]),
                  second._claim(second.rules[0])]
        assert claims == [True, True, False, False]

    def test_stats_reports_spec_and_firings(self, tmp_path):
        injector = FaultInjector("store-write-fail:1",
                                 state_dir=str(tmp_path))
        with pytest.raises(InjectedStoreWriteError):
            injector.on_store_write()
        injector.on_store_write()  # budget spent: second write passes
        stats = injector.stats()
        assert stats["spec"] == "store-write-fail:1"
        assert stats["rules"] == ["store-write-fail"]
        assert stats["fired"] == {"store-write-fail": 1}


class TestClassification:
    def test_exception_taxonomy(self):
        from concurrent.futures.process import BrokenProcessPool

        assert is_retryable_exception(BrokenProcessPool("worker died"))
        assert is_retryable_exception(ConnectionResetError("dropped"))
        assert is_retryable_exception(InjectedWorkerCrash("chaos"))
        assert not is_retryable_exception(ValueError("bad document"))
        assert not is_retryable_exception(TypeError("wrong type"))
        assert not is_retryable_exception(KeyError("missing"))

    def test_broken_pool_classifies_as_worker_crashed(self):
        from concurrent.futures.process import BrokenProcessPool

        failure = classify_exception(BrokenProcessPool("worker died"))
        assert (failure.kind, failure.retryable) == ("worker_crashed", True)

    def test_self_classification_wins_over_type(self):
        # InjectedStoreWriteError is an OSError, but the marker attribute
        # is what classify consults first.
        class TerminalOSError(OSError):
            retryable = False

        assert not is_retryable_exception(TerminalOSError("really broken"))
        assert is_retryable_exception(InjectedStoreWriteError("chaos"))

    def test_payload_taxonomy(self):
        assert is_retryable_payload(
            {"error": {"type": "overloaded", "status": 503}})
        assert is_retryable_payload(
            {"error": {"type": "deadline_expired", "status": 504}})
        assert not is_retryable_payload(
            {"error": {"type": "ScenarioError", "status": 400}})
        # The payload's own flag wins over the kind table.
        assert not is_retryable_payload(
            {"error": {"type": "overloaded", "retryable": False}})
        assert is_retryable_payload(
            {"error": {"type": "anything", "retryable": True}})
        assert not is_retryable_payload({"no_error": True})
        assert not is_retryable_payload({"error": "just a string"})


class TestWorkerCrashRecovery:
    def test_crashed_worker_is_retried_and_payload_unaffected(self, tmp_path):
        document = _doc()
        chaos = FaultInjector("worker-crash:1", state_dir=str(tmp_path))

        async def scenario():
            async with PlanScheduler(batch_window=0.001, chaos=chaos,
                                     retry=FAST_RETRY) as scheduler:
                payload = await scheduler.submit_doc(document)
                return payload, dict(scheduler.counters)

        payload, counters = _run(scenario())
        assert payload == _direct(document)
        assert counters["retries"] == 1
        assert counters["evaluations"] == 1
        assert chaos.fired == {"worker-crash": 1}

    def test_poison_scenario_is_bisected_out_of_its_group(self):
        good_a = _doc(solver={"scheme": "temp", "engine": "tcme",
                              "max_candidates": 2})
        good_b = _doc(solver={"scheme": "temp", "engine": "tcme",
                              "max_candidates": 3})
        # seq_length 768 is the poison marker: its canonical JSON contains
        # "768", which no other document's does.
        poison = _doc(workload={"seq_length": 768})
        poison_key = Scenario.from_dict(poison).cache_key()

        async def scenario():
            # One wide window so all three land in one micro-batch (and one
            # hardware group); the poison then kills the whole group until
            # bisection isolates it.
            async with PlanScheduler(batch_window=0.25, chaos="poison:768",
                                     retry=FAST_RETRY) as scheduler:
                results = await scheduler.submit_batch(
                    [good_a, good_b, poison])
                return results, dict(scheduler.counters)

        results, counters = _run(scenario())
        assert results[0] == _direct(good_a)
        assert results[1] == _direct(good_b)
        error = results[2]["error"]
        assert error["type"] == "worker_crashed"
        assert error["status"] == 500
        assert error["retryable"] is False
        assert error["cache_key"] == poison_key
        assert counters["errors"] == 1
        assert counters["evaluations"] == 2
        assert counters["retries"] >= 1

    def test_group_failure_payloads_name_every_request(self):
        # Both batch-mates of a failing pair carry their own cache_key, so
        # a batch client can tell which of its scenarios was the poison.
        doc_a = _doc(workload={"seq_length": 768})
        doc_b = _doc(workload={"seq_length": 768, "batch_size": 16})
        keys = {Scenario.from_dict(doc).cache_key()
                for doc in (doc_a, doc_b)}

        async def scenario():
            async with PlanScheduler(batch_window=0.25, chaos="poison:768",
                                     retry=FAST_RETRY) as scheduler:
                return await scheduler.submit_batch([doc_a, doc_b])

        results = _run(scenario())
        assert {payload["error"]["cache_key"]
                for payload in results} == keys
        assert all(payload["error"]["type"] == "worker_crashed"
                   for payload in results)


class TestDeadline:
    def test_expired_deadline_is_a_structured_504(self):
        async def scenario():
            async with PlanScheduler(batch_window=0.001,
                                     chaos="slow-eval:0.3",
                                     deadline=0.05) as scheduler:
                with pytest.raises(PlanRequestError) as excinfo:
                    await scheduler.submit_doc(_doc())
                # close() (via the context manager) drains the still-running
                # evaluation — the shielded future is never abandoned.
                return excinfo.value, dict(scheduler.counters)

        error, counters = _run(scenario())
        assert error.kind == "deadline_expired"
        assert error.status == 504
        assert error.payload["error"]["retryable"] is True
        assert counters["deadline_expired"] == 1

    def test_expired_request_still_feeds_the_store(self, tmp_path):
        # The deadline bounds the caller's wait, not the evaluation: the
        # shielded future completes and the store is fed, so a retry of the
        # same scenario is a store hit instead of a second solve.
        document = _doc()
        chaos = FaultInjector("slow-eval:0.2:1",
                              state_dir=str(tmp_path / "chaos"))

        async def scenario():
            store = ResultStore(None)
            async with PlanScheduler(batch_window=0.001,
                                     chaos=chaos,
                                     deadline=0.05,
                                     store=store) as scheduler:
                with pytest.raises(PlanRequestError):
                    await scheduler.submit_doc(document)
                await scheduler.drain()
                payload, source = await scheduler.submit_doc_traced(document)
                return payload, source, store.stats()

        payload, source, store_stats = _run(scenario())
        assert source == "store"
        assert payload == _direct(document)
        assert store_stats["writes"] == 1

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline"):
            PlanScheduler(deadline=0)


class TestStoreWriteFailure:
    def test_failed_store_write_still_serves_the_result(self, tmp_path):
        document = _doc()
        chaos = FaultInjector("store-write-fail:1",
                              state_dir=str(tmp_path / "chaos"))

        async def scenario():
            store = ResultStore(None)
            async with PlanScheduler(batch_window=0.001, chaos=chaos,
                                     store=store) as scheduler:
                first = await scheduler.submit_doc(document)
                # The budget is spent: the re-evaluation's write succeeds.
                second, source = await scheduler.submit_doc_traced(document)
                return (first, second, source, dict(scheduler.counters),
                        store.stats())

        first, second, source, counters, store_stats = _run(scenario())
        assert first == _direct(document)
        assert second == first
        assert source == "evaluated"  # nothing was stored the first time
        assert counters["store_write_failures"] == 1
        assert store_stats["writes"] == 1

    def test_sqlite_store_under_write_fault(self, tmp_path):
        # The same containment contract holds behind the indexed backend:
        # the injected failure costs one write, nothing else, and the next
        # evaluation persists (visible across a reopen).
        document = _doc()
        path = str(tmp_path / "plans.sqlite")
        chaos = FaultInjector("store-write-fail:1",
                              state_dir=str(tmp_path / "chaos"))

        async def scenario():
            with ResultStore(path) as store:
                assert store.backend == "sqlite"
                async with PlanScheduler(batch_window=0.001, chaos=chaos,
                                         store=store) as scheduler:
                    first = await scheduler.submit_doc(document)
                    second, source = await scheduler.submit_doc_traced(
                        document)
                    return (first, second, source,
                            dict(scheduler.counters), store.stats())

        first, second, source, counters, store_stats = _run(scenario())
        assert first == _direct(document)
        assert second == first
        assert source == "evaluated"
        assert counters["store_write_failures"] == 1
        assert store_stats["writes"] == 1
        with ResultStore(path) as reopened:
            assert len(reopened) == 1
            key = Scenario.from_dict(document).cache_key()
            assert reopened.get(key) == first


class TestAdmissionControl:
    def test_saturated_queue_sheds_with_retry_after(self):
        slow = _doc()
        other = _doc(workload={"batch_size": 16})

        async def scenario():
            async with PlanScheduler(batch_window=0.001,
                                     chaos="slow-eval:0.2",
                                     max_queue=1) as scheduler:
                first = asyncio.ensure_future(scheduler.submit_doc(slow))
                await asyncio.sleep(0)  # let it register as in-flight
                with pytest.raises(PlanRequestError) as excinfo:
                    await scheduler.submit_doc(other)
                shed_error = excinfo.value
                # A duplicate of the in-flight request is never shed: it
                # joins the existing evaluation instead of queueing a new
                # one.
                duplicate = await scheduler.submit_doc(slow)
                await first
                return (shed_error, duplicate, first.result(),
                        dict(scheduler.counters))

        shed_error, duplicate, first, counters = _run(scenario())
        assert shed_error.kind == "overloaded"
        assert shed_error.status == 503
        assert shed_error.retry_after == 1.0
        assert shed_error.payload["error"]["retryable"] is True
        assert duplicate == first
        assert counters["shed"] == 1
        assert counters["deduped"] == 1

    def test_max_queue_must_be_positive(self):
        with pytest.raises(ValueError, match="max_queue"):
            PlanScheduler(max_queue=0)

    def test_chaos_spec_string_arms_an_injector(self):
        scheduler = PlanScheduler(chaos="poison:llama")
        assert isinstance(scheduler.chaos, FaultInjector)
        with pytest.raises(FaultSpecError):
            PlanScheduler(chaos="not-a-fault")


class TestSweepBackpressure:
    def _portfolio(self, candidates=(2, 3, 4)):
        base = Scenario.from_dict(_doc())
        return Portfolio(
            name="backpressure",
            base=base,
            axes=(PortfolioAxis(name="max_candidates",
                                path="solver.max_candidates",
                                values=tuple(candidates)),),
        )

    def test_sweep_defaults_its_concurrency_to_max_queue(self):
        portfolio = self._portfolio()

        async def scenario():
            async with PlanScheduler(batch_window=0.001,
                                     max_queue=1) as scheduler:
                outcomes = await sweep_portfolio(scheduler, portfolio)
                return outcomes, dict(scheduler.counters)

        outcomes, counters = _run(scenario())
        # The sweep throttled itself below the admission bound: no sheds.
        assert counters["shed"] == 0
        assert all("error" not in outcome.payload for outcome in outcomes)

    def test_shed_sweep_points_back_off_and_complete(self):
        portfolio = self._portfolio()
        patient = RetryPolicy(max_attempts=20, base_delay=0.01,
                              max_delay=0.05, jitter=0.0)

        async def scenario():
            async with PlanScheduler(batch_window=0.001,
                                     max_queue=1) as scheduler:
                outcomes = await sweep_portfolio(
                    scheduler, portfolio, retry=patient,
                    max_concurrency=3)  # deliberately floods max_queue=1
                return outcomes, dict(scheduler.counters)

        outcomes, counters = _run(scenario())
        assert counters["shed"] >= 1
        assert all("error" not in outcome.payload for outcome in outcomes)


class TestOrchestratorRetry:
    def _experiment(self, failures):
        """A stub experiment whose cell fails ``len(failures)`` times."""
        calls = {"count": 0}

        def cell(ctx, **params):
            calls["count"] += 1
            if failures:
                raise failures.pop(0)
            return [{"step_time": 1.5}]

        return SimpleNamespace(cell=cell), calls

    def test_transient_cell_failure_is_retried_once(self):
        experiment, calls = self._experiment(
            [InjectedWorkerCrash("worker died")])
        outcome = execute_cell(experiment, {"rows": 4}, ctx=None)
        assert outcome.error is None
        assert outcome.retries == 1
        assert calls["count"] == 2
        assert outcome.rows == [{"rows": 4, "step_time": 1.5}]

    def test_terminal_cell_failure_is_not_retried(self):
        experiment, calls = self._experiment([ValueError("bad cell")])
        outcome = execute_cell(experiment, {"rows": 4}, ctx=None)
        assert outcome.error is not None
        assert "bad cell" in outcome.error
        assert outcome.retries == 0
        assert calls["count"] == 1

    def test_persistent_transient_failure_exhausts_retries(self):
        experiment, calls = self._experiment(
            [InjectedWorkerCrash("down"), InjectedWorkerCrash("still down")])
        outcome = execute_cell(experiment, {"rows": 4}, ctx=None)
        assert outcome.error is not None
        assert outcome.retries == 1
        assert calls["count"] == 2


@pytest.mark.slow  # live servers and real process pools
class TestLiveChaos:
    def test_client_retries_dropped_connections(self, tmp_path, make_server):
        document = _doc()
        chaos = FaultInjector("flaky-http:2",
                              state_dir=str(tmp_path / "chaos"))
        harness = make_server(chaos=chaos)
        # No wait_ready(): the harness already gated on the bound port, and
        # a health poll must not consume the flaky-http budget.
        client = PlanClient(
            port=harness.port, timeout=30.0,
            retry=RetryPolicy(max_attempts=4, base_delay=0.01,
                              max_delay=0.05),
            rng=random.Random(42))
        payload = client.plan(document)
        assert payload == _direct(document)
        assert client.retries_performed == 2
        assert client.last_attempts == 3

    def test_deadline_over_http_is_a_504_and_counted(self, tmp_path,
                                                     make_server):
        chaos = FaultInjector("slow-eval:0.5:1",
                              state_dir=str(tmp_path / "chaos"))
        harness = make_server(store_path=tmp_path / "store.jsonl",
                              chaos=chaos, deadline=0.05)
        client = PlanClient(port=harness.port, timeout=30.0)
        with pytest.raises(PlanServerError) as excinfo:
            client.plan(_doc())
        harness.drain()  # the shielded evaluation settles before stop
        metrics = client.metrics()
        assert excinfo.value.status == 504
        assert excinfo.value.payload["error"]["type"] == "deadline_expired"
        # Every PR 6 counter is visible in one /metrics read.
        scheduler = metrics["scheduler"]
        assert scheduler["deadline_expired"] == 1
        for counter in ("retries", "shed", "pool_rebuilds",
                        "store_write_failures"):
            assert counter in scheduler
        assert metrics["store"]["corrupt_lines"] == 0
        assert metrics["chaos"]["enabled"] is True

    def test_pool_worker_crash_rebuilds_and_recovers(self, tmp_path):
        documents = [
            _doc(solver={"scheme": "temp", "engine": "tcme",
                         "max_candidates": candidates})
            for candidates in (2, 3, 4)]
        chaos = FaultInjector("worker-crash:1",
                              state_dir=str(tmp_path / "chaos"))

        async def scenario():
            async with PlanScheduler(
                    jobs=2, batch_window=0.25, chaos=chaos,
                    retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                                      max_delay=0.05)) as scheduler:
                results = await scheduler.submit_batch(documents)
                return results, dict(scheduler.counters)

        results, counters = _run(scenario())
        # The killed worker (a real os._exit, a real BrokenProcessPool)
        # cost nothing observable: every payload is bit-identical to a
        # direct evaluation.
        for document, payload in zip(documents, results):
            assert payload == _direct(document)
        assert counters["pool_rebuilds"] >= 1
        assert counters["retries"] >= 1
        assert counters["errors"] == 0

    def test_pool_poison_is_isolated_terminal_error(self, tmp_path):
        good_docs = [
            _doc(solver={"scheme": "temp", "engine": "tcme",
                         "max_candidates": candidates})
            for candidates in (2, 3)]
        poison = _doc(workload={"seq_length": 768})
        poison_key = Scenario.from_dict(poison).cache_key()
        chaos = FaultInjector("poison:768")

        async def scenario():
            # max_attempts=1: a crashing group bisects immediately instead
            # of paying a pool rebuild per doomed retry.
            async with PlanScheduler(
                    jobs=2, batch_window=0.25, chaos=chaos,
                    retry=RetryPolicy(max_attempts=1)) as scheduler:
                results = await scheduler.submit_batch(
                    good_docs + [poison])
                return results, dict(scheduler.counters)

        results, counters = _run(scenario())
        for document, payload in zip(good_docs, results):
            assert payload == _direct(document)
        error = results[2]["error"]
        assert error["type"] == "worker_crashed"
        assert error["retryable"] is False
        assert error["cache_key"] == poison_key
        assert counters["errors"] == 1
        assert counters["pool_rebuilds"] >= 1
