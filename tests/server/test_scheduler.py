"""Tests of the micro-batching plan scheduler.

The acceptance contract of the plan server lives here: a served payload is
bit-identical to ``PlanService().evaluate(scenario).to_dict()``, duplicate
concurrent requests resolve to one evaluation, repeats are served from the
result store without re-running the solver (asserted via hit counters),
malformed documents become structured errors, and shutdown drains cleanly.
"""

import asyncio

import pytest

from repro.api.scenario import SCHEMA_VERSION, Scenario
from repro.api.service import PlanService
from repro.server.scheduler import (
    PlanRequestError,
    PlanScheduler,
    error_payload,
)
from repro.server.store import ResultStore


def _doc(**overrides):
    """A fast (~20 ms) single-wafer scenario document."""
    workload = {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                "seq_length": 512}
    workload.update(overrides.pop("workload", {}))
    document = {
        "schema_version": SCHEMA_VERSION,
        "workload": workload,
        "solver": {"scheme": "temp", "engine": "tcme", "max_candidates": 4},
    }
    document.update(overrides)
    return document


def _run(coroutine):
    return asyncio.run(coroutine)


class TestServing:
    def test_served_payload_bit_identical_to_direct_evaluate(self):
        document = _doc()
        direct = PlanService().evaluate(
            Scenario.from_dict(document)).to_dict()

        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                return await scheduler.submit_doc(document)

        assert _run(scenario()) == direct

    def test_duplicate_concurrent_requests_evaluate_once(self):
        document = _doc()

        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                results = await asyncio.gather(
                    *(scheduler.submit_doc_traced(document)
                      for _ in range(4)))
                return results, dict(scheduler.counters)

        results, counters = _run(scenario())
        payloads = [payload for payload, _ in results]
        assert all(payload == payloads[0] for payload in payloads)
        assert counters["evaluations"] == 1
        assert counters["deduped"] == 3
        assert counters["requests"] == 4
        sources = sorted(source for _, source in results)
        assert sources == ["evaluated", "inflight", "inflight", "inflight"]

    def test_repeated_request_served_from_store_without_solving(self):
        document = _doc()

        async def scenario():
            store = ResultStore(None)
            async with PlanScheduler(store=store,
                                     batch_window=0.001) as scheduler:
                first, first_source = await scheduler.submit_doc_traced(
                    document)
                second, second_source = await scheduler.submit_doc_traced(
                    document)
                return (first, first_source, second, second_source,
                        dict(scheduler.counters), store.stats())

        first, first_source, second, second_source, counters, store_stats \
            = _run(scenario())
        assert first == second
        assert (first_source, second_source) == ("evaluated", "store")
        assert counters["evaluations"] == 1  # the solver ran exactly once
        assert store_stats["hits"] == 1
        assert store_stats["writes"] == 1

    def test_store_serves_across_scheduler_restarts(self, tmp_path):
        document = _doc()
        path = tmp_path / "store.jsonl"

        async def first_life():
            async with PlanScheduler(store=ResultStore(path),
                                     batch_window=0.001) as scheduler:
                return await scheduler.submit_doc_traced(document)

        async def second_life():
            async with PlanScheduler(store=ResultStore(path),
                                     batch_window=0.001) as scheduler:
                traced = await scheduler.submit_doc_traced(document)
                return traced, dict(scheduler.counters)

        first, first_source = _run(first_life())
        (second, second_source), counters = _run(second_life())
        assert first_source == "evaluated"
        assert second_source == "store"
        assert second == first
        assert counters["evaluations"] == 0

    def test_mixed_hardware_batch_splits_into_groups(self):
        default_hw = _doc()
        small_hw = _doc(hardware={"rows": 2, "cols": 4})

        async def scenario():
            # A generous window so both requests land in one micro-batch.
            async with PlanScheduler(batch_window=0.25) as scheduler:
                payloads = await asyncio.gather(
                    scheduler.submit_doc(default_hw),
                    scheduler.submit_doc(small_hw))
                return payloads, dict(scheduler.counters)

        payloads, counters = _run(scenario())
        assert counters["batches"] == 1
        assert counters["groups"] == 2
        assert all("error" not in payload for payload in payloads)
        assert payloads[0] != payloads[1]


class TestErrors:
    def test_malformed_document_raises_structured_error(self):
        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                await scheduler.submit_doc({"schema_version": 99})

        with pytest.raises(PlanRequestError) as excinfo:
            _run(scenario())
        payload = excinfo.value.payload
        assert set(payload) == {"error"}
        assert payload["error"]["type"] == "ScenarioError"
        assert payload["error"]["status"] == 400
        assert "Traceback" not in payload["error"]["message"]

    def test_evaluation_failure_is_error_payload_and_not_stored(self):
        # A fault study without a fixed_spec passes document validation but
        # fails in the evaluation path.
        document = _doc(hardware={"link_fault_rate": 0.1})

        async def scenario():
            store = ResultStore(None)
            async with PlanScheduler(store=store,
                                     batch_window=0.001) as scheduler:
                payload = await scheduler.submit_doc(document)
                return payload, dict(scheduler.counters), store.stats()

        payload, counters, store_stats = _run(scenario())
        assert payload["error"]["status"] == 422
        assert counters["errors"] == 1
        assert counters["evaluations"] == 0
        assert store_stats["writes"] == 0

    def test_wrong_typed_field_is_a_structured_error(self):
        # {"rows": "4"} raises TypeError inside HardwareSpec validation;
        # it must surface as a structured 400, not escape as a traceback.
        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                await scheduler.submit_doc(
                    _doc(hardware={"rows": "4"}))

        with pytest.raises(PlanRequestError) as excinfo:
            _run(scenario())
        assert excinfo.value.status == 400
        assert "invalid hardware section" in str(excinfo.value)

    def test_failing_item_does_not_poison_its_group(self):
        # model=["x"] passes document validation but raises TypeError in
        # the evaluation path; the co-batched valid request must still get
        # its own result.
        good = _doc()
        bad = _doc(workload={"model": ["x"], "num_layers": None,
                             "batch_size": None, "seq_length": None})

        async def scenario():
            async with PlanScheduler(batch_window=0.25) as scheduler:
                results = await scheduler.submit_batch([good, bad])
                return results, dict(scheduler.counters)

        results, counters = _run(scenario())
        assert "error" not in results[0]
        assert results[1]["error"]["status"] == 422
        assert counters["evaluations"] == 1
        assert counters["errors"] == 1

    def test_batch_inlines_item_errors(self):
        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                return await scheduler.submit_batch(
                    [_doc(), {"schema_version": 99}, "not even an object"])

        results = _run(scenario())
        assert len(results) == 3
        assert "error" not in results[0]
        assert results[1]["error"]["type"] == "ScenarioError"
        assert results[2]["error"]["type"] == "ScenarioError"

    def test_empty_batch_is_a_noop(self):
        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                results = await scheduler.submit_batch([])
                return results, dict(scheduler.counters)

        results, counters = _run(scenario())
        assert results == []
        assert counters["requests"] == 0


class TestLifecycle:
    def test_drain_settles_queued_requests_without_sleeping(self):
        # drain() is the synchronisation point tests (and shutdown) use
        # instead of sleeping: after it resolves, every submitted request
        # has its result and nothing is in flight.
        documents = [_doc(solver={"scheme": "temp", "engine": "tcme",
                                  "max_candidates": candidates})
                     for candidates in (2, 3)]

        async def scenario():
            async with PlanScheduler(batch_window=0.05) as scheduler:
                pending = [
                    asyncio.ensure_future(scheduler.submit_doc(document))
                    for document in documents]
                await asyncio.sleep(0)  # let the submissions hit the queue
                await scheduler.drain()
                assert all(task.done() for task in pending)
                assert not scheduler._inflight
                return [task.result() for task in pending]

        payloads = _run(scenario())
        assert all("error" not in payload for payload in payloads)

    def test_submit_before_start_raises(self):
        async def scenario():
            await PlanScheduler().submit_doc(_doc())

        with pytest.raises(RuntimeError, match="never awaited"):
            _run(scenario())

    def test_close_drains_pending_requests(self):
        documents = [_doc(solver={"scheme": "temp", "engine": "tcme",
                                  "max_candidates": candidates})
                     for candidates in (2, 3, 4)]

        async def scenario():
            scheduler = PlanScheduler(batch_window=0.05)
            await scheduler.start()
            pending = [asyncio.ensure_future(scheduler.submit_doc(document))
                       for document in documents]
            await asyncio.sleep(0)  # let the submissions hit the queue
            await scheduler.close()
            assert all(task.done() for task in pending)
            return [task.result() for task in pending]

        payloads = _run(scenario())
        assert len(payloads) == 3
        assert all("error" not in payload for payload in payloads)

    def test_submit_after_close_raises(self):
        async def scenario():
            scheduler = PlanScheduler(batch_window=0.001)
            await scheduler.start()
            await scheduler.close()
            await scheduler.submit_doc(_doc())

        with pytest.raises(RuntimeError, match="never awaited"):
            _run(scenario())

    def test_close_is_idempotent(self):
        async def scenario():
            scheduler = PlanScheduler(batch_window=0.001)
            await scheduler.start()
            await scheduler.close()
            await scheduler.close()

        _run(scenario())


@pytest.mark.slow  # spawns a real process pool
class TestProcessPool:
    def test_pool_mode_serves_bit_identical_payloads(self):
        document = _doc()
        direct = PlanService().evaluate(
            Scenario.from_dict(document)).to_dict()

        async def scenario():
            async with PlanScheduler(jobs=2,
                                     batch_window=0.001) as scheduler:
                payload = await scheduler.submit_doc(document)
                return payload, scheduler.stats()

        payload, stats = _run(scenario())
        assert payload == direct
        # Worker telemetry made it back across the process boundary.
        assert stats["plan_cache"]["misses"] > 0

    def test_shared_service_with_pool_is_rejected(self):
        with pytest.raises(ValueError, match="jobs=1"):
            PlanScheduler(service=PlanService(), jobs=2)


class TestStats:
    def test_stats_document_shape(self):
        async def scenario():
            async with PlanScheduler(store=ResultStore(None),
                                     batch_window=0.001) as scheduler:
                await scheduler.submit_doc(_doc())
                return scheduler.stats()

        stats = _run(scenario())
        assert set(stats) == {"scheduler", "store", "plan_cache", "chaos",
                              "latency", "timings"}
        assert stats["scheduler"]["requests"] == 1
        assert stats["scheduler"]["jobs"] == 1
        for counter in ("retries", "shed", "deadline_expired",
                        "pool_rebuilds", "store_write_failures"):
            assert stats["scheduler"][counter] == 0
        assert stats["store"]["enabled"] is True
        assert stats["chaos"] == {"enabled": False}
        assert stats["plan_cache"]["misses"] > 0
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["mean_seconds"] > 0
        # Histogram-backed percentiles ride along with the legacy keys.
        for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
            assert stats["latency"][key] >= 0
        # The merged-registry digest carries the stage histograms.
        assert "scheduler.request_latency_seconds" in stats["timings"]
        assert stats["timings"]["scheduler.request_latency_seconds"][
            "count"] == 1

    def test_store_disabled_marker(self):
        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                return scheduler.stats()

        assert _run(scenario())["store"] == {"enabled": False}


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"jobs": 0},
        {"max_batch": 0},
        {"batch_window": -0.1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PlanScheduler(**kwargs)

    def test_error_payload_shape(self):
        payload = error_payload("boom", kind="test", status=418)
        assert payload == {"error": {"type": "test", "message": "boom",
                                     "status": 418}}
