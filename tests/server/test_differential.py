"""The serving-layer parity contract: one scenario set, four paths, one truth.

Five evaluation paths now exist (direct ``PlanService.evaluate``, the
scheduler, the HTTP server, the portfolio engine, and the orchestrator's
cell runners — the last pinned separately in ``tests/runner/``). This
module pins the first four to bit-identical payloads over a shared reduced
scenario set covering every dispatch kind the service knows: single-wafer
search, pinned-spec simulation, multi-wafer pipeline, fault injection, and
the GPU comparator. Any drift between serving layers fails here first.
"""

import asyncio

import pytest

from repro.api.portfolio import portfolio_from_scenarios
from repro.api.scenario import Scenario
from repro.api.service import PlanService
from repro.server.portfolio import run_portfolio_local
from repro.server.scheduler import PlanScheduler

pytestmark = pytest.mark.slow  # evaluates the shared set four times

#: The shared reduced scenario set: one document per dispatch kind, all
#: sized to evaluate in tens of milliseconds.
SCENARIO_SET = {
    "single_wafer": {
        "schema_version": 1,
        "workload": {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                     "seq_length": 512},
        "solver": {"scheme": "temp", "engine": "tcme", "max_candidates": 4},
    },
    "fixed_spec": {
        "schema_version": 1,
        "workload": {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                     "seq_length": 512},
        "solver": {"fixed_spec": {"dp": 4, "tp": 8}},
    },
    "multi_wafer": {
        "schema_version": 1,
        "workload": {"model": "gpt3-6.7b", "num_layers": 4, "batch_size": 8,
                     "seq_length": 512},
        "hardware": {"num_wafers": 2, "num_microbatches": 4},
        "solver": {"scheme": "temp", "engine": "tcme", "max_candidates": 4},
    },
    "fault": {
        "schema_version": 1,
        "workload": {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                     "seq_length": 512},
        "hardware": {"link_fault_rate": 0.05},
        "solver": {"fixed_spec": {"dp": 4, "tp": 8}, "seed": 7},
    },
    "gpu_cluster": {
        "schema_version": 1,
        "workload": {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                     "seq_length": 512},
        "hardware": {"platform": "gpu_cluster"},
        "solver": {"scheme": "megatron1", "engine": "smap",
                   "max_tatp": 1},
    },
}


@pytest.fixture(scope="module")
def scenarios():
    return {kind: Scenario.from_dict(document)
            for kind, document in SCENARIO_SET.items()}


@pytest.fixture(scope="module")
def direct_payloads(scenarios):
    """Ground truth: one fresh PlanService, every scenario evaluated."""
    service = PlanService()
    return {kind: service.evaluate(scenario).to_dict()
            for kind, scenario in scenarios.items()}


def test_direct_payloads_cover_every_result_kind(direct_payloads):
    # The scenario set must keep exercising every dispatch path; a set
    # that silently collapses to one kind would gut the contract below.
    kinds = {payload["kind"] for payload in direct_payloads.values()}
    assert kinds == {"single_wafer", "fixed_spec", "multi_wafer", "fault",
                     "gpu_cluster"}
    assert all("error" not in payload
               for payload in direct_payloads.values())


def test_scheduler_path_matches_direct(scenarios, direct_payloads):
    async def run():
        async with PlanScheduler(batch_window=0.001) as scheduler:
            return {kind: await scheduler.submit(scenario)
                    for kind, scenario in scenarios.items()}

    assert asyncio.run(run()) == direct_payloads


def test_http_path_matches_direct(client, scenarios, direct_payloads):
    served = {kind: client.plan(scenario)
              for kind, scenario in scenarios.items()}
    assert served == direct_payloads


def test_http_batch_path_matches_direct(client, scenarios, direct_payloads):
    kinds = list(scenarios)
    results = client.plan_batch([scenarios[kind] for kind in kinds])
    assert dict(zip(kinds, results)) == direct_payloads


def test_portfolio_path_matches_direct(scenarios, direct_payloads):
    kinds = list(scenarios)
    portfolio = portfolio_from_scenarios(
        "differential", [scenarios[kind] for kind in kinds])
    outcomes = run_portfolio_local(portfolio)
    assert {kind: outcome.payload
            for kind, outcome in zip(kinds, outcomes)} == direct_payloads


def test_portfolio_server_path_matches_direct(client, scenarios,
                                              direct_payloads):
    kinds = list(scenarios)
    portfolio = portfolio_from_scenarios(
        "differential-http", [scenarios[kind] for kind in kinds])
    status = client.sweep(portfolio, poll_interval=0.05, timeout=120)
    assert status["status"] == "done"
    assert dict(zip(kinds, status["results"])) == direct_payloads


def test_pool_scheduler_path_matches_direct(scenarios, direct_payloads):
    # jobs=2 crosses a process boundary: payloads must still be identical.
    async def run():
        async with PlanScheduler(jobs=2, batch_window=0.001) as scheduler:
            return {kind: await scheduler.submit(scenario)
                    for kind, scenario in scenarios.items()}

    assert asyncio.run(run()) == direct_payloads


@pytest.mark.parametrize("store_name", ["plans.jsonl", "plans.sqlite"])
def test_store_backends_serve_bit_identical_payloads(
        store_name, tmp_path, scenarios, direct_payloads):
    # Same scenario stream through a store-backed scheduler on each
    # persistence backend: the first pass populates, the second is served
    # from the store — and both match the direct evaluation bit for bit.
    from repro.server.store import ResultStore

    path = tmp_path / store_name

    async def run(store):
        async with PlanScheduler(batch_window=0.001,
                                 store=store) as scheduler:
            first = {kind: await scheduler.submit(scenario)
                     for kind, scenario in scenarios.items()}
            second = {}
            sources = {}
            for kind, scenario in scenarios.items():
                payload, source = await scheduler.submit_traced(scenario)
                second[kind] = payload
                sources[kind] = source
            return first, second, sources

    with ResultStore(path) as store:
        first, second, sources = asyncio.run(run(store))
    assert first == direct_payloads
    assert second == direct_payloads
    assert set(sources.values()) == {"store"}
    # Across a restart too: a fresh process over the same file serves the
    # identical payloads without re-evaluating.
    with ResultStore(path) as reopened:
        for kind, scenario in scenarios.items():
            assert reopened.get(scenario.cache_key()) \
                == direct_payloads[kind]


def test_jsonl_and_sqlite_stores_hold_identical_mappings(
        tmp_path, scenarios, direct_payloads):
    # The two backends persisting the same stream must agree key for key,
    # in the canonical serialized form (the migration/verify invariant).
    from repro.server.store import ResultStore

    stores = {}
    for name in ("plans.jsonl", "plans.sqlite"):
        async def run(store):
            async with PlanScheduler(batch_window=0.001,
                                     store=store) as scheduler:
                for scenario in scenarios.values():
                    await scheduler.submit(scenario)

        with ResultStore(tmp_path / name) as store:
            asyncio.run(run(store))
        stores[name] = tmp_path / name

    with ResultStore(stores["plans.jsonl"]) as jsonl_store:
        with ResultStore(stores["plans.sqlite"]) as sqlite_store:
            jsonl_keys = sorted(jsonl_store.keys())
            assert jsonl_keys == sorted(sqlite_store.keys())
            assert len(jsonl_keys) == len(scenarios)
            for key in jsonl_keys:
                assert jsonl_store.get_serialized(key) \
                    == sqlite_store.get_serialized(key)
