"""Tests of the disk-backed result store."""

import json
import logging
import os
from contextlib import contextmanager
from unittest import mock

from repro.server.store import ResultStore

KEY = "a" * 64
OTHER_KEY = "b" * 64
PAYLOAD = {"kind": "single_wafer", "model": "gpt3-6.7b", "step_time": 0.5}


@contextmanager
def capture_store_logs():
    """Records on the store logger, independent of caplog propagation.

    ``setup_logging`` (run by any earlier CLI test) sets the "repro" logger
    non-propagating, so caplog cannot be relied on; attaching a handler to
    the store logger directly is order-independent.
    """
    records = []

    class _Capture(logging.Handler):
        def emit(self, record):
            records.append(record)

    handler = _Capture(level=logging.DEBUG)
    store_logger = logging.getLogger("repro.server.store")
    previous_level = store_logger.level
    store_logger.addHandler(handler)
    store_logger.setLevel(logging.DEBUG)
    try:
        yield records
    finally:
        store_logger.removeHandler(handler)
        store_logger.setLevel(previous_level)


class TestMemoryStore:
    def test_get_put_roundtrip_and_counters(self):
        store = ResultStore(None)
        assert store.get(KEY) is None
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)
        assert len(store) == 1
        assert KEY in store
        assert OTHER_KEY not in store

    def test_returned_payload_is_isolated(self):
        store = ResultStore(None)
        store.put(KEY, PAYLOAD)
        served = store.get(KEY)
        served["step_time"] = -1.0
        assert store.get(KEY)["step_time"] == PAYLOAD["step_time"]

    def test_put_copies_its_argument(self):
        store = ResultStore(None)
        payload = dict(PAYLOAD)
        store.put(KEY, payload)
        payload["step_time"] = -1.0
        assert store.get(KEY)["step_time"] == PAYLOAD["step_time"]

    def test_stats_document(self):
        store = ResultStore(None)
        store.put(KEY, PAYLOAD)
        store.get(KEY)
        store.get(OTHER_KEY)
        assert store.stats() == {"hits": 1, "misses": 1, "writes": 1,
                                 "corrupt_lines": 0, "entries": 1,
                                 "persistent": False, "backend": "memory",
                                 "dead_records": 0}


class TestDiskStore:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, PAYLOAD)
        with ResultStore(path) as reopened:
            assert reopened.get(KEY) == PAYLOAD
            assert reopened.stats()["persistent"] is True
            # Counters are per-process, not persisted.
            assert reopened.writes == 0

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, {"step_time": 1.0})
            store.put(KEY, {"step_time": 2.0})
        with ResultStore(path) as reopened:
            assert reopened.get(KEY) == {"step_time": 2.0}
            assert len(reopened) == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, PAYLOAD)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "' + OTHER_KEY + '", "payl')  # torn write
        with capture_store_logs() as records:
            reopened = ResultStore(path)
        assert any(record.levelno == logging.WARNING
                   and "1 corrupt line" in record.getMessage()
                   for record in records)
        with reopened:
            assert reopened.get(KEY) == PAYLOAD
            assert reopened.get(OTHER_KEY) is None
            assert reopened.corrupt_lines == 1

    def test_non_record_lines_are_counted_not_served(self, tmp_path):
        # Blank lines are benign; foreign documents and wrong-typed records
        # each count as one corrupt line in stats() (surfaced in /metrics).
        path = tmp_path / "store.jsonl"
        path.write_text('\n[1, 2]\n{"key": 7, "payload": {}}\n'
                        + json.dumps({"key": KEY, "payload": PAYLOAD}) + "\n")
        with capture_store_logs() as records:
            store = ResultStore(path)
        assert any("2 corrupt line" in record.getMessage()
                   for record in records)
        with store:
            assert store.get(KEY) == PAYLOAD
            assert len(store) == 1
            assert store.stats()["corrupt_lines"] == 2

    def test_clean_file_loads_without_warning(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, PAYLOAD)
        with capture_store_logs() as records:
            with ResultStore(path) as reopened:
                assert reopened.corrupt_lines == 0
        assert not [record for record in records
                    if record.levelno >= logging.WARNING]

    def test_durable_put_fsyncs_every_append(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl", durable=True)
        with store, mock.patch.object(os, "fsync",
                                      wraps=os.fsync) as fsync:
            store.put(KEY, PAYLOAD)
            store.put(OTHER_KEY, PAYLOAD)
            assert fsync.call_count == 2

    def test_non_durable_put_does_not_fsync(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        with store, mock.patch.object(os, "fsync",
                                      wraps=os.fsync) as fsync:
            store.put(KEY, PAYLOAD)
            assert fsync.call_count == 0

    def test_missing_file_starts_empty(self, tmp_path):
        with ResultStore(tmp_path / "fresh.jsonl") as store:
            assert len(store) == 0

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "store.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, PAYLOAD)
        assert path.exists()

    def test_close_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.close()
        store.close()
