"""Tests of the HTTP front end, the client, and the ``repro submit`` CLI.

The module-scoped ``server`` fixture (``tests/server/conftest.py``) runs one
real server on an ephemeral port; tests talk to it with the blocking
:class:`PlanClient` exactly like ``repro submit`` does.
"""

import http.client
import json

import pytest

from repro.api.scenario import SCHEMA_VERSION, Scenario
from repro.api.service import PlanService, validate_result_payload
from repro.runner.cli import main
from repro.server.client import PlanServerError

pytestmark = pytest.mark.slow  # every test drives a live server


def _doc(**overrides):
    """A fast (~20 ms) single-wafer scenario document."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "workload": {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                     "seq_length": 512},
        "solver": {"scheme": "temp", "engine": "tcme", "max_candidates": 4},
    }
    document.update(overrides)
    return document


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}
        assert client.wait_ready(timeout=1.0)

    def test_plan_roundtrip_is_bit_identical_to_direct_evaluate(self,
                                                                client):
        document = _doc()
        direct = PlanService().evaluate(
            Scenario.from_dict(document)).to_dict()
        served = client.plan(document)
        assert served == direct
        assert validate_result_payload(served) == []
        assert client.last_source == "evaluated"

    def test_repeat_is_served_from_store_and_counted(self, client):
        document = _doc(solver={"scheme": "temp", "engine": "tcme",
                                "max_candidates": 3})
        first = client.plan(document)
        assert client.last_source == "evaluated"
        second = client.plan(document)
        assert client.last_source == "store"
        assert first == second
        metrics = client.metrics()
        assert metrics["store"]["hits"] >= 1
        assert metrics["scheduler"]["requests"] >= 2
        assert metrics["plan_cache"]["misses"] > 0
        assert metrics["latency"]["count"] >= 2

    def test_batch_endpoint_preserves_order_and_inlines_errors(self,
                                                               client):
        documents = [_doc(), {"schema_version": 99}, _doc()]
        results = client.plan_batch(documents)
        assert len(results) == 3
        assert results[0]["model"] == "gpt3-6.7b"
        assert results[1]["error"]["type"] == "ScenarioError"
        assert results[2] == results[0]

    def test_empty_batch(self, client):
        assert client.plan_batch([]) == []

    def test_scenario_objects_are_accepted(self, client):
        scenario = Scenario.from_dict(_doc())
        assert client.plan(scenario)["model"] == "gpt3-6.7b"
        assert client.plan_batch([scenario])[0]["model"] == "gpt3-6.7b"

    def test_metrics_latency_percentiles_and_timings(self, client):
        client.plan(_doc())
        metrics = client.metrics()
        for key in ("count", "total_seconds", "max_seconds", "mean_seconds",
                    "p50_seconds", "p95_seconds", "p99_seconds"):
            assert key in metrics["latency"]
        timings = metrics["timings"]
        for name in ("scheduler.request_latency_seconds",
                     "scheduler.queue_wait_seconds",
                     "scheduler.dispatch_seconds",
                     "service.evaluate_seconds"):
            assert timings[name]["count"] >= 1
            assert timings[name]["p95"] >= timings[name]["p50"] >= 0

    def test_metrics_prometheus_format_and_content_type(self, client,
                                                        server):
        client.plan(_doc())
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=30)
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            text = response.read().decode("utf-8")
        finally:
            connection.close()
        assert response.status == 200
        assert response.getheader("Content-Type") == \
            "text/plain; version=0.0.4; charset=utf-8"
        lines = text.splitlines()
        # Flattened JSON gauges keep their bit-compatible values.
        json_metrics = client.metrics()
        requests_line = next(line for line in lines
                             if line.startswith("repro_scheduler_requests "))
        assert (int(requests_line.split()[1])
                <= json_metrics["scheduler"]["requests"])
        # Native histogram exposition with queue/evaluate latency series.
        for name in ("repro_scheduler_request_latency_seconds",
                     "repro_scheduler_queue_wait_seconds",
                     "repro_service_evaluate_seconds"):
            assert f"# TYPE {name} histogram" in lines
            assert any(line.startswith(f'{name}_bucket{{le="')
                       for line in lines)
            assert any(line.startswith(f"{name}_count ") for line in lines)
        # Every sample line is well-formed "name[labels] value".
        for line in lines:
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            float(line.rsplit(" ", 1)[1])


class TestErrorHandling:
    def test_malformed_scenario_is_a_structured_400(self, client):
        with pytest.raises(PlanServerError) as excinfo:
            client.plan({"schema_version": 99, "bogus": True})
        assert excinfo.value.status == 400
        error = excinfo.value.payload["error"]
        assert error["type"] == "ScenarioError"
        assert "Traceback" not in error["message"]

    def test_wrong_typed_field_answers_400_not_dropped_connection(self,
                                                                  client):
        with pytest.raises(PlanServerError) as excinfo:
            client.plan(_doc(hardware={"rows": "4"}))
        assert excinfo.value.status == 400
        assert "invalid hardware section" in \
            excinfo.value.payload["error"]["message"]

    def test_array_posted_to_single_plan_is_rejected(self, client):
        status, _, payload = client._request("POST", "/v1/plan", [_doc()])
        assert status == 400
        assert "batch" in payload["error"]["message"]

    def test_invalid_json_body_is_a_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                                timeout=30)
        try:
            connection.request("POST", "/v1/plan", body=b"{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["type"] == "protocol"

    def test_unknown_route_is_a_404(self, client):
        status, _, payload = client._request("GET", "/v2/unknown")
        assert status == 404
        assert payload["error"]["type"] == "not_found"

    def test_wrong_method_is_a_405(self, client):
        status, headers, payload = client._request("GET", "/v1/plan")
        assert status == 405
        assert headers.get("allow") == "POST"
        assert payload["error"]["type"] == "method_not_allowed"

    def test_non_batch_body_on_batch_route_is_a_400(self, client):
        status, _, payload = client._request("POST", "/v1/plan/batch",
                                             {"nope": 1})
        assert status == 400
        assert "array" in payload["error"]["message"]


class TestSubmitCli:
    def test_submit_single_and_repeat_sources(self, server, capsys):
        document = json.dumps(_doc(solver={"scheme": "temp",
                                           "engine": "tcme",
                                           "max_candidates": 5}))
        assert main(["submit", document, "--port", str(server.port),
                     "--validate", "--expect-source", "evaluated"]) == 0
        captured = capsys.readouterr()
        assert "served from: evaluated" in captured.err
        first = json.loads(captured.out)
        assert validate_result_payload(first) == []

        assert main(["submit", document, "--port", str(server.port),
                     "--validate", "--expect-source", "store"]) == 0
        captured = capsys.readouterr()
        assert "served from: store" in captured.err
        assert json.loads(captured.out) == first

    def test_submit_wrong_expected_source_fails(self, server, capsys):
        document = json.dumps(_doc())
        main(["submit", document, "--port", str(server.port)])
        capsys.readouterr()
        assert main(["submit", document, "--port", str(server.port),
                     "--expect-source", "evaluated"]) == 1
        assert "expected the result" in capsys.readouterr().err

    def test_submit_batch_array(self, server, capsys):
        documents = json.dumps([_doc(), _doc()])
        assert main(["submit", documents, "--port", str(server.port),
                     "--validate"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert isinstance(payloads, list) and len(payloads) == 2
        assert payloads[0] == payloads[1]

    def test_submit_malformed_scenario_exits_2(self, server, capsys):
        assert main(["submit", '{"schema_version": 99}',
                     "--port", str(server.port)]) == 2
        assert "plan server returned 400" in capsys.readouterr().err

    def test_submit_invalid_json_exits_2(self, server, capsys):
        assert main(["submit", "{broken", "--port",
                     str(server.port)]) == 2
        assert "invalid scenario JSON" in capsys.readouterr().err

    def test_submit_unreachable_server_exits_2(self, capsys):
        assert main(["submit", json.dumps(_doc()), "--port", "1",
                     "--timeout", "2"]) == 2
        assert "cannot reach plan server" in capsys.readouterr().err

    def test_expect_source_with_batch_is_rejected(self, server, capsys):
        assert main(["submit", json.dumps([_doc()]), "--port",
                     str(server.port), "--expect-source", "store"]) == 2
        assert "only applies to a single scenario" in \
            capsys.readouterr().err
