"""Tests of the pluggable store backends, compaction, migration, and the
loadtest harness.

The contracts pinned here are the operational ones of the indexed-backend
PR: extension/flag-driven backend selection, SQLite upserts keeping the
file bounded, JSON-lines dead-record accounting + (auto-)compaction fixing
the unbounded-growth bug, migration verified key by key, concurrent and
crashing writers leaving a JSON-lines store loadable, and the ``repro
store`` / ``repro loadtest`` verbs end to end.
"""

import json
import multiprocessing
import os

import pytest

from repro.runner.cli import main as cli_main
from repro.server.store import (
    DEFAULT_COMPACT_THRESHOLD,
    ResultStore,
    StoreError,
    migrate_store,
    resolve_backend,
)

KEY = "a" * 64
OTHER_KEY = "b" * 64
PAYLOAD = {"kind": "single_wafer", "model": "gpt3-6.7b", "step_time": 0.5}


def _fill(store, count, prefix=0):
    for index in range(count):
        store.put(f"{prefix:032d}{index:032d}", {"step_time": index * 0.001})


class TestBackendSelection:
    @pytest.mark.parametrize("filename,expected", [
        ("plans.jsonl", "jsonl"),
        ("plans.txt", "jsonl"),
        ("plans", "jsonl"),
        ("plans.sqlite", "sqlite"),
        ("plans.sqlite3", "sqlite"),
        ("plans.db", "sqlite"),
        ("plans.SQLITE", "sqlite"),
    ])
    def test_extension_selects_backend(self, filename, expected):
        assert resolve_backend(filename) == expected
        assert resolve_backend(filename, "auto") == expected

    def test_explicit_backend_overrides_extension(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path, backend="sqlite") as store:
            store.put(KEY, PAYLOAD)
            assert store.backend == "sqlite"
        # And it really is a SQLite file, extension notwithstanding.
        with open(path, "rb") as handle:
            assert handle.read(15) == b"SQLite format 3"

    def test_unknown_backend_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ResultStore(tmp_path / "plans.jsonl", backend="lmdb")

    def test_memory_store_reports_memory_backend(self):
        with ResultStore(None) as store:
            assert store.backend == "memory"
            assert store.stats()["persistent"] is False


class TestSqliteBackend:
    def test_roundtrip_and_persistence(self, tmp_path):
        path = tmp_path / "plans.sqlite"
        with ResultStore(path) as store:
            assert store.get(KEY) is None
            store.put(KEY, PAYLOAD)
            assert store.get(KEY) == PAYLOAD
            assert (store.hits, store.misses, store.writes) == (1, 1, 1)
            assert len(store) == 1 and KEY in store
        with ResultStore(path) as reopened:
            assert reopened.get(KEY) == PAYLOAD
            assert reopened.stats()["persistent"] is True
            assert reopened.stats()["backend"] == "sqlite"

    def test_returned_payload_is_isolated(self, tmp_path):
        with ResultStore(tmp_path / "plans.sqlite") as store:
            store.put(KEY, PAYLOAD)
            store.get(KEY)["step_time"] = -1.0
            assert store.get(KEY)["step_time"] == PAYLOAD["step_time"]

    def test_reput_upserts_instead_of_growing(self, tmp_path):
        path = tmp_path / "plans.sqlite"
        with ResultStore(path) as store:
            for round_number in range(50):
                store.put(KEY, {"step_time": float(round_number)})
            assert len(store) == 1
            assert store.dead_records == 0
            assert store.get(KEY) == {"step_time": 49.0}

    def test_corrupt_database_raises_oserror(self, tmp_path):
        path = tmp_path / "plans.sqlite"
        path.write_text("this is not a sqlite database, not even close\n")
        with pytest.raises(OSError):
            store = ResultStore(path)
            try:  # some sqlite builds defer the failure to first use
                store.put(KEY, PAYLOAD)
            finally:
                store.close()

    def test_keys_iterates_all(self, tmp_path):
        with ResultStore(tmp_path / "plans.sqlite") as store:
            store.put(KEY, PAYLOAD)
            store.put(OTHER_KEY, PAYLOAD)
            assert sorted(store.keys()) == sorted([KEY, OTHER_KEY])


class TestCompaction:
    def test_dead_records_are_counted(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, {"step_time": 1.0})
            store.put(KEY, {"step_time": 2.0})
            store.put(OTHER_KEY, PAYLOAD)
            assert store.dead_records == 1
            assert store.stats()["dead_records"] == 1
        # Reload sees the same superseded record on disk.
        with ResultStore(path) as reopened:
            assert reopened.dead_records == 1

    def test_compact_drops_dead_records_and_preserves_content(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path) as store:
            for round_number in range(10):
                store.put(KEY, {"step_time": float(round_number)})
            store.put(OTHER_KEY, PAYLOAD)
            size_before = os.path.getsize(path)
            dropped = store.compact()
            assert dropped == 9
            assert store.dead_records == 0
            assert os.path.getsize(path) < size_before
            # Live mapping untouched, and the store stays writable.
            assert store.get(KEY) == {"step_time": 9.0}
            store.put("c" * 64, PAYLOAD)
        with ResultStore(path) as reopened:
            assert len(reopened) == 3
            assert reopened.get(KEY) == {"step_time": 9.0}
            assert reopened.get(OTHER_KEY) == PAYLOAD

    def test_compact_also_drops_corrupt_lines(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, PAYLOAD)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        with ResultStore(path) as store:
            assert store.corrupt_lines == 1
            store.compact()
        with ResultStore(path) as reopened:
            assert reopened.corrupt_lines == 0
            assert reopened.get(KEY) == PAYLOAD

    def test_auto_compaction_on_close(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        store = ResultStore(path, compact_threshold=5)
        for round_number in range(7):
            store.put(KEY, {"step_time": float(round_number)})
        assert store.dead_records == 6
        store.close()
        # The close rewrote the file down to the one live record.
        assert len(path.read_text().splitlines()) == 1
        with ResultStore(path) as reopened:
            assert reopened.get(KEY) == {"step_time": 6.0}

    def test_auto_compaction_respects_threshold(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path, compact_threshold=100) as store:
            for round_number in range(7):
                store.put(KEY, {"step_time": float(round_number)})
        assert len(path.read_text().splitlines()) == 7

    def test_auto_compaction_can_be_disabled(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path, compact_threshold=None) as store:
            for round_number in range(DEFAULT_COMPACT_THRESHOLD + 10):
                store.put(KEY, {"step_time": float(round_number)})
        assert len(path.read_text().splitlines()) \
            == DEFAULT_COMPACT_THRESHOLD + 10


class TestMigration:
    def test_round_trip_preserves_every_payload(self, tmp_path):
        jsonl_a = tmp_path / "plans.jsonl"
        sqlite = tmp_path / "plans.sqlite"
        jsonl_b = tmp_path / "back.jsonl"
        with ResultStore(jsonl_a) as store:
            _fill(store, 25)
            store.put(KEY, PAYLOAD)

        summary = migrate_store(jsonl_a, sqlite)
        assert summary["entries"] == summary["verified"] == 26
        assert summary["source_backend"] == "jsonl"
        assert summary["destination_backend"] == "sqlite"
        migrate_store(sqlite, jsonl_b)

        # Key-by-key: the round-tripped store serves exactly the original
        # mapping, in the canonical serialized form.
        with ResultStore(jsonl_a) as original:
            with ResultStore(jsonl_b) as round_tripped:
                assert sorted(original.keys()) \
                    == sorted(round_tripped.keys())
                for key in original.keys():
                    assert original.get_serialized(key) \
                        == round_tripped.get_serialized(key)

    def test_migrate_into_existing_store_upserts(self, tmp_path):
        source = tmp_path / "plans.jsonl"
        destination = tmp_path / "plans.sqlite"
        with ResultStore(source) as store:
            store.put(KEY, {"step_time": 2.0})
        with ResultStore(destination) as store:
            store.put(KEY, {"step_time": 1.0})  # stale; must be replaced
            store.put(OTHER_KEY, PAYLOAD)  # unrelated; must survive
        migrate_store(source, destination)
        with ResultStore(destination) as migrated:
            assert migrated.get(KEY) == {"step_time": 2.0}
            assert migrated.get(OTHER_KEY) == PAYLOAD

    def test_same_file_is_rejected(self, tmp_path):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path) as store:
            store.put(KEY, PAYLOAD)
        with pytest.raises(ValueError, match="same file"):
            migrate_store(path, path)

    def test_verification_failure_raises(self, tmp_path, monkeypatch):
        source = tmp_path / "plans.jsonl"
        with ResultStore(source) as store:
            store.put(KEY, PAYLOAD)
        # Sabotage the destination's read-back so verification must trip.
        from repro.server import store as store_module

        monkeypatch.setattr(store_module._SqliteBackend, "get",
                            lambda self, key: '{"corrupted": true}')
        with pytest.raises(StoreError, match="verification failed"):
            migrate_store(source, tmp_path / "plans.sqlite")


class TestDurability:
    def test_concurrent_writers_all_records_survive(self, tmp_path):
        # Two real processes appending to one JSON-lines store: O_APPEND
        # line writes interleave without corrupting each other.
        path = str(tmp_path / "plans.jsonl")
        workers = [
            multiprocessing.Process(target=_append_worker,
                                    args=(path, prefix, 50))
            for prefix in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        with ResultStore(path) as store:
            assert store.corrupt_lines == 0
            assert len(store) == 100
            assert store.get(f"{1:032d}{7:032d}") == {"step_time": 0.007}
            assert store.get(f"{2:032d}{7:032d}") == {"step_time": 0.007}

    def test_kill_mid_write_leaves_store_loadable(self, tmp_path):
        # A writer dying mid-line (torn record) costs exactly the torn
        # record: every complete record before it is served on reload.
        path = str(tmp_path / "plans.jsonl")
        process = multiprocessing.Process(target=_torn_write_worker,
                                          args=(path,))
        process.start()
        process.join(timeout=60)
        with ResultStore(path) as store:
            assert store.corrupt_lines == 1
            assert len(store) == 3
            assert store.get(f"{0:032d}{1:032d}") == {"step_time": 0.001}

    def test_sqlite_durable_sets_full_synchronous(self, tmp_path):
        with ResultStore(tmp_path / "plans.sqlite", durable=True) as store:
            assert store._backend._conn.execute(
                "PRAGMA synchronous").fetchone()[0] == 2  # FULL
        with ResultStore(tmp_path / "fast.sqlite") as store:
            assert store._backend._conn.execute(
                "PRAGMA synchronous").fetchone()[0] == 1  # NORMAL


def _append_worker(path, prefix, count):
    with ResultStore(path, compact_threshold=None) as store:
        _fill(store, count, prefix=prefix)


def _torn_write_worker(path):
    store = ResultStore(path)
    _fill(store, 3)
    # Start a fourth record but die before the line completes.
    store._backend._handle.write('{"key": "' + KEY + '", "payl')
    store._backend._handle.flush()
    os._exit(1)


class TestStoreCli:
    def _build(self, tmp_path, dead=3):
        path = tmp_path / "plans.jsonl"
        with ResultStore(path) as store:
            for round_number in range(dead + 1):
                store.put(KEY, {"step_time": float(round_number)})
            store.put(OTHER_KEY, PAYLOAD)
        return path

    def test_stats_verb(self, tmp_path, capsys):
        path = self._build(tmp_path)
        assert cli_main(["store", "stats", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["backend"] == "jsonl"
        assert document["entries"] == 2
        assert document["dead_records"] == 3
        assert document["file_bytes"] > 0

    def test_compact_verb(self, tmp_path, capsys):
        path = self._build(tmp_path)
        assert cli_main(["store", "compact", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["records_dropped"] == 3
        assert document["bytes_after"] < document["bytes_before"]

    def test_migrate_verb(self, tmp_path, capsys):
        source = self._build(tmp_path)
        destination = tmp_path / "plans.sqlite"
        assert cli_main(["store", "migrate", str(source),
                         str(destination)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["entries"] == document["verified"] == 2
        with ResultStore(destination) as migrated:
            assert migrated.get(KEY) == {"step_time": 3.0}

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(["store", "stats",
                         str(tmp_path / "missing.jsonl")]) == 2
        assert "no such store file" in capsys.readouterr().err


class TestLoadtest:
    def test_loadtest_against_live_server(self, make_server, tmp_path):
        from repro.server.loadtest import run_loadtest

        harness = make_server(
            store_path=str(tmp_path / "plans.sqlite"))
        report = run_loadtest(port=harness.port, requests=20,
                              dedup_ratio=0.8, concurrency=4, timeout=30.0)
        assert report["completed"] == 20
        assert report["error_count"] == 0
        assert report["unique_scenarios"] == 4
        # 4 unique scenarios evaluated; 16 served from store/in-flight.
        assert report["sources"].get("evaluated", 0) == 4
        assert report["cache_hit_rate"] == pytest.approx(0.8)
        for quantile in ("p50", "p95", "p99"):
            assert report["latency"][quantile] > 0.0
        assert report["server_metrics"]["store"]["backend"] == "sqlite"
        assert report["server_metrics"]["shed"] == 0

    def test_loadtest_cli_slo_gate(self, make_server, tmp_path, capsys):
        harness = make_server(store_path=str(tmp_path / "plans.jsonl"))
        assert cli_main(["loadtest", "--server",
                         f"127.0.0.1:{harness.port}",
                         "--requests", "10", "--dedup-ratio", "0.5",
                         "--concurrency", "2",
                         "--min-cache-hit-rate", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "cache-hit rate" in out and "p99" in out

    def test_loadtest_cli_fails_below_slo(self, make_server, tmp_path,
                                          capsys):
        harness = make_server(store_path=str(tmp_path / "plans.jsonl"))
        # dedup 0.0 -> every request unique -> hit rate 0 < the 0.9 SLO.
        assert cli_main(["loadtest", "--server",
                         f"127.0.0.1:{harness.port}",
                         "--requests", "4", "--dedup-ratio", "0.0",
                         "--concurrency", "2",
                         "--min-cache-hit-rate", "0.9"]) == 1
        assert "below the --min-cache-hit-rate SLO" \
            in capsys.readouterr().err

    def test_unreachable_server_reports_cleanly(self, capsys):
        assert cli_main(["loadtest", "--server", "127.0.0.1:1",
                        "--requests", "2", "--concurrency", "1",
                         "--timeout", "2"]) == 1
        assert "no request completed" in capsys.readouterr().err

    def test_bad_parameters_are_usage_errors(self, capsys):
        assert cli_main(["loadtest", "--server", "not a url //",
                         "--requests", "2"]) == 2
        assert cli_main(["loadtest", "--requests", "0"]) == 2
        assert cli_main(["loadtest", "--dedup-ratio", "1.5"]) == 2
        capsys.readouterr()
