"""Tests of the portfolio sweep engine, its HTTP job API, and ``repro sweep``.

The acceptance contract of the sweep backbone lives here: a registered
portfolio swept through the scheduler (locally or via a live server) emits
a manifest whose rows are bit-identical to the orchestrator path
(``repro run <figure> --reduced``), duplicates are evaluated once, bad
points become failed cells instead of failed sweeps, and the polled HTTP
job reports incremental progress.
"""

import asyncio
import json

import pytest

from repro.api.portfolio import (
    Portfolio,
    PortfolioAxis,
    get_portfolio,
    portfolio_from_scenarios,
)
from repro.api.scenario import Scenario
from repro.runner import orchestrator
from repro.runner.cli import main
from repro.runner.manifest import validate_manifest
from repro.runner.registry import get_experiment
from repro.server.client import PlanClient, PlanServerError
from repro.server.portfolio import (
    build_sweep_manifest,
    run_portfolio_local,
    sweep_portfolio,
)
from repro.server.scheduler import PlanScheduler

pytestmark = pytest.mark.slow  # sweeps evaluate real (reduced) grids


def _fast_scenario(max_candidates=4, **workload_overrides):
    workload = {"model": "gpt3-6.7b", "num_layers": 2, "batch_size": 8,
                "seq_length": 512}
    workload.update(workload_overrides)
    return Scenario.from_dict({
        "schema_version": 1,
        "workload": workload,
        "solver": {"scheme": "temp", "engine": "tcme",
                   "max_candidates": max_candidates},
    })


def _fast_portfolio(name="fast", candidates=(2, 3)):
    """A tiny portfolio over the solver candidate cap (fast to evaluate)."""
    return Portfolio(
        name=name,
        base=_fast_scenario(),
        axes=(
            PortfolioAxis(name="max_candidates",
                          path="solver.max_candidates",
                          values=tuple(candidates)),
        ),
    )


class TestEngine:
    def test_outcomes_in_point_order_with_dedup(self):
        # Two distinct points plus one duplicate of the first.
        portfolio = Portfolio(
            name="dedup",
            base=_fast_scenario(),
            expansion="zip",
            axes=(
                PortfolioAxis(name="max_candidates",
                              path="solver.max_candidates",
                              values=(2, 3, 2)),
                PortfolioAxis(name="step", values=(0, 1, 2)),
            ),
        )

        async def scenario():
            async with PlanScheduler(batch_window=0.001) as scheduler:
                outcomes = await sweep_portfolio(scheduler, portfolio)
                return outcomes, dict(scheduler.counters)

        outcomes, counters = asyncio.run(scenario())
        assert [outcome.index for outcome in outcomes] == [0, 1, 2]
        assert counters["evaluations"] == 2  # the duplicate never ran
        assert outcomes[0].payload == outcomes[2].payload
        assert outcomes[2].source == "duplicate"
        assert outcomes[0].source == "evaluated"
        # The shared evaluation's wall time is accounted to the first
        # point only; a duplicate cell costs nothing.
        assert outcomes[2].wall_seconds == 0.0
        assert outcomes[0].wall_seconds > 0.0

    def test_bad_point_is_an_error_payload_not_a_failed_sweep(self):
        # A fault study without a fixed_spec passes document validation but
        # fails in the evaluation path.
        bad = Scenario.from_dict({
            "schema_version": 1,
            "workload": {"model": "gpt3-6.7b", "num_layers": 2,
                         "batch_size": 8, "seq_length": 512},
            "hardware": {"link_fault_rate": 0.1},
        })
        portfolio = portfolio_from_scenarios(
            "mixed", [_fast_scenario(), bad])
        outcomes = run_portfolio_local(portfolio)
        assert "error" not in outcomes[0].payload
        assert outcomes[1].payload["error"]["status"] == 422

    def test_on_unique_reports_incremental_progress(self):
        seen = []
        run_portfolio_local(
            _fast_portfolio(),
            on_unique=lambda done, total, outcome: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]


class TestManifest:
    def test_adhoc_manifest_is_valid_and_rows_carry_payloads(self):
        portfolio = _fast_portfolio()
        outcomes = run_portfolio_local(portfolio)
        manifest = build_sweep_manifest(portfolio, outcomes,
                                        total_seconds=1.0)
        assert validate_manifest(manifest) == []
        assert len(manifest["rows"]) == 2
        assert manifest["rows"][0]["max_candidates"] == 2
        assert manifest["rows"][0]["model"] == "gpt3-6.7b"
        assert manifest["sweep"]["unique"] == 2
        # Strict JSON end to end.
        json.dumps(manifest, allow_nan=False)

    def test_failed_point_becomes_a_failed_cell(self):
        bad = Scenario.from_dict({
            "schema_version": 1,
            "workload": {"model": "gpt3-6.7b", "num_layers": 2,
                         "batch_size": 8, "seq_length": 512},
            "hardware": {"link_fault_rate": 0.1},
        })
        portfolio = portfolio_from_scenarios("failing", [bad])
        outcomes = run_portfolio_local(portfolio)
        manifest = build_sweep_manifest(portfolio, outcomes)
        assert manifest["cells"][0]["error"]
        assert manifest["cells"][0]["num_rows"] == 0
        assert manifest["rows"] == []
        problems = validate_manifest(manifest)
        assert any("failed" in problem for problem in problems)


@pytest.mark.parametrize("figure", ["fig13", "fig19", "fabric_zoo"])
class TestOrchestratorParity:
    def test_local_sweep_rows_identical_to_orchestrator(self, figure):
        template = get_portfolio(figure)
        experiment = get_experiment(figure)
        portfolio = template.build(True)
        outcomes = run_portfolio_local(portfolio)
        manifest = build_sweep_manifest(
            portfolio, outcomes, reduced=True, experiment=experiment,
            row_builder=template.row)
        assert validate_manifest(manifest, experiment) == []
        reference = orchestrator.run_experiment(figure, reduced=True)
        assert manifest["rows"] == reference["rows"]
        assert manifest["schema"] == reference["schema"]


class TestHttpJobs:
    def test_job_runs_to_done_with_results_in_point_order(self, client):
        portfolio = _fast_portfolio(name="http", candidates=(4, 5))
        status = client.sweep(portfolio, poll_interval=0.05, timeout=60)
        assert status["status"] == "done"
        assert status["points"] == 2
        assert status["unique"] == 2
        assert status["completed"] == 2
        assert status["errors"] == 0
        assert [params["max_candidates"] for params in status["params"]] \
            == [4, 5]
        assert len(status["results"]) == 2
        assert all("error" not in payload for payload in status["results"])
        assert len(status["sources"]) == len(status["wall_seconds"]) == 2

    def test_jobs_listing_and_metrics(self, client):
        client.sweep(_fast_portfolio(name="listed", candidates=(6,)),
                     poll_interval=0.05, timeout=60)
        jobs = client.portfolio_jobs()["jobs"]
        assert any(job["portfolio"] == "listed" for job in jobs)
        metrics = client.metrics()
        assert metrics["portfolios"]["jobs"] >= 1

    def test_malformed_portfolio_is_a_structured_400(self, client):
        with pytest.raises(PlanServerError) as excinfo:
            client.portfolio_start({"schema_version": 1, "bogus": True})
        assert excinfo.value.status == 400
        error = excinfo.value.payload["error"]
        assert error["type"] == "PortfolioError"
        assert "Traceback" not in error["message"]

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(PlanServerError) as excinfo:
            client.portfolio_status("sweep-999999")
        assert excinfo.value.status == 404

    def test_wrong_method_is_a_405(self, client):
        status, headers, _ = client._request("DELETE", "/v1/portfolio")
        assert status == 405
        assert "POST" in headers.get("allow", "")


class TestSweepCli:
    def test_sweep_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig13", "fig17", "fig19"):
            assert name in out

    def test_sweep_requires_exactly_one_source(self, capsys):
        assert main(["sweep"]) == 2
        assert main(["sweep", "fig13", "--file", "x.json"]) == 2

    def test_sweep_unknown_portfolio_exits_2(self, capsys):
        assert main(["sweep", "not-a-portfolio"]) == 2
        assert "unknown portfolio" in capsys.readouterr().err

    def test_sweep_malformed_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "portfolio.json"
        path.write_text('{"schema_version": 1, "bogus": true}')
        assert main(["sweep", "--file", str(path)]) == 2
        assert "unknown portfolio keys" in capsys.readouterr().err

    def test_sweep_file_with_bad_base_exits_2_without_traceback(
            self, tmp_path, capsys):
        path = tmp_path / "portfolio.json"
        path.write_text(json.dumps({
            "schema_version": 1, "name": "bad",
            "base": {"schema_version": 1, "workload": {"modle": "typo"}},
            "axes": [{"name": "rows", "path": "hardware.rows",
                      "values": [2, 4]}],
        }))
        assert main(["sweep", "--file", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid portfolio base" in err
        assert "Traceback" not in err

    def test_sweep_malformed_server_url_exits_2(self, capsys):
        assert main(["sweep", "fig13", "--reduced", "--server", "://",
                     "--no-write"]) == 2
        assert "malformed --server" in capsys.readouterr().err

    def test_adhoc_file_sweep_writes_a_valid_manifest(self, tmp_path,
                                                      capsys):
        path = tmp_path / "portfolio.json"
        path.write_text(_fast_portfolio(name="cli-adhoc").to_json())
        assert main(["sweep", "--file", str(path),
                     "--output-dir", str(tmp_path / "results")]) == 0
        manifest = json.loads(
            (tmp_path / "results" / "cli-adhoc.json").read_text())
        assert validate_manifest(manifest) == []
        assert len(manifest["rows"]) == 2

    # Acceptance criterion: `repro sweep` over the registered fig13 reduced
    # portfolio emits a manifest row-identical to `repro run fig13
    # --reduced`, via both local and --server modes.
    def test_fig13_sweep_local_mode_row_identical_to_repro_run(
            self, tmp_path, capsys):
        reference = orchestrator.run_experiment("fig13", reduced=True)
        assert main(["sweep", "fig13", "--reduced",
                     "--output-dir", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "fig13.json").read_text())
        assert manifest["rows"] == json.loads(
            json.dumps(reference["rows"], allow_nan=False))
        assert manifest["schema"] == list(reference["schema"])
        assert validate_manifest(manifest,
                                 get_experiment("fig13")) == []

    def test_fig13_sweep_server_mode_row_identical_to_repro_run(
            self, server, tmp_path, capsys):
        reference = orchestrator.run_experiment("fig13", reduced=True)
        assert main(["sweep", "fig13", "--reduced",
                     "--server", f"127.0.0.1:{server.port}",
                     "--output-dir", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "fig13.json").read_text())
        assert manifest["rows"] == json.loads(
            json.dumps(reference["rows"], allow_nan=False))
        assert manifest["sweep"]["mode"] == "server"
        assert validate_manifest(manifest,
                                 get_experiment("fig13")) == []

    def test_repeated_server_sweep_is_served_from_the_store(
            self, server, tmp_path, capsys):
        client = PlanClient(port=server.port, timeout=60.0)
        portfolio = _fast_portfolio(name="stored", candidates=(7, 8))
        first = client.sweep(portfolio, poll_interval=0.05, timeout=60)
        second = client.sweep(portfolio, poll_interval=0.05, timeout=60)
        assert first["results"] == second["results"]
        assert all(source == "store" for source in second["sources"])


class TestFabricZooSweep:
    """Acceptance: the topology zoo swept as a portfolio axis, with a
    validated manifest, in local (batched and per-point) and server modes."""

    def _reference_rows(self):
        reference = orchestrator.run_experiment("fabric_zoo", reduced=True)
        return json.loads(json.dumps(reference["rows"], allow_nan=False))

    def test_reduced_grid_covers_every_registered_fabric(self):
        from repro.experiments.fabric_zoo import FABRICS
        from repro.hardware.topologies import topology_names

        portfolio = get_portfolio("fabric_zoo").build(True)
        labels = [point.params["fabric"] for point in portfolio.expand()]
        assert labels == list(FABRICS)
        assert set(labels) == set(topology_names())

    def test_fabrics_produce_distinct_costs(self):
        manifest = orchestrator.run_experiment("fabric_zoo", reduced=True)
        by_fabric = {row["fabric"]: row for row in manifest["rows"]}
        mesh = by_fabric["mesh"]
        distinct = [fabric for fabric, row in by_fabric.items()
                    if fabric != "mesh"
                    and row["throughput"] != mesh["throughput"]]
        assert len(distinct) >= 3, by_fabric

    def test_local_batched_and_unbatched_sweeps_match_repro_run(
            self, tmp_path):
        reference = self._reference_rows()
        for index, flags in enumerate(([], ["--no-batched"])):
            out = tmp_path / f"sweep-{index}"
            assert main(["sweep", "fabric_zoo", "--reduced", *flags,
                         "--output-dir", str(out)]) == 0
            manifest = json.loads((out / "fabric_zoo.json").read_text())
            assert manifest["rows"] == reference
            assert validate_manifest(
                manifest, get_experiment("fabric_zoo")) == []

    def test_server_sweep_matches_repro_run(self, server, tmp_path):
        assert main(["sweep", "fabric_zoo", "--reduced",
                     "--server", f"127.0.0.1:{server.port}",
                     "--output-dir", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "fabric_zoo.json").read_text())
        assert manifest["rows"] == self._reference_rows()
        assert manifest["sweep"]["mode"] == "server"
        assert validate_manifest(
            manifest, get_experiment("fabric_zoo")) == []
