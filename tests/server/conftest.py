"""Shared fixtures of the plan-server test modules.

One real :class:`~repro.server.http.PlanServer` (ephemeral port, disk-backed
store, in-process worker) is started per test module in a background thread;
tests talk to it with the blocking :class:`~repro.server.client.PlanClient`
exactly like ``repro submit`` / ``repro sweep --server`` do.

The harness never sleeps to synchronise: startup is gated on a
``threading.Event`` set once the server has bound its (ephemeral) port, and
:meth:`ServerHarness.drain` exposes the scheduler's explicit drain for tests
that must observe a settled queue.
"""

import asyncio
import threading

import pytest

from repro.server.client import PlanClient
from repro.server.http import PlanServer
from repro.server.scheduler import PlanScheduler
from repro.server.store import ResultStore


class ServerHarness:
    """A PlanServer running its own asyncio loop in a daemon thread."""

    def __init__(self, store_path=None, jobs=1, batch_window=0.002,
                 deadline=None, max_queue=None, chaos=None):
        self._store_path = store_path
        self._jobs = jobs
        self._batch_window = batch_window
        self._deadline = deadline
        self._max_queue = max_queue
        self._chaos = chaos
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._server = None
        self.port = None
        self.error = None

    def start(self):
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("plan server did not start in time")
        if self.error is not None:
            raise RuntimeError(f"plan server failed to start: {self.error}")

    def _thread_main(self):
        try:
            asyncio.run(self._amain())
        except Exception as error:  # surface startup failures to the test
            self.error = error
            self._ready.set()

    async def _amain(self):
        store = (ResultStore(self._store_path)
                 if self._store_path is not None else None)
        scheduler = PlanScheduler(store=store, jobs=self._jobs,
                                  batch_window=self._batch_window,
                                  deadline=self._deadline,
                                  max_queue=self._max_queue,
                                  chaos=self._chaos)
        server = PlanServer(scheduler, host="127.0.0.1", port=0)
        await server.start()
        self._server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()

    @property
    def scheduler(self):
        return self._server.scheduler

    def drain(self, timeout=30):
        """Block until every queued and in-flight request has resolved."""
        future = asyncio.run_coroutine_threadsafe(
            self._server.scheduler.drain(), self._loop)
        future.result(timeout)

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            raise RuntimeError("plan server did not shut down in time")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One running plan server (ephemeral port) per test module."""
    harness = ServerHarness(
        tmp_path_factory.mktemp("plan-server") / "store.jsonl")
    harness.start()
    yield harness
    harness.stop()


@pytest.fixture
def client(server):
    """A blocking client bound to the module's server."""
    return PlanClient(port=server.port, timeout=60.0)


@pytest.fixture
def make_server():
    """A factory for per-test servers with custom knobs (chaos, deadline).

    The chaos tests need private servers — an armed
    :class:`~repro.server.faults.FaultInjector` is stateful, so sharing the
    module-scoped server would leak one test's faults into the next.
    """
    harnesses = []

    def _make(**kwargs):
        harness = ServerHarness(**kwargs)
        harness.start()
        harnesses.append(harness)
        return harness

    yield _make
    for harness in harnesses:
        harness.stop()
