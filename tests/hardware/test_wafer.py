"""Tests for the wafer system object, faults, multi-wafer, and GPU cluster."""

import pytest

from repro.hardware.config import GB, TB
from repro.hardware.faults import FaultModel, FaultType, classify_faults
from repro.hardware.gpu_cluster import GPUCluster
from repro.hardware.multiwafer import MultiWaferSystem
from repro.hardware.topology import Link
from repro.hardware.wafer import WaferScaleChip


class TestWaferScaleChip:
    def test_default_wafer_has_32_healthy_dies(self, wafer):
        assert wafer.num_dies == 32
        assert len(wafer.dies()) == 32

    def test_die_lookup(self, wafer):
        die = wafer.die(5)
        assert die.die_id == 5
        assert die.hbm_capacity == 72 * GB
        with pytest.raises(KeyError):
            wafer.die(99)

    def test_aggregates(self, wafer):
        assert wafer.aggregate_peak_flops() == pytest.approx(32 * 1800e12)
        assert wafer.aggregate_hbm_capacity([0, 1]) == pytest.approx(2 * 72 * GB)

    def test_link_transfer_time(self, wafer):
        link = wafer.topology.link(0, 1)
        time = wafer.link_transfer_time(link, 1 * TB)
        assert time == pytest.approx(1.0 + 200e-9)

    def test_path_transfer_time_pipelines_serialization(self, wafer):
        path = wafer.topology.xy_route(0, 3)
        time = wafer.path_transfer_time(path, 1 * TB)
        assert time == pytest.approx(1.0 + 3 * 200e-9)

    def test_describe_keys(self, wafer):
        summary = wafer.describe()
        assert summary["dies"] == 32.0
        assert summary["healthy_dies"] == 32.0

    def test_contiguous_groups(self, wafer):
        groups = wafer.contiguous_groups(8)
        assert len(groups) == 4

    def test_core_faults_derate_compute(self):
        faults = FaultModel(core_faults={0: 0.5})
        chip = WaferScaleChip(fault_model=faults)
        assert chip.die(0).peak_flops == pytest.approx(0.5 * 1800e12)
        assert chip.die(1).peak_flops == pytest.approx(1800e12)

    def test_dead_die_reduces_count(self):
        faults = FaultModel(dead_dies={3})
        chip = WaferScaleChip(fault_model=faults)
        assert chip.num_dies == 31
        assert 3 not in chip.healthy_dies()

    def test_failed_link_has_no_bandwidth(self):
        faults = FaultModel(failed_links={(0, 1), (1, 0)})
        chip = WaferScaleChip(fault_model=faults)
        assert not chip.topology.has_link(0, 1)
        with pytest.raises(ValueError):
            chip.link_transfer_time(Link(0, 1), 100)


class TestFaultModel:
    def test_no_faults_by_default(self):
        assert not FaultModel().has_faults

    def test_sample_link_faults_is_symmetric_and_sized(self):
        model = FaultModel.sample_link_faults(4, 8, 0.25, seed=1)
        undirected = {tuple(sorted(pair)) for pair in model.failed_links}
        assert len(undirected) == round(0.25 * 52)
        for src, dst in model.failed_links:
            assert (dst, src) in model.failed_links

    def test_sample_link_faults_reproducible(self):
        a = FaultModel.sample_link_faults(4, 8, 0.3, seed=5)
        b = FaultModel.sample_link_faults(4, 8, 0.3, seed=5)
        assert a.failed_links == b.failed_links

    def test_sample_core_faults_mean_close_to_rate(self):
        model = FaultModel.sample_core_faults(32, 0.2, seed=0)
        mean = sum(model.core_faults.values()) / 32
        assert 0.1 < mean < 0.3

    def test_zero_rate_means_no_faults(self):
        assert not FaultModel.sample_core_faults(32, 0.0).has_faults
        assert not FaultModel.sample_link_faults(4, 8, 0.0).has_faults

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultModel.sample_link_faults(4, 8, 1.5)
        with pytest.raises(ValueError):
            FaultModel.sample_core_faults(32, -0.1)

    def test_merged_with_takes_union(self):
        a = FaultModel(core_faults={0: 0.1}, dead_dies={1})
        b = FaultModel(core_faults={0: 0.3}, failed_links={(2, 3)})
        merged = a.merged_with(b)
        assert merged.core_faults[0] == 0.3
        assert merged.dead_dies == {1}
        assert (2, 3) in merged.failed_links

    def test_classify_faults(self):
        model = FaultModel(
            failed_links={(0, 1), (1, 0)},
            core_faults={2: 0.5, 3: 0.0},
            dead_dies={4},
        )
        counts = classify_faults(model)
        assert counts[FaultType.LINK] == 1
        assert counts[FaultType.CORE] == 1
        assert counts[FaultType.DIE] == 1


class TestMultiWaferSystem:
    def test_total_resources(self):
        system = MultiWaferSystem(4)
        assert system.total_dies == 128
        assert system.total_peak_flops == pytest.approx(128 * 1800e12)

    def test_invalid_wafer_count(self):
        with pytest.raises(ValueError):
            MultiWaferSystem(0)

    def test_stage_to_wafer_mapping_even_split(self):
        system = MultiWaferSystem(2)
        assert system.wafer_of_stage(0, 4) == 0
        assert system.wafer_of_stage(1, 4) == 0
        assert system.wafer_of_stage(2, 4) == 1
        assert system.wafer_of_stage(3, 4) == 1

    def test_stage_boundary_crossing(self):
        system = MultiWaferSystem(2)
        assert not system.stage_boundary_crosses_wafer(0, 4)
        assert system.stage_boundary_crosses_wafer(1, 4)

    def test_inter_stage_transfer_uses_interwafer_link_when_crossing(self):
        system = MultiWaferSystem(2)
        crossing = system.inter_stage_transfer_time(1, 4, 1 * GB)
        local = system.inter_stage_transfer_time(0, 4, 1 * GB)
        assert crossing > 0
        assert local > 0
        assert crossing != pytest.approx(local)

    def test_dies_per_stage(self):
        system = MultiWaferSystem(2)
        assert system.dies_per_stage(4) == 16
        assert system.dies_per_stage(2) == 32

    def test_describe(self):
        summary = MultiWaferSystem(3).describe()
        assert summary["num_wafers"] == 3
        assert summary["total_dies"] == 96


class TestGPUCluster:
    def test_node_assignment(self):
        cluster = GPUCluster()
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        assert cluster.same_node(0, 7)
        assert not cluster.same_node(7, 8)

    def test_intra_node_is_faster_than_inter_node(self):
        cluster = GPUCluster()
        intra = cluster.transfer_time(0, 1, 1 * GB)
        inter = cluster.transfer_time(0, 8, 1 * GB)
        assert intra < inter

    def test_allreduce_scales_with_group(self):
        cluster = GPUCluster()
        small = cluster.ring_allreduce_time(8, 1 * GB)
        large = cluster.ring_allreduce_time(32, 1 * GB)
        assert small < large

    def test_trivial_collectives_are_free(self):
        cluster = GPUCluster()
        assert cluster.ring_allreduce_time(1, 1 * GB) == 0.0
        assert cluster.allgather_time(1, 1 * GB) == 0.0

    def test_out_of_range_device(self):
        with pytest.raises(ValueError):
            GPUCluster().node_of(99)
