"""Tests for the 2D-mesh topology, routing, and ring enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.topology import MeshTopology, die_coord, die_id


class TestBasics:
    def test_die_id_roundtrip(self):
        for die in range(32):
            row, col = die_coord(die, 8)
            assert die_id(row, col, 8) == die

    def test_num_dies(self):
        mesh = MeshTopology(4, 8)
        assert mesh.num_dies == 32
        assert len(mesh.dies()) == 32

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4)

    def test_link_count_of_4x8_mesh(self):
        mesh = MeshTopology(4, 8)
        # Directed links: 2 * (rows*(cols-1) + cols*(rows-1)) = 2 * (28 + 24).
        assert len(mesh.links()) == 104

    def test_neighbours_of_corner_and_center(self):
        mesh = MeshTopology(4, 8)
        assert sorted(mesh.neighbours(0)) == [1, 8]
        center = mesh.die_at(1, 3)
        assert len(mesh.neighbours(center)) == 4

    def test_has_link_only_between_adjacent(self):
        mesh = MeshTopology(4, 8)
        assert mesh.has_link(0, 1)
        assert mesh.has_link(1, 0)
        assert not mesh.has_link(0, 2)
        assert not mesh.has_link(0, 9)  # diagonal

    def test_link_lookup_raises_for_missing(self):
        mesh = MeshTopology(4, 8)
        with pytest.raises(KeyError):
            mesh.link(0, 9)

    def test_hop_distance_is_manhattan(self):
        mesh = MeshTopology(4, 8)
        assert mesh.hop_distance(0, 7) == 7
        assert mesh.hop_distance(0, mesh.die_at(3, 7)) == 10
        assert mesh.hop_distance(5, 5) == 0


class TestFaults:
    def test_failed_die_removed(self):
        mesh = MeshTopology(4, 8, failed_dies=[5])
        assert not mesh.is_healthy(5)
        assert mesh.num_dies == 31
        assert 5 not in mesh.neighbours(4)

    def test_failed_link_removed_both_directions(self):
        mesh = MeshTopology(4, 8, failed_links=[(0, 1)])
        assert not mesh.has_link(0, 1)
        assert not mesh.has_link(1, 0)

    def test_routing_detours_around_failed_link(self):
        mesh = MeshTopology(4, 8, failed_links=[(0, 1)])
        path = mesh.shortest_path(0, 1)
        assert path is not None
        assert len(path) > 1
        assert path[0].src == 0 and path[-1].dst == 1


class TestRouting:
    def test_xy_route_goes_columns_first(self):
        mesh = MeshTopology(4, 8)
        path = mesh.xy_route(0, mesh.die_at(2, 3))
        assert len(path) == 5
        # First three hops move along the row (column index changes).
        assert [link.dst for link in path[:3]] == [1, 2, 3]

    def test_yx_route_goes_rows_first(self):
        mesh = MeshTopology(4, 8)
        path = mesh.yx_route(0, mesh.die_at(2, 3))
        assert len(path) == 5
        assert [link.dst for link in path[:2]] == [8, 16]

    def test_route_to_self_is_empty(self):
        mesh = MeshTopology(4, 8)
        assert mesh.xy_route(3, 3) == []

    def test_shortest_path_length_equals_hop_distance(self):
        mesh = MeshTopology(4, 8)
        path = mesh.shortest_path(0, 31)
        assert path is not None
        assert len(path) == mesh.hop_distance(0, 31)

    def test_shortest_path_avoiding_links(self):
        mesh = MeshTopology(2, 2)
        direct = mesh.xy_route(0, 1)
        detour = mesh.shortest_path(0, 1, avoid_links=direct)
        assert detour is not None
        assert [link.dst for link in detour] == [2, 3, 1]

    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_xy_route_is_valid_and_minimal(self, src, dst):
        mesh = MeshTopology(4, 8)
        path = mesh.xy_route(src, dst)
        assert len(path) == mesh.hop_distance(src, dst)
        node = src
        for link in path:
            assert link.src == node
            assert mesh.are_adjacent(link.src, link.dst)
            node = link.dst
        if path:
            assert node == dst


class TestRings:
    def test_full_rectangle_forms_ring(self):
        mesh = MeshTopology(4, 8)
        group = [mesh.die_at(r, c) for r in range(2) for c in range(4)]
        ring = mesh.contiguous_ring(group)
        assert ring is not None
        assert sorted(ring) == sorted(group)
        pairs = list(zip(ring, ring[1:] + ring[:1]))
        assert all(mesh.are_adjacent(a, b) for a, b in pairs)

    def test_straight_line_of_more_than_two_is_not_a_ring(self):
        mesh = MeshTopology(4, 8)
        assert mesh.contiguous_ring([0, 1, 2, 3]) is None

    def test_two_adjacent_dies_form_degenerate_ring(self):
        mesh = MeshTopology(4, 8)
        assert mesh.contiguous_ring([0, 1]) == [0, 1]

    def test_two_distant_dies_do_not(self):
        mesh = MeshTopology(4, 8)
        assert mesh.contiguous_ring([0, 5]) is None

    def test_odd_sized_group_cannot_ring(self):
        mesh = MeshTopology(4, 8)
        assert mesh.contiguous_ring([0, 1, 8]) is None

    def test_scattered_group_cannot_ring(self):
        mesh = MeshTopology(4, 8)
        assert mesh.contiguous_ring([0, 7, 24, 31]) is None

    def test_duplicate_dies_rejected(self):
        mesh = MeshTopology(4, 8)
        with pytest.raises(ValueError):
            mesh.contiguous_ring([0, 0, 1, 8])

    def test_ring_penalty_is_one_for_contiguous(self):
        mesh = MeshTopology(4, 8)
        group = [mesh.die_at(r, c) for r in range(2) for c in range(2)]
        assert mesh.ring_penalty_hops(group) == 1

    def test_ring_penalty_grows_for_linear_group(self):
        mesh = MeshTopology(4, 8)
        assert mesh.ring_penalty_hops([0, 1, 2, 3, 4, 5, 6, 7]) == 7


class TestGrouping:
    def test_partition_into_rows(self):
        mesh = MeshTopology(4, 8)
        groups = mesh.partition_into_groups(8)
        assert len(groups) == 4
        assert all(len(group) == 8 for group in groups)
        flattened = sorted(die for group in groups for die in group)
        assert flattened == list(range(32))

    def test_partition_prefers_square_tiles(self):
        mesh = MeshTopology(4, 8)
        groups = mesh.partition_into_groups(4)
        assert len(groups) == 8
        # Every group of 4 should be a 2x2 tile and therefore form a ring.
        assert all(mesh.contiguous_ring(group) is not None for group in groups)

    def test_partition_rejects_bad_sizes(self):
        mesh = MeshTopology(4, 8)
        with pytest.raises(ValueError):
            mesh.partition_into_groups(0)
        with pytest.raises(ValueError):
            mesh.partition_into_groups(33)

    @given(st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=10, deadline=None)
    def test_partition_covers_all_dies_exactly_once(self, size):
        mesh = MeshTopology(4, 8)
        groups = mesh.partition_into_groups(size)
        flattened = sorted(die for group in groups for die in group)
        assert flattened == list(range(32))
