"""Tests for the hardware configuration dataclasses (Table I)."""

import dataclasses

import pytest

from repro.hardware.config import (
    GB,
    TB,
    ComputeDieConfig,
    GPUClusterConfig,
    GPUDeviceConfig,
    HBMConfig,
    LinkConfig,
    WaferConfig,
    default_wafer_config,
)


class TestLinkConfig:
    def test_table_i_defaults(self):
        link = LinkConfig()
        assert link.per_die_bandwidth == pytest.approx(4 * TB)
        assert link.latency == pytest.approx(200e-9)
        assert link.max_reach_mm == 50.0

    def test_transfer_time_includes_latency_and_serialization(self):
        link = LinkConfig(bandwidth=1 * TB, latency=1e-7)
        time = link.transfer_time(1 * TB)
        assert time == pytest.approx(1.0 + 1e-7)

    def test_zero_bytes_costs_only_latency(self):
        link = LinkConfig()
        assert link.transfer_time(0) == pytest.approx(link.latency)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkConfig().transfer_time(-1)

    def test_energy_is_per_byte_not_per_bit(self):
        link = LinkConfig()
        # 5.0 pJ/bit -> 40 pJ/byte.
        assert link.energy_per_byte == pytest.approx(40e-12)


class TestHBMConfig:
    def test_table_i_defaults(self):
        hbm = HBMConfig()
        assert hbm.capacity == 72 * GB
        assert hbm.bandwidth == 1 * TB
        assert hbm.latency == pytest.approx(100e-9)

    def test_access_time(self):
        hbm = HBMConfig(bandwidth=1 * TB, latency=0.0)
        assert hbm.access_time(1 * TB) == pytest.approx(1.0)

    def test_negative_access_rejected(self):
        with pytest.raises(ValueError):
            HBMConfig().access_time(-5)


class TestComputeDieConfig:
    def test_core_array(self):
        die = ComputeDieConfig()
        assert die.num_cores == 64

    def test_peak_power_from_efficiency(self):
        die = ComputeDieConfig()
        assert die.peak_power == pytest.approx(die.peak_flops / die.flops_per_watt)

    def test_effective_flops_scaling(self):
        die = ComputeDieConfig()
        assert die.effective_flops(0.5) == pytest.approx(die.peak_flops * 0.5)

    def test_effective_flops_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            ComputeDieConfig().effective_flops(1.5)


class TestWaferConfig:
    def test_default_grid_is_4x8(self):
        wafer = default_wafer_config()
        assert (wafer.rows, wafer.cols) == (4, 8)
        assert wafer.num_dies == 32

    def test_aggregates(self):
        wafer = default_wafer_config()
        assert wafer.total_hbm_capacity == pytest.approx(32 * 72 * GB)
        assert wafer.total_peak_flops == pytest.approx(32 * wafer.die.peak_flops)
        assert wafer.total_sram_capacity == pytest.approx(32 * wafer.die.sram_capacity)

    def test_with_grid_returns_new_config(self):
        wafer = default_wafer_config()
        bigger = wafer.with_grid(6, 8)
        assert bigger.num_dies == 48
        assert wafer.num_dies == 32

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            WaferConfig(rows=0, cols=8)

    def test_overrides(self):
        wafer = default_wafer_config(d2d_bandwidth=2 * TB, hbm_capacity=100 * GB)
        assert wafer.d2d.bandwidth == 2 * TB
        assert wafer.die.hbm.capacity == 100 * GB

    def test_config_is_frozen(self):
        wafer = default_wafer_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            wafer.rows = 10


class TestGPUConfigs:
    def test_cluster_matches_wafer_scale_comparison(self):
        cluster = GPUClusterConfig()
        assert cluster.num_devices == 32
        # 32 x 312 TFLOPS ~ 10 PFLOPS of FP16 peak.
        assert cluster.total_peak_flops == pytest.approx(32 * 312e12)

    def test_device_defaults(self):
        device = GPUDeviceConfig()
        assert device.memory_capacity == 80 * GB
        assert device.peak_flops == pytest.approx(312e12)
