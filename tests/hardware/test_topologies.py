"""Tests of the topology zoo: registry, fabric families, and the shim.

The default-mesh contract (bit-identity of every mesh result) is pinned by
the goldens and the differential suite; here the zoo itself is under test —
each family's link set, hop model, ring enumeration, and the registry's
validation errors.
"""

import pytest

from repro.api.scenario import HardwareSpec, Scenario, ScenarioError
from repro.hardware.topologies import (
    DEFAULT_TOPOLOGY,
    build_topology,
    get_topology_class,
    topology_names,
    topology_table,
    validate_topology_spec,
)
from repro.hardware.topologies.chiplet import ChipletTopology
from repro.hardware.topologies.express import ExpressMeshTopology
from repro.hardware.topologies.mesh import MeshTopology
from repro.hardware.topologies.mesh3d import StackedMeshTopology
from repro.hardware.topologies.torus import TorusTopology
from repro.hardware.wafer import WaferScaleChip


class TestRegistry:
    def test_default_family_is_mesh_and_listed_first(self):
        names = topology_names()
        assert DEFAULT_TOPOLOGY == "mesh"
        assert names[0] == "mesh"
        assert set(names) >= {"mesh", "torus", "mesh3d", "chiplet",
                              "express"}

    def test_at_least_three_non_mesh_families(self):
        assert len([name for name in topology_names()
                    if name != "mesh"]) >= 3

    def test_unknown_family_lists_known_names(self):
        with pytest.raises(ValueError, match="mesh"):
            get_topology_class("hypercube")

    def test_build_none_is_the_default_mesh(self):
        topology = build_topology(None, 4, 8)
        assert type(topology) is MeshTopology

    def test_build_passes_params_through(self):
        topology = build_topology(
            {"name": "mesh3d", "layers": 4, "vertical_latency_factor": 3.0},
            4, 8)
        assert isinstance(topology, StackedMeshTopology)
        assert topology.layers == 4
        assert topology.vertical_latency_factor == 3.0

    def test_validate_rejects_unknown_param(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_topology_spec({"name": "torus", "twist": 2})

    def test_validate_rejects_wrong_typed_param(self):
        with pytest.raises(ValueError):
            validate_topology_spec({"name": "express", "stride": "two"})

    def test_validate_rejects_bad_geometry(self):
        # 5 rows are not divisible into 2 decks.
        with pytest.raises(ValueError):
            validate_topology_spec({"name": "mesh3d", "layers": 2},
                                   rows=5, cols=8)

    def test_validate_without_geometry_skips_geometry_check(self):
        validate_topology_spec({"name": "mesh3d", "layers": 2})

    def test_topology_table_covers_every_family(self):
        rows = topology_table()
        assert {row["name"] for row in rows} == set(topology_names())
        assert all(row["link_model"] for row in rows)


class TestShim:
    def test_legacy_module_reexports_the_same_classes(self):
        from repro.hardware import topology as legacy

        assert legacy.MeshTopology is MeshTopology
        assert legacy.die_id(1, 3, 8) == 11

    def test_package_exports_from_hardware_namespace(self):
        from repro.hardware import MeshTopology as exported

        assert exported is MeshTopology


LINK_COUNTS_4X8 = {
    "mesh": ({}, 104),
    "torus": ({}, 128),
    "mesh3d": ({"layers": 2}, 120),
    "chiplet": ({"chiplet_rows": 2, "chiplet_cols": 2, "gateways": 2}, 96),
    "express": ({"stride": 2}, 144),
}


@pytest.mark.parametrize("name", sorted(LINK_COUNTS_4X8))
def test_link_count_of_each_family_on_4x8(name):
    params, expected = LINK_COUNTS_4X8[name]
    topology = build_topology({"name": name, **params}, 4, 8)
    assert len(topology.links()) == expected


class TestTorus:
    def test_wrap_links_shorten_row_distance(self):
        torus = TorusTopology(4, 8)
        mesh = MeshTopology(4, 8)
        first, last = torus.die_at(0, 0), torus.die_at(0, 7)
        assert torus.hop_distance(first, last) == 1
        assert mesh.hop_distance(first, last) == 7

    def test_full_row_closes_into_a_unit_cost_ring(self):
        torus = TorusTopology(4, 8)
        row = [torus.die_at(0, col) for col in range(8)]
        ring = torus.contiguous_ring(row)
        assert ring is not None
        assert torus.ring_penalty_hops(row) == 1
        # The same row on a mesh needs a 7-hop closure.
        assert MeshTopology(4, 8).ring_penalty_hops(row) == 7

    def test_weighted_wrap_links_cost_more(self):
        torus = TorusTopology(4, 8, wrap_latency_factor=3.0)
        first, last = torus.die_at(0, 0), torus.die_at(0, 7)
        # The wrap link costs ceil(3.0); the mesh chain costs 7.
        assert torus.hop_cost(first, last) == 3

    def test_no_wrap_on_degenerate_axes(self):
        # A 2-column torus would duplicate the existing mesh links.
        torus = TorusTopology(4, 2)
        mesh = MeshTopology(4, 2)
        assert len([l for l in torus.links()]) \
            == len(mesh.links()) + 2 * 2  # only column wraps (4 rows > 3)


class TestStackedMesh:
    def test_decks_are_disjoint_meshes_joined_by_vertical_links(self):
        topo = StackedMeshTopology(4, 8, layers=2)
        top, bottom = topo.die_at(0, 0), topo.die_at(2, 0)
        assert topo.deck_of(top) == 0
        assert topo.deck_of(bottom) == 1
        # No in-plane link crosses the deck boundary (rows 1 -> 2).
        assert not topo.has_link(topo.die_at(1, 0), topo.die_at(2, 0))
        # But the vertical link joins aligned dies across decks.
        assert topo.has_link(top, bottom)

    def test_vertical_links_carry_their_own_factors(self):
        topo = StackedMeshTopology(4, 8, layers=2,
                                   vertical_bandwidth_factor=0.25,
                                   vertical_latency_factor=4.0)
        link = topo.link(topo.die_at(0, 3), topo.die_at(2, 3))
        assert link.bandwidth_factor == 0.25
        assert link.latency_factor == 4.0
        in_plane = topo.link(topo.die_at(0, 3), topo.die_at(0, 4))
        assert in_plane.latency_factor == 1.0

    def test_geometry_check_requires_divisible_rows(self):
        with pytest.raises(ValueError):
            StackedMeshTopology(5, 8, layers=2)


class TestChiplet:
    def test_cross_chiplet_traffic_goes_through_gateways(self):
        # A 2x2 chiplet grid over 4x8 dies: each tile spans 2 rows x 4 cols,
        # so the vertical tile boundary runs between columns 3 and 4.
        topo = ChipletTopology(4, 8, chiplet_rows=2, chiplet_cols=2,
                               gateways=1)
        # Non-gateway dies on the boundary have no direct cross-tile link.
        assert not topo.has_link(topo.die_at(0, 3), topo.die_at(0, 4))
        # The single gateway (local (0,0)) of the right-adjacent tile pair.
        assert topo.has_link(topo.die_at(0, 0), topo.die_at(0, 4))

    def test_backbone_links_carry_backbone_factors(self):
        topo = ChipletTopology(4, 8, chiplet_rows=2, chiplet_cols=2,
                               gateways=1, backbone_bandwidth_factor=0.125,
                               backbone_latency_factor=5.0)
        link = topo.link(topo.die_at(0, 0), topo.die_at(0, 4))
        assert link.bandwidth_factor == 0.125
        assert link.latency_factor == 5.0

    def test_collective_hop_factor_reflects_backbone_escape(self):
        topo = ChipletTopology(4, 8, chiplet_rows=2, chiplet_cols=2,
                               gateways=2)
        assert topo.collective_hop_factor() == 4
        assert MeshTopology(4, 8).collective_hop_factor() == 1


class TestExpressMesh:
    def test_express_links_skip_stride_dies(self):
        topo = ExpressMeshTopology(4, 8, stride=2)
        assert topo.has_link(topo.die_at(0, 0), topo.die_at(0, 2))
        assert not topo.has_link(topo.die_at(0, 1), topo.die_at(0, 3))

    def test_express_links_carry_their_own_factors(self):
        topo = ExpressMeshTopology(4, 8, stride=2,
                                   express_latency_factor=1.5)
        express = topo.link(topo.die_at(0, 0), topo.die_at(0, 2))
        assert express.latency_factor == 1.5
        local = topo.link(topo.die_at(0, 0), topo.die_at(0, 1))
        assert local.latency_factor == 1.0

    def test_stride_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            ExpressMeshTopology(4, 8, stride=1)


class TestRouteTablesGeneralisation:
    @pytest.mark.parametrize("name", sorted(LINK_COUNTS_4X8))
    def test_every_family_memoises_ring_orderings(self, name):
        from repro.mapping.collectives import order_group_for_ring

        params, _ = LINK_COUNTS_4X8[name]
        topology = build_topology({"name": name, **params}, 4, 8)
        tables = topology.enable_route_tables()
        group = topology.partition_into_groups(4)[0]
        first = order_group_for_ring(topology, group)
        again = order_group_for_ring(topology, group)
        assert first == again
        stats = tables.stats()
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1


class TestWaferIntegration:
    def test_wafer_builds_the_requested_fabric(self):
        wafer = WaferScaleChip(topology={"name": "torus"})
        assert isinstance(wafer.topology, TorusTopology)
        assert wafer.topology_spec == {"name": "torus"}

    def test_wafer_defaults_to_mesh(self):
        wafer = WaferScaleChip()
        assert type(wafer.topology) is MeshTopology
        assert wafer.topology_spec is None

    def test_weighted_links_scale_bandwidth_and_latency(self):
        wafer = WaferScaleChip(topology={
            "name": "mesh3d", "layers": 2,
            "vertical_bandwidth_factor": 0.5,
            "vertical_latency_factor": 2.0})
        topo = wafer.topology
        vertical = topo.link(topo.die_at(0, 0), topo.die_at(2, 0))
        in_plane = topo.link(topo.die_at(0, 0), topo.die_at(0, 1))
        assert wafer.link_bandwidth(vertical) \
            == 0.5 * wafer.link_bandwidth(in_plane)
        payload = 2 ** 20
        assert wafer.link_transfer_time(vertical, payload) \
            > wafer.link_transfer_time(in_plane, payload)


class TestScenarioValidation:
    def test_topology_round_trips_through_the_document(self):
        scenario = Scenario(hardware=HardwareSpec(
            topology={"name": "express", "stride": 2}))
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert restored.hardware.topology == {"name": "express", "stride": 2}

    def test_unknown_fabric_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="invalid topology"):
            HardwareSpec(topology={"name": "hypercube"})

    def test_bad_geometry_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="invalid topology"):
            HardwareSpec(rows=5, cols=8,
                         topology={"name": "mesh3d", "layers": 2})

    def test_gpu_cluster_rejects_topology(self):
        with pytest.raises(ScenarioError):
            HardwareSpec(platform="gpu_cluster",
                         topology={"name": "torus"})

    def test_non_mesh_rejects_multi_wafer(self):
        with pytest.raises(ScenarioError, match="single-wafer"):
            HardwareSpec(num_wafers=2, topology={"name": "torus"})

    def test_non_mesh_rejects_fault_study(self):
        with pytest.raises(ScenarioError, match="mesh"):
            HardwareSpec(link_fault_rate=0.01,
                         topology={"name": "torus"})

    def test_explicit_mesh_allows_fault_study(self):
        spec = HardwareSpec(link_fault_rate=0.01,
                            topology={"name": "mesh"})
        assert spec.topology == {"name": "mesh"}

    def test_resolve_topology_builds_the_fabric(self):
        spec = HardwareSpec(topology={"name": "torus"})
        assert isinstance(spec.resolve_topology(), TorusTopology)
        assert type(HardwareSpec().resolve_topology()) is MeshTopology
