"""Tests for flows, collective expansion, and link-load accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.topology import MeshTopology
from repro.mapping.collectives import (
    expand_task,
    order_group_for_ring,
    ring_hop_factor,
)
from repro.mapping.contention import LinkLoadMap, flows_through
from repro.mapping.routing import route_flow
from repro.parallelism.comm import CollectiveType, CommTask


@pytest.fixture(scope="module")
def mesh():
    return MeshTopology(4, 8)


class TestFlow:
    def test_route_flow_follows_xy(self, mesh):
        flow = route_flow(mesh, 0, 10, num_bytes=100)
        assert flow.hops == mesh.hop_distance(0, 10)
        assert flow.total_bytes == 100

    def test_self_flow_has_empty_path(self, mesh):
        flow = route_flow(mesh, 3, 3, num_bytes=100)
        assert flow.path == []
        assert flow.hops == 0

    def test_count_multiplies_total_bytes(self, mesh):
        flow = route_flow(mesh, 0, 1, num_bytes=100, count=5)
        assert flow.total_bytes == 500

    def test_reroute_validates_endpoints(self, mesh):
        flow = route_flow(mesh, 0, 2, num_bytes=10)
        alternative = mesh.yx_route(0, 2)
        rerouted = flow.rerouted(alternative)
        assert rerouted.src == 0 and rerouted.dst == 2
        with pytest.raises(ValueError):
            flow.rerouted(mesh.xy_route(1, 3))

    def test_route_around_failed_link(self):
        broken = MeshTopology(4, 8, failed_links=[(0, 1)])
        flow = route_flow(broken, 0, 1, num_bytes=10)
        assert flow.hops > 1

    def test_unroutable_raises(self):
        # Isolate die 0 completely.
        broken = MeshTopology(2, 2, failed_links=[(0, 1), (0, 2)])
        with pytest.raises(ValueError):
            route_flow(broken, 0, 3, num_bytes=10)


class TestGroupOrdering:
    def test_rectangular_group_detected_as_ring(self, mesh):
        group = [0, 1, 8, 9]
        ordering, is_ring = order_group_for_ring(mesh, group)
        assert is_ring
        assert ring_hop_factor(mesh, ordering, closed=True) == 1

    def test_scattered_group_gets_chain_ordering(self, mesh):
        group = [0, 31, 7, 24]
        ordering, is_ring = order_group_for_ring(mesh, group)
        assert not is_ring
        assert sorted(ordering) == sorted(group)

    def test_single_member(self, mesh):
        ordering, is_ring = order_group_for_ring(mesh, [5])
        assert ordering == [5] and is_ring


class TestExpandTask:
    def test_ring_collective_on_contiguous_group_is_one_hop(self, mesh):
        task = CommTask(CollectiveType.ALL_REDUCE, group_size=4,
                        bytes_per_device=100, dimension="dp")
        flows, hops = expand_task(task, [[0, 1, 9, 8]], mesh)
        assert hops == 1
        assert len(flows) == 4
        assert all(flow.hops == 1 for flow in flows)

    def test_linear_group_pays_wraparound(self, mesh):
        task = CommTask(CollectiveType.ALL_REDUCE, group_size=8,
                        bytes_per_device=100, dimension="dp")
        flows, hops = expand_task(task, [[0, 1, 2, 3, 4, 5, 6, 7]], mesh)
        assert hops == 7

    def test_reorder_groups_false_keeps_given_order(self, mesh):
        task = CommTask(CollectiveType.ALL_REDUCE, group_size=4,
                        bytes_per_device=100)
        scrambled = [[9, 0, 8, 1]]
        _, hops_reordered = expand_task(task, scrambled, mesh, reorder_groups=True)
        _, hops_raw = expand_task(task, scrambled, mesh, reorder_groups=False)
        assert hops_reordered == 1
        assert hops_raw >= hops_reordered

    def test_stream_task_generates_bidirectional_chain_flows(self, mesh):
        task = CommTask(CollectiveType.STREAM, group_size=4,
                        bytes_per_device=50, overlappable=True, dimension="tatp")
        flows, hops = expand_task(task, [[0, 1, 2, 3]], mesh)
        assert hops == 1
        # 3 chain pairs x 2 directions.
        assert len(flows) == 6
        assert all(not flow.critical for flow in flows)

    def test_p2p_task_single_flow(self, mesh):
        task = CommTask(CollectiveType.P2P, group_size=2, bytes_per_device=10)
        flows, hops = expand_task(task, [[0, 16]], mesh)
        assert len(flows) == 1
        assert hops == 2

    def test_trivial_task_produces_nothing(self, mesh):
        task = CommTask(CollectiveType.ALL_REDUCE, group_size=1, bytes_per_device=10)
        flows, hops = expand_task(task, [[0]], mesh)
        assert flows == [] and hops == 0

    def test_multiple_groups_expand_independently(self, mesh):
        task = CommTask(CollectiveType.ALL_GATHER, group_size=4,
                        bytes_per_device=10)
        flows, _ = expand_task(task, [[0, 1, 8, 9], [2, 3, 10, 11]], mesh)
        assert len(flows) == 8


class TestLinkLoadMap:
    def test_loads_accumulate_over_flows(self, mesh):
        flows = [route_flow(mesh, 0, 2, 100), route_flow(mesh, 1, 2, 50)]
        loads = LinkLoadMap.from_flows(flows)
        assert loads.load_of(mesh.link(1, 2)) == pytest.approx(150)
        assert loads.max_load() == pytest.approx(150)
        assert loads.max_load_link() == (1, 2)

    def test_critical_only_filter(self, mesh):
        critical = route_flow(mesh, 0, 1, 100, critical=True)
        overlap = route_flow(mesh, 0, 1, 100, critical=False)
        loads = LinkLoadMap.from_flows([critical, overlap], critical_only=True)
        assert loads.max_load() == pytest.approx(100)

    def test_empty_flows(self):
        loads = LinkLoadMap.from_flows([])
        assert loads.max_load() == 0.0
        assert loads.max_load_link() is None
        assert loads.imbalance() == 1.0

    def test_imbalance_detects_hot_links(self, mesh):
        balanced = LinkLoadMap.from_flows(
            [route_flow(mesh, 0, 1, 100), route_flow(mesh, 2, 3, 100)])
        skewed = LinkLoadMap.from_flows(
            [route_flow(mesh, 0, 1, 100), route_flow(mesh, 0, 1, 100)])
        assert balanced.imbalance() == pytest.approx(1.0)
        assert skewed.imbalance() == pytest.approx(1.0)
        mixed = LinkLoadMap.from_flows(
            [route_flow(mesh, 0, 1, 300), route_flow(mesh, 2, 3, 100)])
        assert mixed.imbalance() > 1.0

    def test_utilization_bounded_by_one(self, mesh):
        loads = LinkLoadMap.from_flows([route_flow(mesh, 0, 1, 1e15)])
        assert loads.utilization(mesh, 1.0, 1e12) == 1.0
        assert loads.utilization(mesh, 0.0, 1e12) == 0.0

    def test_flows_through_finds_hot_flows(self, mesh):
        flows = [route_flow(mesh, 0, 2, 100), route_flow(mesh, 8, 9, 100)]
        hot = flows_through(flows, (0, 1))
        assert len(hot) == 1
        assert hot[0].src == 0

    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)),
                    min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_total_bytes_equals_sum_of_bytes_times_hops(self, pairs):
        mesh = MeshTopology(4, 8)
        flows = [route_flow(mesh, a, b, 10.0) for a, b in pairs]
        loads = LinkLoadMap.from_flows(flows)
        expected = sum(10.0 * mesh.hop_distance(a, b) for a, b in pairs)
        assert loads.total_bytes() == pytest.approx(expected)
