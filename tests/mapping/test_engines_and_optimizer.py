"""Tests for the mapping engines (SMap/GMap/TCME) and the traffic optimizer."""

import pytest

from repro.hardware.topology import MeshTopology
from repro.mapping.engines import (
    GMapEngine,
    MappingResult,
    SMapEngine,
    TCMEEngine,
    get_engine,
    snake_order,
)
from repro.mapping.optimizer import TrafficOptimizer
from repro.mapping.routing import route_flow
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model


@pytest.fixture(scope="module")
def tatp_plan(gpt3_6b):
    return analyze_model(gpt3_6b, ParallelSpec(dp=4, tatp=8), num_devices=32)


@pytest.fixture(scope="module")
def hybrid_plan(gpt3_6b):
    return analyze_model(gpt3_6b, ParallelSpec(fsdp=4, tatp=8), num_devices=32)


class TestSnakeOrder:
    def test_consecutive_dies_are_adjacent(self, wafer):
        ordering = snake_order(wafer.topology)
        assert sorted(ordering) == list(range(32))
        for a, b in zip(ordering, ordering[1:]):
            assert wafer.topology.are_adjacent(a, b)

    def test_skips_failed_dies(self):
        from repro.hardware.faults import FaultModel
        from repro.hardware.wafer import WaferScaleChip
        chip = WaferScaleChip(fault_model=FaultModel(dead_dies={0}))
        ordering = snake_order(chip.topology)
        assert 0 not in ordering
        assert len(ordering) == 31


class TestEngines:
    def test_get_engine_by_name(self):
        assert isinstance(get_engine("smap"), SMapEngine)
        assert isinstance(get_engine("GMAP"), GMapEngine)
        assert isinstance(get_engine("tcme"), TCMEEngine)
        with pytest.raises(KeyError):
            get_engine("unknown")

    @pytest.mark.parametrize("engine_name", ["smap", "gmap", "tcme"])
    def test_mapping_produces_complete_result(self, engine_name, tatp_plan, wafer):
        result = get_engine(engine_name).map(tatp_plan, wafer)
        assert isinstance(result, MappingResult)
        assert result.engine == engine_name
        assert len(result.dies) == 32
        assert len(result.task_routings) == len(tatp_plan.all_tasks)
        assert result.link_loads.total_bytes() >= 0

    def test_tcme_keeps_tatp_groups_contiguous(self, tatp_plan, wafer):
        result = TCMEEngine().map(tatp_plan, wafer)
        assert result.tatp_hop_factor == 1

    def test_tcme_max_load_not_worse_than_gmap(self, hybrid_plan, wafer):
        gmap = GMapEngine().map(hybrid_plan, wafer)
        tcme = TCMEEngine().map(hybrid_plan, wafer)
        assert tcme.max_link_load <= gmap.max_link_load * 1.001

    def test_smap_never_better_than_tcme_on_hop_factor(self, hybrid_plan, wafer):
        smap = SMapEngine().map(hybrid_plan, wafer)
        tcme = TCMEEngine().map(hybrid_plan, wafer)
        assert tcme.tatp_hop_factor <= smap.tatp_hop_factor

    def test_hop_factor_lookup_defaults_to_one(self, tatp_plan, wafer):
        from repro.parallelism.comm import CollectiveType, CommTask
        result = TCMEEngine().map(tatp_plan, wafer)
        unknown = CommTask(CollectiveType.P2P, 2, 1.0, label="not-there")
        assert result.hop_factor_for(unknown) == 1

    def test_groups_cover_every_dimension_in_spec(self, hybrid_plan, wafer):
        result = TCMEEngine().map(hybrid_plan, wafer)
        assert result.groups["fsdp"]
        assert result.groups["tatp"]
        assert result.groups["tp"] == []

    def test_optimization_report_attached_for_tcme_only(self, hybrid_plan, wafer):
        tcme = TCMEEngine().map(hybrid_plan, wafer)
        smap = SMapEngine().map(hybrid_plan, wafer)
        assert tcme.optimization is not None
        assert smap.optimization is None

    def test_contention_imbalance_at_least_one(self, hybrid_plan, wafer):
        result = GMapEngine().map(hybrid_plan, wafer)
        assert result.contention_imbalance >= 1.0

    def test_smaller_spec_uses_subset_of_dies(self, gpt3_6b, wafer):
        plan = analyze_model(gpt3_6b, ParallelSpec(dp=2, tatp=4), num_devices=8)
        result = TCMEEngine().map(plan, wafer)
        assert len(result.dies) == 8


class TestTrafficOptimizer:
    def test_reroutes_reduce_max_load(self):
        mesh = MeshTopology(4, 4)
        # Two multi-hop flows that share the 0->1 link under XY routing.
        flows = [
            route_flow(mesh, 0, 2, 100.0, task_label="a"),
            route_flow(mesh, 0, 3, 100.0, task_label="b"),
        ]
        optimizer = TrafficOptimizer(mesh)
        optimized, report = optimizer.optimize(flows)
        assert report.final_max_load <= report.initial_max_load
        assert len(optimized) == 2

    def test_single_hop_flows_cannot_be_rerouted(self):
        mesh = MeshTopology(4, 4)
        flows = [route_flow(mesh, 0, 1, 100.0), route_flow(mesh, 0, 1, 100.0)]
        optimizer = TrafficOptimizer(mesh)
        _, report = optimizer.optimize(flows)
        assert report.reroutes == 0
        assert report.final_max_load == pytest.approx(report.initial_max_load)

    def test_duplicate_flows_are_merged(self):
        mesh = MeshTopology(4, 4)
        flow = route_flow(mesh, 0, 2, 100.0, task_label="bcast")
        optimized, report = TrafficOptimizer(mesh).optimize([flow, flow])
        assert report.merges == 1
        assert len(optimized) == 1

    def test_empty_input(self):
        mesh = MeshTopology(2, 2)
        optimized, report = TrafficOptimizer(mesh).optimize([])
        assert optimized == []
        assert report.improvement == 0.0

    def test_invalid_iteration_count(self):
        with pytest.raises(ValueError):
            TrafficOptimizer(MeshTopology(2, 2), max_iterations=0)

    def test_improvement_metric(self):
        mesh = MeshTopology(4, 4)
        flows = [
            route_flow(mesh, 0, 2, 100.0, task_label="a"),
            route_flow(mesh, 4, 6, 100.0, task_label="b"),
            route_flow(mesh, 0, 6, 100.0, task_label="c"),
        ]
        _, report = TrafficOptimizer(mesh).optimize(flows)
        assert 0.0 <= report.improvement <= 1.0
