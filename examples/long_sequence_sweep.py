"""Explore mixed-parallelism configurations for long-sequence training.

Run with ``python examples/long_sequence_sweep.py``. The script reproduces the
Fig. 17(b) scenario: Llama2-7B with 16k-token sequences on a 32-die wafer,
sweeping every (DP, TP, SP, TATP) combination under the traffic-conscious
mapping engine and printing the ten best configurations.
"""

from repro.experiments.fig17_parallel_configs import run_config_sweep


def main() -> None:
    sweep = run_config_sweep(model_name="llama2-7b", seq_length=16384,
                             batch_size=32)
    normalized = sweep.normalized()

    print("Llama2-7B, sequence length 16k, batch 32 — top configurations")
    print(f"{'(DP,TP,SP,TATP)':<16} {'norm. throughput':>16} {'memory (GB)':>12} "
          f"{'OOM':>4}")
    ranked = sorted(sweep.configs, key=lambda c: -c.throughput)[:10]
    for config in ranked:
        print(f"{config.label:<16} {normalized[config.label]:16.2f} "
              f"{config.memory_gb:12.1f} {'yes' if config.oom else 'no':>4}")

    best = sweep.best()
    reference = sweep.best_without_tatp()
    print(f"\nBest configuration: {best.label} "
          f"({best.throughput / reference.throughput:.2f}x the best "
          f"TATP-free configuration {reference.label})")


if __name__ == "__main__":
    main()
