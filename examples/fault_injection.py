"""Inject link and core faults and watch the framework adapt (Fig. 20).

Run with ``python examples/fault_injection.py``. The script trains Llama2-7B
under a fixed (DP=4, TATP=8) configuration while sweeping link-fault and
core-fault rates, showing the throughput cliff for link faults and the graceful
degradation (with re-balancing) for core faults.
"""

from repro.core.fault_tolerance import evaluate_with_faults
from repro.hardware.faults import FaultModel
from repro.parallelism.spec import ParallelSpec
from repro.workloads.models import get_model


def main() -> None:
    model = get_model("llama2-7b")
    spec = ParallelSpec(dp=4, tatp=8)
    print(f"Model {model.name}, configuration {spec.label()}\n")

    print("Link faults (throughput relative to a healthy wafer):")
    for rate in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        faults = FaultModel.sample_link_faults(4, 8, rate, seed=7)
        result = evaluate_with_faults(model, spec, faults)
        print(f"  {rate:4.0%} of links failed -> {result.relative_throughput:5.2f}")

    print("\nCore faults (with adaptive re-partitioning):")
    for rate in (0.0, 0.05, 0.10, 0.15, 0.20, 0.25):
        faults = FaultModel.sample_core_faults(32, rate, seed=7)
        result = evaluate_with_faults(model, spec, faults)
        print(f"  {rate:4.0%} of cores failed -> {result.relative_throughput:5.2f}")


if __name__ == "__main__":
    main()
