"""Quickstart: optimise one model on the default wafer and print the report.

Run with ``python examples/quickstart.py``. The script builds the Table I
4x8-die wafer, asks the TEMP framework for the best hybrid configuration of
GPT-3 6.7B, and prints the chosen (DP, TP, SP, TATP) degrees together with the
simulated step time, memory footprint, and throughput.
"""

from repro import TEMP, WaferScaleChip, get_model


def main() -> None:
    wafer = WaferScaleChip()
    print("Wafer:", wafer.describe())

    model = get_model("gpt3-6.7b")
    framework = TEMP(wafer=wafer)
    result = framework.optimize(model)
    report = result.report

    print(f"\nBest TEMP configuration for {model.name}: {result.best_spec.label()}")
    print(f"  step time        : {report.step_time * 1e3:.1f} ms")
    print(f"  throughput       : {report.throughput:,.0f} tokens/s")
    print(f"  peak memory/die  : {report.memory.total / 2**30:.1f} GB "
          f"(capacity {wafer.config.die.hbm.capacity / 2**30:.0f} GB)")
    print(f"  compute / comm   : {report.compute_time * 1e3:.1f} ms / "
          f"{report.total_comm_time * 1e3:.1f} ms")
    print(f"  power            : {report.power.total / 1e3:.1f} kW "
          f"({report.power_efficiency:.1f} tokens/s/W)")


if __name__ == "__main__":
    main()
