"""Quickstart: optimise one model on the default wafer and print the report.

Run with ``python examples/quickstart.py``. The script builds a Scenario for
GPT-3 6.7B on the Table I 4x8-die wafer, asks the plan service for the best
hybrid configuration, and prints the chosen (DP, TP, SP, TATP) degrees
together with the simulated step time, memory footprint, and throughput.

The same request works over JSON from the command line::

    python -m repro plan '{"schema_version": 1,
                           "workload": {"model": "gpt3-6.7b"}}'
"""

from repro import PlanService, Scenario, SolverSpec, WaferScaleChip, WorkloadSpec


def main() -> None:
    wafer = WaferScaleChip()
    print("Wafer:", wafer.describe())

    scenario = Scenario(
        workload=WorkloadSpec(model="gpt3-6.7b"),
        solver=SolverSpec.for_framework(),  # TEMP: TATP space + TCME mapping
    )
    result = PlanService().evaluate(scenario)

    print(f"\nBest TEMP configuration for {result.model}: {result.spec}")
    print(f"  step time        : {result.step_time * 1e3:.1f} ms")
    print(f"  throughput       : {result.throughput:,.0f} tokens/s")
    print(f"  peak memory/die  : {result.memory_gb:.1f} GB "
          f"(capacity {wafer.config.die.hbm.capacity / 2**30:.0f} GB)")
    print(f"  compute / comm   : {result.compute_time * 1e3:.1f} ms / "
          f"{result.comm_time * 1e3:.1f} ms")
    print(f"  power            : {result.total_watts / 1e3:.1f} kW "
          f"({result.power_efficiency:.1f} tokens/s/W)")


if __name__ == "__main__":
    main()
