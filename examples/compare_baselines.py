"""Compare TEMP against the six baselines of the paper on one model.

Run with ``python examples/compare_baselines.py [model-name]``. This is the
single-model version of Fig. 13: every (partitioning scheme x mapping engine)
baseline is evaluated on its best configuration and printed next to TEMP.
Each system is one :class:`repro.Scenario`, evaluated through one shared
:class:`repro.PlanService` so all seven searches reuse the same memoised
execution plans.
"""

import sys

from repro import PlanService, get_model
from repro.experiments.fig13_overall import SYSTEMS, scenario_for_system


def main(model_name: str = "llama3-70b") -> None:
    model = get_model(model_name)
    service = PlanService()

    print(f"Model: {model.name} ({model.num_parameters / 1e9:.1f}B parameters)")
    print(f"{'system':<11} {'configuration':<34} {'OOM':<4} {'step(s)':>8} "
          f"{'mem(GB)':>8} {'tokens/s':>10}")
    rows = [(system,
             service.evaluate(scenario_for_system(model_name, system)))
            for system in SYSTEMS]

    best_time = min(r.step_time for _, r in rows if not r.oom)
    for label, result in rows:
        marker = " <- best" if (not result.oom
                                and result.step_time == best_time) else ""
        print(f"{label:<11} {result.spec or '-':<34} "
              f"{'yes' if result.oom else 'no':<4} {result.step_time:8.3f} "
              f"{result.memory_gb:8.1f} {result.throughput:10.0f}"
              f"{marker}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama3-70b")
