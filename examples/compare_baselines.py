"""Compare TEMP against the six baselines of the paper on one model.

Run with ``python examples/compare_baselines.py [model-name]``. This is the
single-model version of Fig. 13: every (partitioning scheme x mapping engine)
baseline is evaluated on its best configuration and printed next to TEMP.
"""

import sys

from repro import TEMP, WaferScaleChip, get_model
from repro.core.framework import evaluate_baseline
from repro.parallelism.baselines import BaselineScheme


def main(model_name: str = "llama3-70b") -> None:
    wafer = WaferScaleChip()
    model = get_model(model_name)
    systems = [
        (BaselineScheme.MEGATRON1, "smap", "Mega+SMap"),
        (BaselineScheme.MEGATRON1, "gmap", "Mega+GMap"),
        (BaselineScheme.MESP, "smap", "MeSP+SMap"),
        (BaselineScheme.MESP, "gmap", "MeSP+GMap"),
        (BaselineScheme.FSDP, "smap", "FSDP+SMap"),
        (BaselineScheme.FSDP, "gmap", "FSDP+GMap"),
    ]

    print(f"Model: {model.name} ({model.num_parameters / 1e9:.1f}B parameters)")
    print(f"{'system':<11} {'configuration':<34} {'OOM':<4} {'step(s)':>8} "
          f"{'mem(GB)':>8} {'tokens/s':>10}")
    rows = []
    for scheme, engine, label in systems:
        result = evaluate_baseline(scheme, engine, model, wafer=wafer)
        rows.append((label, result))
    rows.append(("TEMP", TEMP(wafer=wafer).optimize(model)))

    best_time = min(r.report.step_time for _, r in rows if not r.oom)
    for label, result in rows:
        report = result.report
        marker = " <- best" if (not result.oom
                                and report.step_time == best_time) else ""
        print(f"{label:<11} {result.best_spec.label():<34} "
              f"{'yes' if result.oom else 'no':<4} {report.step_time:8.3f} "
              f"{report.memory.total / 2**30:8.1f} {report.throughput:10.0f}"
              f"{marker}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama3-70b")
