"""Traffic-conscious communication optimizer (Fig. 11).

The optimizer takes the routed flows of every parallel group, finds the most
congested link, and iteratively relieves it by (a) merging duplicate flows that
carry the same data over the same link into a single multicast-style flow, and
(b) rerouting flows that cross the hot link onto detour paths over idle links.
It terminates when the maximum link load stops improving or an iteration limit
is reached — the five phases of the paper:

1. communication-pattern analysis & path initialisation (done by the caller),
2. bottleneck identification & load recording,
3. congested-path identification & iterative optimisation,
4. path merging & routing optimisation,
5. global update & termination check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.topology import Link, MeshTopology
from repro.mapping.contention import LinkLoadMap, flows_through
from repro.mapping.routing import Flow

#: Default cap on optimisation iterations (the paper's MAX_ITER).
DEFAULT_MAX_ITERATIONS = 32


@dataclass
class OptimizationReport:
    """Summary of one optimizer run."""

    initial_max_load: float
    final_max_load: float
    iterations: int
    reroutes: int
    merges: int

    @property
    def improvement(self) -> float:
        """Relative reduction of the bottleneck load (0.0 when unchanged)."""
        if self.initial_max_load <= 0:
            return 0.0
        return 1.0 - self.final_max_load / self.initial_max_load


class TrafficOptimizer:
    """Iterative max-link-load minimiser used by TCME."""

    def __init__(
        self,
        topology: MeshTopology,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.topology = topology
        self.max_iterations = max_iterations

    def optimize(self, flows: Sequence[Flow]) -> Tuple[List[Flow], OptimizationReport]:
        """Optimize routing of ``flows`` and return (new flows, report).

        The input flows are not modified; rerouted copies replace the originals
        in the returned list.
        """
        working = list(flows)
        working = self._merge_duplicates(working)
        merges = len(flows) - len(working)

        load_map = LinkLoadMap.from_flows(working)
        initial_max = load_map.max_load()
        current_max = initial_max
        reroutes = 0
        iterations = 0

        for _ in range(self.max_iterations):
            hot_link = load_map.max_load_link()
            if hot_link is None or current_max <= 0:
                break
            iterations += 1
            improved = False
            hot_flows = sorted(
                flows_through(working, hot_link),
                key=lambda flow: flow.total_bytes,
                reverse=True,
            )
            for flow in hot_flows:
                candidate = self._reroute_candidate(flow, hot_link, load_map)
                if candidate is None:
                    continue
                new_flows = [candidate if f is flow else f for f in working]
                new_map = LinkLoadMap.from_flows(new_flows)
                if new_map.max_load() < current_max - 1e-9:
                    working = new_flows
                    load_map = new_map
                    current_max = new_map.max_load()
                    reroutes += 1
                    improved = True
                    break
            if not improved:
                break

        report = OptimizationReport(
            initial_max_load=initial_max,
            final_max_load=current_max,
            iterations=iterations,
            reroutes=reroutes,
            merges=merges,
        )
        return working, report

    # Phase 4a: merge duplicate flows ------------------------------------------------

    @staticmethod
    def _merge_duplicates(flows: Sequence[Flow]) -> List[Flow]:
        """Merge flows that carry the same task's data over the same path.

        Two flows of the same task between the same endpoints carry the same
        payload (e.g. a broadcast reaching two members through a shared
        prefix), so sending it once suffices: counts are combined by taking
        the maximum rather than the sum.
        """
        merged: Dict[Tuple, Flow] = {}
        for flow in flows:
            key = (flow.task_label, flow.src, flow.dst, flow.num_bytes,
                   flow.critical)
            existing = merged.get(key)
            if existing is None:
                merged[key] = flow
            else:
                combined = Flow(
                    src=flow.src,
                    dst=flow.dst,
                    num_bytes=flow.num_bytes,
                    count=max(existing.count, flow.count),
                    task_label=flow.task_label,
                    dimension=flow.dimension,
                    path=list(existing.path),
                    critical=flow.critical or existing.critical,
                )
                merged[key] = combined
        return list(merged.values())

    # Phase 4b: congestion-aware rerouting ---------------------------------------------

    def _reroute_candidate(
        self,
        flow: Flow,
        hot_link: Tuple[int, int],
        load_map: LinkLoadMap,
    ) -> Optional[Flow]:
        """Find a detour for ``flow`` that avoids ``hot_link``.

        Tries the alternative dimension-ordered route first (YX instead of
        XY), then a BFS path that explicitly avoids the hot link. Returns
        ``None`` when no useful detour exists (e.g. the flow is a single-hop
        neighbour transfer).
        """
        if flow.hops <= 1:
            return None
        avoid = [Link(*hot_link)]
        alternatives: List[List[Link]] = []
        try:
            yx = self.topology.yx_route(flow.src, flow.dst)
            if not any((link.src, link.dst) == hot_link for link in yx):
                alternatives.append(yx)
        except KeyError:
            pass
        detour = self.topology.shortest_path(flow.src, flow.dst, avoid_links=avoid)
        if detour is not None:
            alternatives.append(detour)
        best: Optional[List[Link]] = None
        best_cost: Optional[float] = None
        for path in alternatives:
            if not path:
                continue
            if path == flow.path:
                continue
            cost = max(
                load_map.loads.get((link.src, link.dst), 0.0) for link in path
            )
            # Mild penalty for extra hops so detours do not balloon latency.
            cost += (len(path) - flow.hops) * 1e3
            if best_cost is None or cost < best_cost:
                best, best_cost = path, cost
        if best is None:
            return None
        return flow.rerouted(best)
