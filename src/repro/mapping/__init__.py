"""Mapping engines: placing parallel groups onto dies and routing their traffic.

* :mod:`repro.mapping.routing` — flow objects and path computation on the mesh.
* :mod:`repro.mapping.collectives` — expanding a communication task over a
  concrete die group into link-level flows (ring collectives, P2P chains,
  TATP neighbour streams).
* :mod:`repro.mapping.contention` — link-load accounting and bottleneck
  identification.
* :mod:`repro.mapping.engines` — the three mapping engines of the evaluation:
  SMap (fixed-order sequential mapper), GMap (Gemini-style mapper with
  variable ordering but no contention awareness), and TCME (the paper's
  traffic-conscious mapping engine with the five-phase communication
  optimizer).
* :mod:`repro.mapping.optimizer` — the five-phase traffic-conscious
  communication optimizer used by TCME (Fig. 11).
"""

from repro.mapping.routing import Flow
from repro.mapping.contention import LinkLoadMap
from repro.mapping.engines import (
    GMapEngine,
    MappingEngine,
    MappingResult,
    ScatteredEngine,
    SMapEngine,
    TCMEEngine,
    TaskRouting,
    get_engine,
)
from repro.mapping.optimizer import TrafficOptimizer, OptimizationReport

__all__ = [
    "Flow",
    "LinkLoadMap",
    "GMapEngine",
    "MappingEngine",
    "MappingResult",
    "ScatteredEngine",
    "SMapEngine",
    "TCMEEngine",
    "TaskRouting",
    "get_engine",
    "TrafficOptimizer",
    "OptimizationReport",
]
