"""Expansion of communication tasks into link-level flows.

Every :class:`~repro.parallelism.comm.CommTask` is expanded over each of its
concrete die groups:

* **ring collectives** (all-reduce, all-gather, reduce-scatter, broadcast) —
  flows between consecutive members of the group's ring ordering. When the
  group admits a contiguous physical ring (see
  :meth:`Topology.contiguous_ring`), every flow is one hop; otherwise the
  flows follow multi-hop routes and the hop factor records the tail-latency
  penalty.

Hop factors are measured with :meth:`Topology.hop_cost` — the fabric's
weighted hop model — so a chain step crossing, say, a vertical TSV or a
chiplet backbone wire is charged its latency factor. On the default mesh
``hop_cost`` equals the Manhattan hop distance, keeping the seed behaviour
bit-identical.
* **P2P** — a single flow between the two members.
* **TATP streams** — bidirectional neighbour flows along the group's chain
  ordering (Algorithm 1 only ever sends one hop along the chain).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.hardware.topologies import Topology
from repro.mapping.routing import Flow, route_flow
from repro.parallelism.comm import CollectiveType, CommTask


def order_group_for_ring(
    topology: Topology, group: Sequence[int]
) -> Tuple[List[int], bool]:
    """Order a die group for ring communication.

    Returns the ordering plus a flag saying whether it is a contiguous
    physical ring (every consecutive pair, including the wrap-around, is one
    hop apart). Non-ring groups fall back to a nearest-neighbour chain
    ordering that keeps logical neighbours as physically close as possible.
    """
    members = list(group)
    if len(members) <= 1:
        return members, True
    tables = topology.route_tables
    key = tuple(members) if tables is not None else None
    if tables is not None:
        cached = tables.rings.get(key)
        if cached is not None:
            tables.hits += 1
            return list(cached[0]), cached[1]
    ring = topology.contiguous_ring(members)
    ordering, is_ring = ((ring, True) if ring is not None
                         else (_greedy_chain(topology, members), False))
    if tables is not None:
        tables.misses += 1
        tables.rings[key] = (tuple(ordering), is_ring)
    return ordering, is_ring


def _greedy_chain(topology: Topology, members: Sequence[int]) -> List[int]:
    """Greedy nearest-neighbour ordering of a die group."""
    remaining = list(members)
    chain = [remaining.pop(0)]
    while remaining:
        last = chain[-1]
        nearest = min(remaining, key=lambda die: topology.hop_cost(last, die))
        remaining.remove(nearest)
        chain.append(nearest)
    return chain


def ring_hop_factor(
    topology: Topology, ordering: Sequence[int], closed: bool
) -> int:
    """Worst weighted hop cost between logically adjacent members of an
    ordering (see :meth:`Topology.hop_cost`)."""
    if len(ordering) <= 1:
        return 0
    tables = topology.route_tables
    key = (tuple(ordering), closed) if tables is not None else None
    if tables is not None:
        cached = tables.ring_hops.get(key)
        if cached is not None:
            tables.hits += 1
            return cached
    pairs = list(zip(ordering, list(ordering[1:])))
    if closed:
        pairs.append((ordering[-1], ordering[0]))
    worst = max(topology.hop_cost(a, b) for a, b in pairs)
    if tables is not None:
        tables.misses += 1
        tables.ring_hops[key] = worst
    return worst


def expand_task(
    task: CommTask,
    groups: Sequence[Sequence[int]],
    topology: Topology,
    prefer_yx: bool = False,
    reorder_groups: bool = True,
) -> Tuple[List[Flow], int]:
    """Expand ``task`` over its die groups into routed flows.

    Args:
        task: the communication task.
        groups: the concrete die groups realising the task (one entry per
            parallel group of the task's dimension).
        topology: the wafer fabric used for routing.
        prefer_yx: route with YX instead of XY dimension order (used by the
            optimizer to spread traffic).
        reorder_groups: whether to reorder each group into a physical ring /
            nearest-neighbour chain before expanding (topology-aware mappers
            do; the naive SMap keeps the logical order it was given).

    Returns:
        ``(flows, hop_factor)`` where ``hop_factor`` is the worst physical hop
        distance any logical step of the task incurs across all groups (1 for
        perfectly contiguous mappings; >1 signals tail latency).
    """
    if task.is_trivial:
        return [], 0
    flows: List[Flow] = []
    worst_hop = 0
    for group in groups:
        members = [die for die in group]
        if len(members) <= 1:
            continue
        if task.kind is CollectiveType.P2P:
            group_flows, hops = _expand_p2p(task, members, topology, prefer_yx)
        elif task.kind is CollectiveType.STREAM:
            group_flows, hops = _expand_stream(
                task, members, topology, prefer_yx, reorder_groups)
        else:
            group_flows, hops = _expand_ring_collective(
                task, members, topology, prefer_yx, reorder_groups)
        flows.extend(group_flows)
        worst_hop = max(worst_hop, hops)
    return flows, worst_hop


def _expand_ring_collective(
    task: CommTask,
    members: Sequence[int],
    topology: Topology,
    prefer_yx: bool,
    reorder_groups: bool = True,
) -> Tuple[List[Flow], int]:
    if reorder_groups:
        ordering, is_ring = order_group_for_ring(topology, members)
    else:
        ordering, is_ring = list(members), False
    hop_factor = ring_hop_factor(topology, ordering, closed=True)
    flows: List[Flow] = []
    pairs = list(zip(ordering, list(ordering[1:]) + [ordering[0]]))
    for src, dst in pairs:
        flows.append(route_flow(
            topology, src, dst,
            num_bytes=task.bytes_per_device,
            count=task.count,
            task_label=task.label,
            dimension=task.dimension,
            critical=not task.overlappable,
            prefer_yx=prefer_yx,
        ))
    return flows, max(hop_factor, 1)


def _expand_p2p(
    task: CommTask,
    members: Sequence[int],
    topology: Topology,
    prefer_yx: bool,
) -> Tuple[List[Flow], int]:
    flows: List[Flow] = []
    worst = 1
    for src, dst in zip(members, members[1:]):
        flow = route_flow(
            topology, src, dst,
            num_bytes=task.bytes_per_device,
            count=task.count,
            task_label=task.label,
            dimension=task.dimension,
            critical=not task.overlappable,
            prefer_yx=prefer_yx,
        )
        flows.append(flow)
        worst = max(worst, max(flow.hops, 1))
    return flows, worst


def _expand_stream(
    task: CommTask,
    members: Sequence[int],
    topology: Topology,
    prefer_yx: bool,
    reorder_groups: bool = True,
) -> Tuple[List[Flow], int]:
    """TATP streaming: bidirectional flows between chain neighbours."""
    if reorder_groups:
        ordering, _ = order_group_for_ring(topology, members)
    else:
        ordering = list(members)
    # The bidirectional orchestration only needs a chain, not a closed ring.
    chain_pairs = list(zip(ordering, ordering[1:]))
    hop_factor = 1
    if chain_pairs:
        hop_factor = ring_hop_factor(topology, ordering, closed=False)
    flows: List[Flow] = []
    for src, dst in chain_pairs:
        for a, b in ((src, dst), (dst, src)):
            flows.append(route_flow(
                topology, a, b,
                num_bytes=task.bytes_per_device,
                count=task.count,
                task_label=task.label,
                dimension=task.dimension,
                critical=not task.overlappable,
                prefer_yx=prefer_yx,
            ))
    return flows, max(hop_factor, 1)
