"""Link-level flows and their routes on the wafer fabric.

A :class:`Flow` is the unit the contention analysis works with: "this many
bytes travel from die A to die B along this path, `count` times per training
step". Collective expansion (:mod:`repro.mapping.collectives`) produces flows;
the traffic-conscious optimizer may later reroute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hardware.topologies import Link, Topology


@dataclass
class Flow:
    """A routed point-to-point traffic component.

    Attributes:
        src: source die id.
        dst: destination die id.
        num_bytes: bytes carried per execution.
        count: executions per training step.
        task_label: label of the communication task this flow belongs to.
        dimension: parallelism dimension that generated the traffic.
        path: the directed links the flow traverses (empty when src == dst).
        critical: whether the parent task sits on the critical path (False for
            overlappable traffic such as TATP streams).
    """

    src: int
    dst: int
    num_bytes: float
    count: float = 1.0
    task_label: str = ""
    dimension: str = ""
    path: List[Link] = field(default_factory=list)
    critical: bool = True

    @property
    def total_bytes(self) -> float:
        """Bytes per step contributed by this flow."""
        return self.num_bytes * self.count

    @property
    def hops(self) -> int:
        """Number of links the flow traverses."""
        return len(self.path)

    def rerouted(self, path: List[Link]) -> "Flow":
        """Return a copy of the flow following a different path."""
        if path and (path[0].src != self.src or path[-1].dst != self.dst):
            raise ValueError(
                f"path endpoints {path[0].src}->{path[-1].dst} do not match "
                f"flow {self.src}->{self.dst}")
        clone = Flow(
            src=self.src,
            dst=self.dst,
            num_bytes=self.num_bytes,
            count=self.count,
            task_label=self.task_label,
            dimension=self.dimension,
            path=list(path),
            critical=self.critical,
        )
        return clone


def route_flow(
    topology: Topology,
    src: int,
    dst: int,
    num_bytes: float,
    count: float = 1.0,
    task_label: str = "",
    dimension: str = "",
    critical: bool = True,
    prefer_yx: bool = False,
) -> Flow:
    """Create a flow following the fabric's canonical (XY or YX) route.

    On mesh-like fabrics the canonical routes are dimension-ordered; other
    families route by deterministic BFS. Falls back to a BFS shortest path
    when the canonical route is blocked by failed links.
    """
    if src == dst:
        path: List[Link] = []
    else:
        tables = topology.route_tables
        cached = tables.paths.get((src, dst, prefer_yx)) \
            if tables is not None else None
        if cached is not None:
            tables.hits += 1
            path = list(cached)
        else:
            try:
                path = (topology.yx_route(src, dst) if prefer_yx
                        else topology.xy_route(src, dst))
            except KeyError:
                found = topology.shortest_path(src, dst)
                if found is None:
                    raise ValueError(
                        f"no route between die {src} and die {dst} "
                        "(too many failed links)") from None
                path = found
            if tables is not None:
                tables.misses += 1
                tables.paths[(src, dst, prefer_yx)] = tuple(path)
    return Flow(
        src=src,
        dst=dst,
        num_bytes=num_bytes,
        count=count,
        task_label=task_label,
        dimension=dimension,
        path=path,
        critical=critical,
    )
