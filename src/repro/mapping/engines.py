"""Mapping engines: SMap, GMap, and the paper's TCME.

A mapping engine takes an :class:`~repro.parallelism.strategies.ExecutionPlan`
and a :class:`~repro.hardware.wafer.WaferScaleChip` and decides

1. which die each logical rank occupies (group formation),
2. how each communication task's traffic is routed on the mesh,

producing a :class:`MappingResult` with routed flows, per-task hop factors,
and link-load statistics the simulator turns into time.

The three engines reproduce the evaluation's mapper axis:

* **SMap** — fixed dimension nesting order and naive row-major die ordering;
  no contention handling. Groups frequently end up as non-contiguous,
  "tetris-like" shapes, so TATP and ring collectives pay multi-hop penalties.
* **GMap** — Gemini-style: tries several dimension orderings and picks the
  cheapest by a simple traffic-distance estimate, over a row-major die
  ordering; still contention-agnostic.
* **TCME** — snake (boustrophedon) die ordering so consecutive ranks are
  always physically adjacent, traffic-aware ordering choice, and the
  five-phase :class:`~repro.mapping.optimizer.TrafficOptimizer` applied to the
  routed flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.topology import MeshTopology
from repro.hardware.wafer import WaferScaleChip
from repro.mapping.collectives import expand_task
from repro.mapping.contention import LinkLoadMap
from repro.mapping.optimizer import OptimizationReport, TrafficOptimizer
from repro.mapping.routing import Flow
from repro.parallelism.comm import CommTask
from repro.parallelism.representation import (
    DEFAULT_DIMENSION_ORDER,
    build_parallel_groups,
)
from repro.parallelism.strategies import ExecutionPlan


@dataclass
class TaskRouting:
    """Routing outcome of one communication task."""

    task: CommTask
    hop_factor: int
    flows: List[Flow] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        """Bytes per step injected by this task across all its flows."""
        return sum(flow.total_bytes for flow in self.flows)


@dataclass
class MappingResult:
    """Complete outcome of mapping a plan onto a wafer."""

    engine: str
    plan: ExecutionPlan
    dies: List[int]
    dimension_order: Tuple[str, ...]
    groups: Dict[str, List[List[int]]]
    task_routings: List[TaskRouting]
    flows: List[Flow]
    link_loads: LinkLoadMap
    critical_link_loads: LinkLoadMap
    optimization: Optional[OptimizationReport] = None

    def hop_factor_for(self, task: CommTask) -> int:
        """Worst physical hops per logical step of ``task`` (>= 1)."""
        for routing in self.task_routings:
            if routing.task is task or routing.task.label == task.label:
                return max(routing.hop_factor, 1)
        return 1

    @property
    def tatp_hop_factor(self) -> int:
        """Worst hop factor across TATP streaming tasks (1 when contiguous)."""
        factors = [
            routing.hop_factor for routing in self.task_routings
            if routing.task.dimension == "tatp"
        ]
        return max(factors) if factors else 1

    @property
    def max_link_load(self) -> float:
        """Bytes on the busiest link per training step."""
        return self.link_loads.max_load()

    @property
    def contention_imbalance(self) -> float:
        """Max-to-mean link load ratio (1.0 = perfectly balanced)."""
        return self.link_loads.imbalance()


class MappingEngine:
    """Base class of the three mapping engines."""

    #: Engine name used in reports ("smap", "gmap", "tcme").
    name: str = "base"

    #: Whether groups are reordered into physical rings / chains before
    #: routing; the naive SMap keeps the logical order it was handed.
    reorder_groups: bool = True

    def map(self, plan: ExecutionPlan, wafer: WaferScaleChip) -> MappingResult:
        """Map ``plan`` onto ``wafer`` and route its communication."""
        dies = self._die_ordering(wafer, plan)
        order = self._dimension_order(plan, wafer)
        result = self._map_with(plan, wafer, dies, order)
        flows, optimization = self._post_process(result.flows, wafer.topology)
        if flows is not result.flows:
            result = self._rebuild_with_flows(result, flows)
        result.optimization = optimization
        return result

    def _map_with(
        self,
        plan: ExecutionPlan,
        wafer: WaferScaleChip,
        dies: Sequence[int],
        order: Sequence[str],
    ) -> MappingResult:
        """Form groups over a concrete die ordering and route every task."""
        intra_spec = plan.spec.without_pipeline()
        stage_dies = list(dies)[: intra_spec.intra_stage_degree]
        groups = build_parallel_groups(intra_spec, stage_dies, order=order)
        task_routings, flows = self._route_tasks(plan, groups, wafer.topology)
        return MappingResult(
            engine=self.name,
            plan=plan,
            dies=stage_dies,
            dimension_order=tuple(order),
            groups=groups,
            task_routings=task_routings,
            flows=flows,
            link_loads=LinkLoadMap.from_flows(flows),
            critical_link_loads=LinkLoadMap.from_flows(flows, critical_only=True),
            optimization=None,
        )

    @staticmethod
    def _rebuild_with_flows(
        result: MappingResult, flows: List[Flow]
    ) -> MappingResult:
        """Return a copy of ``result`` with rewritten (e.g. rerouted) flows."""
        return MappingResult(
            engine=result.engine,
            plan=result.plan,
            dies=result.dies,
            dimension_order=result.dimension_order,
            groups=result.groups,
            task_routings=result.task_routings,
            flows=flows,
            link_loads=LinkLoadMap.from_flows(flows),
            critical_link_loads=LinkLoadMap.from_flows(flows, critical_only=True),
            optimization=result.optimization,
        )

    # Hooks the engines specialise ------------------------------------------------

    def _die_ordering(self, wafer: WaferScaleChip, plan: ExecutionPlan) -> List[int]:
        """Order in which logical ranks are laid onto dies."""
        return wafer.healthy_dies()

    def _dimension_order(
        self, plan: ExecutionPlan, wafer: WaferScaleChip
    ) -> Tuple[str, ...]:
        """Nesting order of parallel dimensions (outermost first)."""
        return DEFAULT_DIMENSION_ORDER

    def _post_process(
        self, flows: List[Flow], topology: MeshTopology
    ) -> Tuple[List[Flow], Optional[OptimizationReport]]:
        """Optionally rewrite the routed flows (TCME's optimizer)."""
        return flows, None

    # Shared helpers ----------------------------------------------------------------

    def _route_tasks(
        self,
        plan: ExecutionPlan,
        groups: Dict[str, List[List[int]]],
        topology: MeshTopology,
    ) -> Tuple[List[TaskRouting], List[Flow]]:
        routings: List[TaskRouting] = []
        all_flows: List[Flow] = []
        for task in plan.all_tasks:
            task_groups = self._groups_for_task(task, groups, plan)
            flows, hop_factor = expand_task(
                task, task_groups, topology,
                reorder_groups=self.reorder_groups)
            routings.append(TaskRouting(task=task, hop_factor=hop_factor,
                                        flows=flows))
            all_flows.extend(flows)
        return routings, all_flows

    @staticmethod
    def _groups_for_task(
        task: CommTask,
        groups: Dict[str, List[List[int]]],
        plan: ExecutionPlan,
    ) -> List[List[int]]:
        dimension = task.dimension
        if dimension in groups and groups[dimension]:
            return groups[dimension]
        if dimension == "pp":
            # Pipeline traffic crosses stage boundaries; on a single wafer the
            # stages are laid out contiguously, so model it as a chain across
            # the first die of each half of the mapping.
            dies = sorted({die for group_list in groups.values()
                           for group in group_list for die in group})
            if len(dies) >= 2:
                midpoint = len(dies) // 2
                return [[dies[0], dies[midpoint]]]
        return []

    @staticmethod
    def _estimate_traffic_by_dimension(plan: ExecutionPlan) -> Dict[str, float]:
        """Wire bytes per dimension, used to choose which dimension sits innermost."""
        traffic: Dict[str, float] = {}
        for task in plan.all_tasks:
            key = task.dimension or task.kind.value
            traffic[key] = traffic.get(key, 0.0) + task.bytes_per_device * task.count
        return traffic


class SMapEngine(MappingEngine):
    """Sequential mapper: fixed dimension order, row-major die ordering.

    SMap never adapts its strategy priority order to the workload, keeps the
    logical ordering of every group (no ring re-ordering), and performs no
    contention optimisation — the combination the paper identifies as its
    limitation.
    """

    name = "smap"
    reorder_groups = False

    def _dimension_order(
        self, plan: ExecutionPlan, wafer: WaferScaleChip
    ) -> Tuple[str, ...]:
        return DEFAULT_DIMENSION_ORDER


class ScatteredEngine(SMapEngine):
    """A mapper that deliberately scatters group members across the wafer.

    Logical neighbours land on dies that are far apart (stride-based
    interleaving), forcing every TATP relay and ring step onto multi-hop
    paths: the "logical ring" case of Fig. 7(c). Useful only as an adversary
    — it exists so the ring-utilisation study can request the scattered
    mapping by name through the Scenario API.
    """

    name = "scattered"

    def _die_ordering(self, wafer, plan):  # noqa: D102 - see class docstring
        dies = wafer.healthy_dies()
        half = (len(dies) + 1) // 2
        interleaved: List[int] = []
        for index in range(half):
            interleaved.append(dies[index])
            if index + half < len(dies):
                interleaved.append(dies[index + half])
        return interleaved


class GMapEngine(MappingEngine):
    """Gemini-style mapper: adaptive ordering, contention-agnostic routing."""

    name = "gmap"

    def _dimension_order(
        self, plan: ExecutionPlan, wafer: WaferScaleChip
    ) -> Tuple[str, ...]:
        traffic = self._estimate_traffic_by_dimension(plan)
        # Heaviest-traffic dimension innermost so its groups are physically
        # closest; dimensions without traffic keep their default position.
        ordered = sorted(
            DEFAULT_DIMENSION_ORDER,
            key=lambda name: traffic.get(name, 0.0),
        )
        return tuple(ordered)


class TCMEEngine(MappingEngine):
    """The paper's traffic-conscious mapping engine.

    TCME explores several spatial layouts (row-major, snake, and tiled die
    orderings crossed with traffic-sorted dimension nestings), keeps the one
    with the lowest tail-latency hop factor and bottleneck link load, and then
    runs the five-phase traffic-conscious optimizer on the winner's flows.
    """

    name = "tcme"

    def __init__(self, max_iterations: int = 32) -> None:
        self.max_iterations = max_iterations

    def map(self, plan: ExecutionPlan, wafer: WaferScaleChip) -> MappingResult:
        candidates = self._candidate_layouts(plan, wafer)
        best: Optional[MappingResult] = None
        best_key = None
        for dies, order in candidates:
            result = self._map_with(plan, wafer, dies, order)
            key = (result.tatp_hop_factor, result.max_link_load,
                   result.contention_imbalance)
            if best_key is None or key < best_key:
                best, best_key = result, key
        assert best is not None  # at least one candidate layout always exists
        optimizer = TrafficOptimizer(wafer.topology,
                                     max_iterations=self.max_iterations)
        flows, report = optimizer.optimize(best.flows)
        best = self._rebuild_with_flows(best, flows)
        best.optimization = report
        return best

    def _candidate_layouts(
        self, plan: ExecutionPlan, wafer: WaferScaleChip
    ) -> List[Tuple[List[int], Tuple[str, ...]]]:
        traffic = self._estimate_traffic_by_dimension(plan)
        traffic_sorted = tuple(sorted(
            DEFAULT_DIMENSION_ORDER, key=lambda name: traffic.get(name, 0.0)))
        dimension_orders = [DEFAULT_DIMENSION_ORDER, traffic_sorted]

        row_major = wafer.healthy_dies()
        snake = snake_order(wafer.topology)
        die_orders = [row_major, snake]
        inner_degree = max(
            plan.spec.tatp, plan.spec.tp, plan.spec.fsdp, plan.spec.sp,
            plan.spec.cp)
        if inner_degree > 1 and len(row_major) % inner_degree == 0:
            try:
                tiles = wafer.topology.partition_into_groups(inner_degree)
                tiled = [die for tile in tiles for die in tile]
                if len(tiled) == len(row_major):
                    die_orders.append(tiled)
            except ValueError:
                pass

        layouts: List[Tuple[List[int], Tuple[str, ...]]] = []
        for dies in die_orders:
            for order in dimension_orders:
                layouts.append((dies, order))
        return layouts


def snake_order(topology: MeshTopology) -> List[int]:
    """Boustrophedon ordering of healthy dies: consecutive dies are adjacent.

    Row 0 runs left to right, row 1 right to left, and so on, so a group of
    consecutive positions always forms a physically contiguous chain (and a
    rectangle of full rows forms a contiguous ring).
    """
    ordering: List[int] = []
    for row in range(topology.rows):
        cols = range(topology.cols)
        if row % 2 == 1:
            cols = reversed(cols)
        for col in cols:
            die = topology.die_at(row, col)
            if topology.is_healthy(die):
                ordering.append(die)
    return ordering


_ENGINES = {
    "smap": SMapEngine,
    "gmap": GMapEngine,
    "tcme": TCMEEngine,
    "scattered": ScatteredEngine,
}


def get_engine(name: str) -> MappingEngine:
    """Instantiate a mapping engine by name ("smap", "gmap", "tcme", ...)."""
    key = name.lower()
    try:
        return _ENGINES[key]()
    except KeyError:
        available = ", ".join(sorted(_ENGINES))
        raise KeyError(f"unknown mapping engine '{name}'; available: {available}") from None
