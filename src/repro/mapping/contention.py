"""Link-load accounting and bottleneck identification.

The contention model the simulator uses is load-based: every flow deposits its
per-step bytes on each link of its path; the busiest link bounds how fast the
communication phase can drain. The traffic-conscious optimizer's goal is to
minimise that maximum link load (Fig. 11's ``MaxLoadLink``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware.topology import Link, MeshTopology
from repro.mapping.routing import Flow

LinkKey = Tuple[int, int]


@dataclass
class LinkLoadMap:
    """Per-link byte loads accumulated from a set of flows."""

    loads: Dict[LinkKey, float]

    @classmethod
    def from_flows(
        cls, flows: Iterable[Flow], critical_only: bool = False
    ) -> "LinkLoadMap":
        """Accumulate loads from ``flows`` (optionally only critical ones)."""
        loads: Dict[LinkKey, float] = {}
        for flow in flows:
            if critical_only and not flow.critical:
                continue
            for link in flow.path:
                key = (link.src, link.dst)
                loads[key] = loads.get(key, 0.0) + flow.total_bytes
        return cls(loads=loads)

    @property
    def num_loaded_links(self) -> int:
        """Number of links carrying any traffic."""
        return sum(1 for load in self.loads.values() if load > 0)

    def load_of(self, link: Link) -> float:
        """Bytes carried by ``link``."""
        return self.loads.get((link.src, link.dst), 0.0)

    def max_load(self) -> float:
        """Bytes on the most congested link (0 when there is no traffic)."""
        return max(self.loads.values(), default=0.0)

    def max_load_link(self) -> Optional[LinkKey]:
        """The most congested link, or None when there is no traffic."""
        if not self.loads:
            return None
        return max(self.loads, key=self.loads.get)

    def mean_load(self) -> float:
        """Average bytes over loaded links."""
        if not self.loads:
            return 0.0
        return sum(self.loads.values()) / len(self.loads)

    def total_bytes(self) -> float:
        """Sum of bytes over all links (link-traversals, i.e. bytes x hops)."""
        return sum(self.loads.values())

    def imbalance(self) -> float:
        """Max-to-mean load ratio; 1.0 means perfectly balanced traffic."""
        mean = self.mean_load()
        if mean <= 0:
            return 1.0
        return self.max_load() / mean

    def utilization(
        self, topology: MeshTopology, window_seconds: float, bandwidth: float
    ) -> float:
        """Average utilisation of all mesh links over a time window.

        Args:
            topology: the mesh whose link count normalises the figure.
            window_seconds: duration of the execution window.
            bandwidth: per-link bandwidth in bytes/second.
        """
        if window_seconds <= 0 or bandwidth <= 0:
            return 0.0
        total_capacity = len(topology.links()) * bandwidth * window_seconds
        if total_capacity <= 0:
            return 0.0
        return min(1.0, self.total_bytes() / total_capacity)


def flows_through(flows: Sequence[Flow], link: LinkKey) -> List[Flow]:
    """Flows whose path traverses ``link`` (the optimizer's ``HotPaths``)."""
    hot: List[Flow] = []
    for flow in flows:
        if any((hop.src, hop.dst) == link for hop in flow.path):
            hot.append(flow)
    return hot
