"""Analytical operator models.

Every operator knows its forward/backward FLOPs and the byte sizes of its
inputs, weights, and outputs. These are the quantities the wafer cost model
consumes: computation latency is FLOPs over effective throughput, DRAM traffic
and memory occupancy follow from the byte counts, and communication volumes
are derived by the parallelism layer from how each operator's tensors are
partitioned.

Conventions (matching Eq. (1) of the paper):

* a linear layer computes ``O[B, M, K] = I[B, M, N] x W[N, K]`` — ``B`` is the
  batch, ``M`` the sequence length, ``N`` the input-hidden and ``K`` the
  output-hidden dimension;
* the backward pass costs roughly twice the forward FLOPs (dI and dW GEMMs);
* mixed-precision training stores weights/activations in FP16 and optimizer
  state in FP32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class DType(Enum):
    """Element types with their byte widths."""

    FP32 = 4
    FP16 = 2
    BF16 = 2
    INT8 = 1

    @property
    def bytes(self) -> int:
        """Byte width of one element."""
        return self.value


class OperatorKind(Enum):
    """Coarse operator category used by cost models and partitioners."""

    GEMM = "gemm"
    BATCHED_GEMM = "batched_gemm"
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    ELEMENTWISE = "elementwise"
    EMBEDDING = "embedding"


@dataclass(frozen=True)
class Operator:
    """Base analytical operator.

    Attributes:
        name: readable operator name.
        kind: coarse category of the operator.
        forward_flops: floating-point operations of the forward pass.
        backward_flops: floating-point operations of the backward pass
            (including the weight-gradient GEMM where applicable).
        input_bytes: bytes of activations read in the forward pass.
        weight_bytes: bytes of trainable parameters.
        output_bytes: bytes of activations produced (and typically saved for
            the backward pass).
        dims: named dimension sizes (B, M, N, K, heads, ...) so partitioners
            can split the operator along a specific axis.
    """

    name: str
    kind: OperatorKind
    forward_flops: float
    backward_flops: float
    input_bytes: float
    weight_bytes: float
    output_bytes: float
    dims: Dict[str, int] = field(default_factory=dict)

    @property
    def total_flops(self) -> float:
        """Forward plus backward FLOPs for one training step."""
        return self.forward_flops + self.backward_flops

    @property
    def activation_bytes(self) -> float:
        """Bytes of activations that must be kept for the backward pass."""
        return self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of tensor traffic (used to detect memory-bound ops)."""
        traffic = self.input_bytes + self.weight_bytes + self.output_bytes
        if traffic <= 0:
            return 0.0
        return self.forward_flops / traffic

    def dim(self, key: str) -> int:
        """Return a named dimension size, raising a clear error if absent."""
        try:
            return self.dims[key]
        except KeyError:
            raise KeyError(f"operator {self.name} has no dimension '{key}'") from None


def _check_positive(**dims: int) -> None:
    for key, value in dims.items():
        if value <= 0:
            raise ValueError(f"dimension {key} must be positive, got {value}")


def Linear(
    name: str,
    batch: int,
    seq: int,
    in_features: int,
    out_features: int,
    dtype: DType = DType.FP16,
    has_weight: bool = True,
) -> Operator:
    """A dense linear layer ``O[B, M, K] = I[B, M, N] x W[N, K]``.

    Forward FLOPs are ``2 * B * M * N * K`` (multiply-accumulate counted as
    two); backward costs twice that (input-gradient plus weight-gradient
    GEMMs).
    """
    _check_positive(batch=batch, seq=seq, in_features=in_features,
                    out_features=out_features)
    forward = 2.0 * batch * seq * in_features * out_features
    backward = 2.0 * forward if has_weight else forward
    input_bytes = batch * seq * in_features * dtype.bytes
    weight_bytes = in_features * out_features * dtype.bytes if has_weight else 0
    output_bytes = batch * seq * out_features * dtype.bytes
    return Operator(
        name=name,
        kind=OperatorKind.GEMM,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=float(input_bytes),
        weight_bytes=float(weight_bytes),
        output_bytes=float(output_bytes),
        dims={"B": batch, "M": seq, "N": in_features, "K": out_features},
    )


def AttentionScore(
    name: str,
    batch: int,
    heads: int,
    seq: int,
    head_dim: int,
    dtype: DType = DType.FP16,
    causal: bool = True,
) -> Operator:
    """The Q x K^T batched GEMM producing attention scores.

    With causal masking only the lower triangle is computed, halving the
    effective FLOPs (the paper's FlashAttention-style operators exploit this).
    """
    _check_positive(batch=batch, heads=heads, seq=seq, head_dim=head_dim)
    scale = 0.5 if causal else 1.0
    forward = 2.0 * batch * heads * seq * seq * head_dim * scale
    backward = 2.0 * forward
    input_bytes = 2.0 * batch * heads * seq * head_dim * dtype.bytes
    output_bytes = batch * heads * seq * seq * dtype.bytes * scale
    return Operator(
        name=name,
        kind=OperatorKind.BATCHED_GEMM,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=input_bytes,
        weight_bytes=0.0,
        output_bytes=output_bytes,
        dims={"B": batch, "H": heads, "M": seq, "N": head_dim, "K": seq},
    )


def AttentionContext(
    name: str,
    batch: int,
    heads: int,
    seq: int,
    head_dim: int,
    dtype: DType = DType.FP16,
    causal: bool = True,
) -> Operator:
    """The Score x V batched GEMM producing the attention context."""
    _check_positive(batch=batch, heads=heads, seq=seq, head_dim=head_dim)
    scale = 0.5 if causal else 1.0
    forward = 2.0 * batch * heads * seq * seq * head_dim * scale
    backward = 2.0 * forward
    input_bytes = (
        batch * heads * seq * seq * dtype.bytes * scale
        + batch * heads * seq * head_dim * dtype.bytes
    )
    output_bytes = batch * heads * seq * head_dim * dtype.bytes
    return Operator(
        name=name,
        kind=OperatorKind.BATCHED_GEMM,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=input_bytes,
        weight_bytes=0.0,
        output_bytes=output_bytes,
        dims={"B": batch, "H": heads, "M": seq, "N": seq, "K": head_dim},
    )


def Softmax(
    name: str,
    batch: int,
    heads: int,
    seq: int,
    dtype: DType = DType.FP16,
    causal: bool = True,
    online: bool = True,
) -> Operator:
    """Row-wise softmax over attention scores.

    ``online=True`` models the online-softmax used with FlashAttention, which
    keeps the score matrix tiled in SRAM and avoids materialising it in HBM:
    the output bytes then only cover the per-row statistics rather than the
    full S x S matrix.
    """
    _check_positive(batch=batch, heads=heads, seq=seq)
    scale = 0.5 if causal else 1.0
    elements = batch * heads * seq * seq * scale
    # exp, subtract max, sum, divide: ~5 flops per element.
    forward = 5.0 * elements
    backward = 4.0 * elements
    input_bytes = elements * dtype.bytes
    if online:
        output_bytes = batch * heads * seq * 2 * DType.FP32.bytes
    else:
        output_bytes = elements * dtype.bytes
    return Operator(
        name=name,
        kind=OperatorKind.SOFTMAX,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=input_bytes,
        weight_bytes=0.0,
        output_bytes=float(output_bytes),
        dims={"B": batch, "H": heads, "M": seq, "K": seq},
    )


def LayerNorm(
    name: str,
    batch: int,
    seq: int,
    hidden: int,
    dtype: DType = DType.FP16,
) -> Operator:
    """Layer normalisation over the hidden dimension."""
    _check_positive(batch=batch, seq=seq, hidden=hidden)
    elements = batch * seq * hidden
    forward = 5.0 * elements
    backward = 8.0 * elements
    tensor_bytes = elements * dtype.bytes
    weight_bytes = 2 * hidden * dtype.bytes  # gain and bias vectors
    return Operator(
        name=name,
        kind=OperatorKind.LAYERNORM,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=float(tensor_bytes),
        weight_bytes=float(weight_bytes),
        output_bytes=float(tensor_bytes),
        dims={"B": batch, "M": seq, "N": hidden},
    )


def Elementwise(
    name: str,
    batch: int,
    seq: int,
    hidden: int,
    dtype: DType = DType.FP16,
    flops_per_element: float = 4.0,
) -> Operator:
    """Element-wise operator (GeLU, SiLU, residual add, dropout, ...).

    ``flops_per_element`` defaults to 4 which approximates GeLU/SiLU; residual
    adds can pass 1.
    """
    _check_positive(batch=batch, seq=seq, hidden=hidden)
    elements = batch * seq * hidden
    forward = flops_per_element * elements
    backward = flops_per_element * elements
    tensor_bytes = elements * dtype.bytes
    return Operator(
        name=name,
        kind=OperatorKind.ELEMENTWISE,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=float(tensor_bytes),
        weight_bytes=0.0,
        output_bytes=float(tensor_bytes),
        dims={"B": batch, "M": seq, "N": hidden},
    )


def Embedding(
    name: str,
    batch: int,
    seq: int,
    hidden: int,
    vocab_size: int,
    dtype: DType = DType.FP16,
) -> Operator:
    """Token embedding lookup (forward is a gather; backward a scatter-add)."""
    _check_positive(batch=batch, seq=seq, hidden=hidden, vocab_size=vocab_size)
    tokens = batch * seq
    forward = float(tokens * hidden)  # gather cost approximated as one op/elem
    backward = float(tokens * hidden)
    weight_bytes = vocab_size * hidden * dtype.bytes
    output_bytes = tokens * hidden * dtype.bytes
    return Operator(
        name=name,
        kind=OperatorKind.EMBEDDING,
        forward_flops=forward,
        backward_flops=backward,
        input_bytes=float(tokens * 4),  # int32 token ids
        weight_bytes=float(weight_bytes),
        output_bytes=float(output_bytes),
        dims={"B": batch, "M": seq, "N": hidden, "V": vocab_size},
    )
