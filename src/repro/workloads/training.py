"""Training-step accounting: FLOPs and mixed-precision memory footprints.

The paper trains with mixed precision: FP16 weights and activations, FP32 Adam
optimizer state. The per-device memory footprint therefore decomposes into

* **weights** — FP16 parameter shards,
* **gradients** — FP16 gradient shards,
* **optimizer** — FP32 master weights plus two FP32 Adam moments (12 bytes per
  parameter, the standard Megatron/ZeRO accounting),
* **activations** — forward activations retained for the backward pass.

Parallelism strategies shard or replicate each of these differently, which is
exactly the memory trade-off Fig. 4(c) and Fig. 13 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.workloads.graph import ComputeGraph
from repro.workloads.models import ModelConfig

#: Bytes of optimizer state per parameter: the two FP32 Adam moments. The
#: FP32 master copy of the weights is materialised transiently shard-by-shard
#: during the update rather than held resident (the memory-lean mixed-precision
#: recipe wafer-scale capacities require; keeping a resident master copy would
#: add 4 bytes/param and put even ideally-sharded 175B-class models above the
#: per-die HBM capacity of Table I).
ADAM_OPTIMIZER_BYTES_PER_PARAM = 8
#: Bytes of gradient storage per parameter (FP16 gradients).
GRADIENT_BYTES_PER_PARAM = 2
#: With full activation recomputation enabled, a checkpoint is stored every
#: this many transformer layers (Megatron's block-granular recompute).
CHECKPOINT_EVERY_LAYERS = 2


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-device memory footprint of a training step, in bytes."""

    weights: float
    gradients: float
    optimizer: float
    activations: float

    @property
    def total(self) -> float:
        """Total bytes across all four categories."""
        return self.weights + self.gradients + self.optimizer + self.activations

    def scaled(self, factor: float) -> "MemoryFootprint":
        """Scale every component (used when replicating across groups)."""
        return MemoryFootprint(
            weights=self.weights * factor,
            gradients=self.gradients * factor,
            optimizer=self.optimizer * factor,
            activations=self.activations * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for reports."""
        return {
            "weights": self.weights,
            "gradients": self.gradients,
            "optimizer": self.optimizer,
            "activations": self.activations,
            "total": self.total,
        }


@dataclass(frozen=True)
class TrainingStep:
    """Aggregate characteristics of one training step of a model."""

    model: ModelConfig
    flops: float
    weight_bytes: float
    gradient_bytes: float
    optimizer_bytes: float
    activation_bytes: float

    @classmethod
    def from_model(
        cls,
        model: ModelConfig,
        graph: Optional[ComputeGraph] = None,
        activation_checkpointing: bool = False,
    ) -> "TrainingStep":
        """Derive the training-step characteristics of ``model``.

        Args:
            model: the model configuration.
            graph: optional pre-built compute graph; when provided, activation
                bytes are summed from the graph (more faithful than the closed
                form) and FLOPs come from the graph as well.
            activation_checkpointing: when True, only per-layer boundary
                activations are retained and the rest are recomputed, which
                reduces activation memory to roughly 2/13ths of the full
                amount at the cost of one extra forward pass worth of FLOPs.
        """
        params = model.num_parameters
        weight_bytes = params * model.dtype.bytes
        gradient_bytes = params * GRADIENT_BYTES_PER_PARAM
        optimizer_bytes = params * ADAM_OPTIMIZER_BYTES_PER_PARAM

        if graph is not None:
            activation_bytes = graph.total_activation_bytes()
            flops = graph.total_flops(include_backward=True)
            built_layers = max(len(graph.layers()), 1)
            scale = model.num_layers / built_layers
            activation_bytes *= scale
            flops *= scale
        else:
            activation_bytes = cls._closed_form_activation_bytes(model)
            flops = model.training_flops_per_step()

        if activation_checkpointing:
            checkpoints = -(-model.num_layers // CHECKPOINT_EVERY_LAYERS)
            boundary = (model.batch_size * model.seq_length * model.hidden_size
                        * model.dtype.bytes * checkpoints)
            activation_bytes = float(boundary)
            flops *= 4.0 / 3.0  # one extra forward pass on top of fwd+bwd

        return cls(
            model=model,
            flops=flops,
            weight_bytes=float(weight_bytes),
            gradient_bytes=float(gradient_bytes),
            optimizer_bytes=float(optimizer_bytes),
            activation_bytes=float(activation_bytes),
        )

    @staticmethod
    def _closed_form_activation_bytes(model: ModelConfig) -> float:
        """Standard per-layer activation estimate (Korthikanti et al. style).

        Roughly ``s*b*h*(34 + 5*a*s/h)`` bytes per layer in FP16 without
        selective recomputation; with Flash-style attention the attention-score
        term drops, leaving ~34*s*b*h bytes per layer.
        """
        per_layer = (34.0 * model.seq_length * model.batch_size
                     * model.hidden_size)
        return per_layer * model.num_layers

    def replicated_footprint(self) -> MemoryFootprint:
        """Footprint if a single device held the entire model and batch."""
        return MemoryFootprint(
            weights=self.weight_bytes,
            gradients=self.gradient_bytes,
            optimizer=self.optimizer_bytes,
            activations=self.activation_bytes,
        )

    def ideal_footprint(self, num_devices: int) -> MemoryFootprint:
        """The zero-redundancy footprint: everything sharded ``num_devices`` ways.

        This is the "Ideal" bar of Fig. 4(c).
        """
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        return self.replicated_footprint().scaled(1.0 / num_devices)
