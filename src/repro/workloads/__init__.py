"""LLM workload models: operators, compute graphs, and the model zoo.

The evaluation of the paper is driven entirely by transformer training
workloads (Table II plus the larger multi-wafer models of Fig. 19). This
subpackage provides:

* :mod:`repro.workloads.graph` — a small compute-graph IR (tensors, operator
  nodes, edges) that the parallelism, mapping, and solver layers consume.
* :mod:`repro.workloads.operators` — analytical FLOP/byte models for every
  operator the paper lists (GEMM, batched GEMM, softmax, layer-norm,
  GeLU/SiLU, residual add, embedding, attention with Flash-style fusion).
* :mod:`repro.workloads.transformer` — a builder that expands a model
  configuration into the transformer-block graph of Fig. 12.
* :mod:`repro.workloads.models` — the model zoo (Table II, Fig. 4 and Fig. 19
  models) expressed as :class:`ModelConfig` records.
* :mod:`repro.workloads.training` — training-step accounting: forward /
  backward / gradient FLOPs, mixed-precision memory footprints (weights,
  gradients, Adam optimizer states, activations).
"""

from repro.workloads.graph import ComputeGraph, OperatorNode, TensorSpec
from repro.workloads.operators import (
    AttentionScore,
    AttentionContext,
    DType,
    Elementwise,
    Embedding,
    LayerNorm,
    Linear,
    Operator,
    OperatorKind,
    Softmax,
)
from repro.workloads.models import (
    MODEL_ZOO,
    ModelConfig,
    get_model,
    list_models,
)
from repro.workloads.transformer import build_transformer_block, build_model_graph
from repro.workloads.training import TrainingStep, MemoryFootprint

__all__ = [
    "ComputeGraph",
    "OperatorNode",
    "TensorSpec",
    "AttentionScore",
    "AttentionContext",
    "DType",
    "Elementwise",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Operator",
    "OperatorKind",
    "Softmax",
    "MODEL_ZOO",
    "ModelConfig",
    "get_model",
    "list_models",
    "build_transformer_block",
    "build_model_graph",
    "TrainingStep",
    "MemoryFootprint",
]
