"""Transformer compute-graph builder (Fig. 12(a)).

A transformer block is expanded into the thirteen operators the paper shows:
layer-norm, fused QKV projection, per-head attention (Q x K^T, online softmax,
Score x V), output projection, residual add, second layer-norm, FC1,
non-linearity, FC2, and the final residual add. Attention operators can be
built in Flash-style (tiled, online softmax, scores never hit HBM) or naive
form.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.graph import ComputeGraph
from repro.workloads.models import ModelConfig
from repro.workloads.operators import (
    AttentionContext,
    AttentionScore,
    Elementwise,
    Embedding,
    LayerNorm,
    Linear,
    Softmax,
)


def build_transformer_block(
    graph: ComputeGraph,
    model: ModelConfig,
    layer_index: int,
    input_node: Optional[int] = None,
    flash_attention: bool = True,
) -> int:
    """Append one transformer block to ``graph``.

    Args:
        graph: the graph being built.
        model: model hyper-parameters.
        layer_index: index of the block (for reporting).
        input_node: node id feeding the block (None for the first block).
        flash_attention: whether softmax uses the online/Flash formulation.

    Returns:
        The node id of the block's final residual add, to be fed to the next
        block.
    """
    batch = model.batch_size
    seq = model.seq_length
    hidden = model.hidden_size
    heads = model.num_heads
    head_dim = model.head_dim
    ffn = model.ffn_hidden_size
    inputs = [input_node] if input_node is not None else []

    norm1 = graph.add_operator(
        LayerNorm(f"L{layer_index}.ln1", batch, seq, hidden),
        inputs=inputs, layer_index=layer_index, block="mha")
    qkv = graph.add_operator(
        Linear(f"L{layer_index}.qkv", batch, seq, hidden, 3 * hidden),
        inputs=[norm1], layer_index=layer_index, block="mha")
    score = graph.add_operator(
        AttentionScore(f"L{layer_index}.qk", batch, heads, seq, head_dim),
        inputs=[qkv], layer_index=layer_index, block="mha")
    softmax = graph.add_operator(
        Softmax(f"L{layer_index}.softmax", batch, heads, seq,
                online=flash_attention),
        inputs=[score], layer_index=layer_index, block="mha")
    context = graph.add_operator(
        AttentionContext(f"L{layer_index}.sv", batch, heads, seq, head_dim),
        inputs=[softmax, qkv], layer_index=layer_index, block="mha")
    projection = graph.add_operator(
        Linear(f"L{layer_index}.proj", batch, seq, hidden, hidden),
        inputs=[context], layer_index=layer_index, block="mha")
    residual1 = graph.add_operator(
        Elementwise(f"L{layer_index}.res1", batch, seq, hidden,
                    flops_per_element=1.0),
        inputs=[projection], layer_index=layer_index, block="mha",
        residual_from=input_node if input_node is not None else norm1)

    norm2 = graph.add_operator(
        LayerNorm(f"L{layer_index}.ln2", batch, seq, hidden),
        inputs=[residual1], layer_index=layer_index, block="ffn")
    if model.gated_ffn:
        fc1 = graph.add_operator(
            Linear(f"L{layer_index}.fc1", batch, seq, hidden, 2 * ffn),
            inputs=[norm2], layer_index=layer_index, block="ffn")
    else:
        fc1 = graph.add_operator(
            Linear(f"L{layer_index}.fc1", batch, seq, hidden, ffn),
            inputs=[norm2], layer_index=layer_index, block="ffn")
    activation = graph.add_operator(
        Elementwise(f"L{layer_index}.act", batch, seq, ffn),
        inputs=[fc1], layer_index=layer_index, block="ffn")
    fc2 = graph.add_operator(
        Linear(f"L{layer_index}.fc2", batch, seq, ffn, hidden),
        inputs=[activation], layer_index=layer_index, block="ffn")
    residual2 = graph.add_operator(
        Elementwise(f"L{layer_index}.res2", batch, seq, hidden,
                    flops_per_element=1.0),
        inputs=[fc2], layer_index=layer_index, block="ffn",
        residual_from=residual1)
    return residual2


def build_model_graph(
    model: ModelConfig,
    num_layers: Optional[int] = None,
    include_embedding: bool = True,
    flash_attention: bool = True,
) -> ComputeGraph:
    """Expand a model configuration into a full compute graph.

    Args:
        model: the model hyper-parameters.
        num_layers: optionally build fewer layers than the full model (the
            solver often optimises a single representative layer and scales
            the result, since all layers are identical).
        include_embedding: whether to prepend the token-embedding operator.
        flash_attention: whether attention uses the Flash-style formulation.

    Returns:
        The compute graph in topological construction order.
    """
    depth = num_layers if num_layers is not None else model.num_layers
    if depth <= 0:
        raise ValueError(f"num_layers must be positive, got {depth}")
    graph = ComputeGraph(name=model.name)
    previous: Optional[int] = None
    if include_embedding:
        previous = graph.add_operator(
            Embedding("embed", model.batch_size, model.seq_length,
                      model.hidden_size, model.vocab_size),
            layer_index=-1, block="embed")
    for layer_index in range(depth):
        previous = build_transformer_block(
            graph, model, layer_index, input_node=previous,
            flash_attention=flash_attention)
    return graph


def representative_layer_graph(
    model: ModelConfig, flash_attention: bool = True
) -> ComputeGraph:
    """A single-layer graph used by the solver, without the embedding.

    All transformer layers are identical, so the solver optimises one layer
    and multiplies its cost by the layer count (plus pipeline effects handled
    separately).
    """
    return build_model_graph(
        model, num_layers=1, include_embedding=False,
        flash_attention=flash_attention)
