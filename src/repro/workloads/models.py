"""Model zoo.

Table II of the paper lists the six evaluation models (GPT-3 6.7B, Llama2 7B,
Llama3 70B, GPT-3 76B, GPT-3 175B, OPT 175B); Fig. 4 additionally profiles
DeepSeek-style models and a Bloom-176B-class model, and the multi-wafer study
(Fig. 19) adds Grok-1 341B, Llama3 405B and a 504B GPT-3 variant. All of them
are described here as :class:`ModelConfig` records with the usual transformer
hyper-parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional

from repro.workloads.operators import DType


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of one transformer language model.

    Attributes:
        name: canonical model name as used in the paper's figures.
        num_heads: attention heads per layer.
        batch_size: global training batch size (Table II uses 128).
        hidden_size: model (embedding) dimension.
        num_layers: number of transformer blocks.
        seq_length: training sequence length.
        ffn_multiplier: FFN intermediate size as a multiple of the hidden size
            (4 for GPT-style models, ~2.7 effective for gated Llama FFNs which
            use three projection matrices of 8/3 x hidden each).
        vocab_size: vocabulary size for the embedding / LM head.
        gated_ffn: whether the FFN is a gated (SwiGLU) variant with three
            weight matrices instead of two.
        dtype: parameter/activation dtype for mixed-precision training.
    """

    name: str
    num_heads: int
    batch_size: int
    hidden_size: int
    num_layers: int
    seq_length: int
    ffn_multiplier: float = 4.0
    vocab_size: int = 51200
    gated_ffn: bool = False
    dtype: DType = DType.FP16

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def ffn_hidden_size(self) -> int:
        """FFN intermediate dimension."""
        return int(round(self.hidden_size * self.ffn_multiplier))

    @property
    def num_parameters(self) -> float:
        """Approximate parameter count of the full model.

        Counts attention (4 h^2), FFN (2 or 3 projection matrices), layer
        norms, and the embedding table.
        """
        h = self.hidden_size
        ffn = self.ffn_hidden_size
        attention = 4 * h * h
        if self.gated_ffn:
            ffn_params = 3 * h * ffn
        else:
            ffn_params = 2 * h * ffn
        norms = 4 * h
        per_layer = attention + ffn_params + norms
        embedding = self.vocab_size * h
        return float(self.num_layers * per_layer + embedding)

    @property
    def weight_bytes(self) -> float:
        """Bytes of FP16 weights for the full model."""
        return self.num_parameters * self.dtype.bytes

    @property
    def tokens_per_batch(self) -> int:
        """Tokens processed per global batch."""
        return self.batch_size * self.seq_length

    def training_flops_per_step(self) -> float:
        """Approximate FLOPs of one training step (fwd + bwd ~ 6 * P * tokens)."""
        return 6.0 * self.num_parameters * self.tokens_per_batch

    def with_overrides(
        self,
        batch_size: Optional[int] = None,
        seq_length: Optional[int] = None,
        num_layers: Optional[int] = None,
    ) -> "ModelConfig":
        """Copy the config with a different batch size / sequence / depth."""
        updated = self
        if batch_size is not None:
            updated = replace(updated, batch_size=batch_size)
        if seq_length is not None:
            updated = replace(updated, seq_length=seq_length)
        if num_layers is not None:
            updated = replace(updated, num_layers=num_layers)
        return updated

    # Serialization (used by the Scenario API's inline workloads) --------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON dict of the hyper-parameters (dtype by name)."""
        result: Dict[str, object] = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if isinstance(value, DType):
                value = value.name
            result[config_field.name] = value
        return result

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ModelConfig":
        """Strictly build a config from :meth:`to_dict`'s format.

        Raises:
            ValueError: on unknown keys, a missing ``name``, or an unknown
                dtype name.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"model hyper-parameters must be a mapping, got "
                f"{type(data).__name__}")
        known = {config_field.name for config_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown model hyper-parameters: {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(known))}")
        kwargs = dict(data)
        if "name" not in kwargs:
            raise ValueError("model hyper-parameters must include 'name'")
        dtype = kwargs.get("dtype")
        if isinstance(dtype, str):
            try:
                kwargs["dtype"] = DType[dtype.upper()]
            except KeyError:
                valid = ", ".join(member.name for member in DType)
                raise ValueError(
                    f"unknown dtype {dtype!r}; valid: {valid}") from None
        return cls(**kwargs)


def _zoo() -> Dict[str, ModelConfig]:
    models = [
        # Table II -------------------------------------------------------------
        ModelConfig("gpt3-6.7b", num_heads=32, batch_size=128, hidden_size=4096,
                    num_layers=32, seq_length=2048),
        ModelConfig("llama2-7b", num_heads=32, batch_size=128, hidden_size=4096,
                    num_layers=32, seq_length=4096, ffn_multiplier=2.6875,
                    vocab_size=32000, gated_ffn=True),
        ModelConfig("llama3-70b", num_heads=64, batch_size=128, hidden_size=8192,
                    num_layers=80, seq_length=4096, ffn_multiplier=3.5,
                    vocab_size=128256, gated_ffn=True),
        ModelConfig("gpt3-76b", num_heads=80, batch_size=128, hidden_size=10240,
                    num_layers=60, seq_length=2048),
        ModelConfig("gpt3-175b", num_heads=96, batch_size=128, hidden_size=12288,
                    num_layers=96, seq_length=2048),
        ModelConfig("opt-175b", num_heads=96, batch_size=128, hidden_size=12288,
                    num_layers=96, seq_length=4096),
        # Fig. 4 motivation models ----------------------------------------------
        ModelConfig("deepseek-7b", num_heads=32, batch_size=128, hidden_size=4096,
                    num_layers=30, seq_length=4096, ffn_multiplier=2.6875,
                    vocab_size=102400, gated_ffn=True),
        ModelConfig("deepseek-67b", num_heads=64, batch_size=128, hidden_size=8192,
                    num_layers=95, seq_length=4096, ffn_multiplier=2.6875,
                    vocab_size=102400, gated_ffn=True),
        ModelConfig("deepseek-v2-236b", num_heads=128, batch_size=128,
                    hidden_size=12288, num_layers=120, seq_length=4096,
                    ffn_multiplier=3.0, vocab_size=102400, gated_ffn=True),
        ModelConfig("llama2-70b", num_heads=64, batch_size=128, hidden_size=8192,
                    num_layers=80, seq_length=4096, ffn_multiplier=3.5,
                    vocab_size=32000, gated_ffn=True),
        ModelConfig("llama2-30b", num_heads=52, batch_size=128, hidden_size=6656,
                    num_layers=60, seq_length=4096, ffn_multiplier=2.6875,
                    vocab_size=32000, gated_ffn=True),
        ModelConfig("bloom-176b", num_heads=112, batch_size=128, hidden_size=14336,
                    num_layers=70, seq_length=2048, vocab_size=250880),
        # Fig. 19 multi-wafer models ---------------------------------------------
        ModelConfig("grok1-341b", num_heads=48, batch_size=128, hidden_size=6144,
                    num_layers=64, seq_length=8192, ffn_multiplier=8.0 * 4,
                    vocab_size=131072),
        ModelConfig("llama3-405b", num_heads=128, batch_size=128, hidden_size=16384,
                    num_layers=126, seq_length=4096, ffn_multiplier=3.25,
                    vocab_size=128256, gated_ffn=True),
        ModelConfig("gpt3-504b", num_heads=128, batch_size=128, hidden_size=18432,
                    num_layers=105, seq_length=2048),
    ]
    return {model.name: model for model in models}


#: Registry of every model configuration the experiments use, keyed by name.
MODEL_ZOO: Dict[str, ModelConfig] = _zoo()

#: The six models of Table II, in the order the figures present them.
TABLE_II_MODELS: List[str] = [
    "gpt3-6.7b",
    "llama2-7b",
    "llama3-70b",
    "gpt3-76b",
    "gpt3-175b",
    "opt-175b",
]

#: The four multi-wafer models of Fig. 19 with their wafer counts.
MULTI_WAFER_MODELS: Dict[str, int] = {
    "gpt3-175b": 2,
    "grok1-341b": 4,
    "llama3-405b": 4,
    "gpt3-504b": 6,
}


def get_model(name: str) -> ModelConfig:
    """Look up a model configuration by name.

    Raises:
        KeyError: when the name is not in the zoo; the message lists the
            available models to make typos easy to fix.
    """
    try:
        return MODEL_ZOO[name]
    except KeyError:
        available = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model '{name}'; available: {available}") from None


def list_models() -> List[str]:
    """Names of all registered models."""
    return sorted(MODEL_ZOO)
