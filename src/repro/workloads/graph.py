"""Compute-graph intermediate representation.

The solver and mapping layers reason about a directed acyclic graph of
operators. Nodes carry an :class:`~repro.workloads.operators.Operator`
instance (which knows its own FLOPs and tensor sizes); edges represent tensor
dependencies. Residual connections are ordinary edges flagged so the graph
partitioner (§VII-B) can cut the graph at residual-free boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.workloads.operators import DType, Operator


@dataclass(frozen=True)
class TensorSpec:
    """Shape and dtype of a logical tensor flowing between operators.

    Attributes:
        name: human-readable tensor name ("activations", "weights", ...).
        shape: dimension sizes; the conventional order for linear layers is
            (B, M, N) for activations and (N, K) for weights, matching Eq. (1).
        dtype: element type used for byte accounting.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.FP16

    @property
    def num_elements(self) -> int:
        """Total number of elements in the tensor."""
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def num_bytes(self) -> int:
        """Size of the tensor in bytes."""
        return self.num_elements * self.dtype.value

    def split(self, axis: int, parts: int) -> "TensorSpec":
        """Return the spec of one shard after splitting ``axis`` into ``parts``.

        The paper's partitioners always split dimensions evenly; uneven splits
        round up so memory accounting stays conservative.
        """
        if not 0 <= axis < len(self.shape):
            raise ValueError(f"axis {axis} out of range for shape {self.shape}")
        if parts <= 0:
            raise ValueError(f"parts must be positive, got {parts}")
        new_shape = list(self.shape)
        new_shape[axis] = -(-new_shape[axis] // parts)
        return TensorSpec(self.name, tuple(new_shape), self.dtype)


@dataclass
class OperatorNode:
    """A node of the compute graph.

    Attributes:
        node_id: unique integer id within the graph.
        operator: the analytical operator model.
        layer_index: transformer layer this node belongs to (-1 for global
            nodes such as embeddings).
        block: coarse block label ("mha", "ffn", "norm", "embed", ...), used
            for reporting and for the graph partitioner.
        is_residual_target: whether a residual connection terminates here,
            which prevents the graph partitioner from cutting right before it.
    """

    node_id: int
    operator: Operator
    layer_index: int = -1
    block: str = ""
    is_residual_target: bool = False

    @property
    def name(self) -> str:
        """Readable node name used in reports."""
        return f"{self.operator.name}#{self.node_id}"


class ComputeGraph:
    """A DAG of operator nodes with tensor-dependency edges."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[int, OperatorNode] = {}
        self._successors: Dict[int, List[int]] = {}
        self._predecessors: Dict[int, List[int]] = {}
        self._residual_edges: set = set()
        self._next_id = 0

    # Construction -----------------------------------------------------------

    def add_operator(
        self,
        operator: Operator,
        inputs: Sequence[int] = (),
        layer_index: int = -1,
        block: str = "",
        residual_from: Optional[int] = None,
    ) -> int:
        """Append an operator node fed by the nodes in ``inputs``.

        Args:
            operator: the operator model for the node.
            inputs: node ids whose outputs feed this node.
            layer_index: transformer layer index for reporting.
            block: coarse block label for reporting.
            residual_from: optional node id of a residual (skip) producer; the
                extra edge is recorded and flagged as a residual edge.

        Returns:
            The id of the newly-created node.
        """
        node_id = self._next_id
        self._next_id += 1
        node = OperatorNode(
            node_id=node_id,
            operator=operator,
            layer_index=layer_index,
            block=block,
            is_residual_target=residual_from is not None,
        )
        self._nodes[node_id] = node
        self._successors[node_id] = []
        self._predecessors[node_id] = []
        for source in inputs:
            self._add_edge(source, node_id)
        if residual_from is not None:
            self._add_edge(residual_from, node_id)
            self._residual_edges.add((residual_from, node_id))
        return node_id

    def _add_edge(self, src: int, dst: int) -> None:
        if src not in self._nodes:
            raise KeyError(f"source node {src} does not exist")
        if dst not in self._nodes:
            raise KeyError(f"destination node {dst} does not exist")
        if src == dst:
            raise ValueError("self-edges are not allowed in a compute graph")
        if dst not in self._successors[src]:
            self._successors[src].append(dst)
        if src not in self._predecessors[dst]:
            self._predecessors[dst].append(src)

    # Queries ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of operator nodes in the graph."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of dependency edges in the graph."""
        return sum(len(successors) for successors in self._successors.values())

    def node(self, node_id: int) -> OperatorNode:
        """Return the node with ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} does not exist in graph {self.name}") from None

    def nodes(self) -> List[OperatorNode]:
        """All nodes in insertion (topological) order."""
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def operators(self) -> List[Operator]:
        """All operators in topological order."""
        return [node.operator for node in self.nodes()]

    def successors(self, node_id: int) -> List[int]:
        """Node ids consuming the output of ``node_id``."""
        return list(self._successors[node_id])

    def predecessors(self, node_id: int) -> List[int]:
        """Node ids whose outputs feed ``node_id``."""
        return list(self._predecessors[node_id])

    def edges(self) -> List[Tuple[int, int]]:
        """All (src, dst) dependency edges."""
        return [
            (src, dst)
            for src, dsts in self._successors.items()
            for dst in dsts
        ]

    def is_residual_edge(self, src: int, dst: int) -> bool:
        """Whether the (src, dst) edge carries a residual connection."""
        return (src, dst) in self._residual_edges

    def residual_edges(self) -> List[Tuple[int, int]]:
        """All residual (skip) edges."""
        return sorted(self._residual_edges)

    def topological_order(self) -> List[int]:
        """Kahn topological ordering of node ids."""
        in_degree = {node_id: len(self._predecessors[node_id]) for node_id in self._nodes}
        ready = sorted(node_id for node_id, deg in in_degree.items() if deg == 0)
        order: List[int] = []
        while ready:
            node_id = ready.pop(0)
            order.append(node_id)
            for successor in self._successors[node_id]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(order) != len(self._nodes):
            raise ValueError(f"graph {self.name} contains a cycle")
        return order

    # Aggregates ----------------------------------------------------------------

    def total_flops(self, include_backward: bool = True) -> float:
        """Sum of FLOPs across all operators (optionally including backward)."""
        total = 0.0
        for operator in self.operators():
            total += operator.forward_flops
            if include_backward:
                total += operator.backward_flops
        return total

    def total_weight_bytes(self) -> float:
        """Sum of weight bytes across all operators."""
        return sum(op.weight_bytes for op in self.operators())

    def total_activation_bytes(self) -> float:
        """Sum of forward activation bytes across all operators."""
        return sum(op.output_bytes for op in self.operators())

    def layers(self) -> List[int]:
        """Sorted list of layer indices present in the graph."""
        return sorted({node.layer_index for node in self.nodes() if node.layer_index >= 0})

    def nodes_in_layer(self, layer_index: int) -> List[OperatorNode]:
        """Nodes belonging to one transformer layer."""
        return [node for node in self.nodes() if node.layer_index == layer_index]

    # Partitioning ---------------------------------------------------------------

    def partition_at_residual_boundaries(self) -> List[List[int]]:
        """Split the node sequence into segments with no internal residual edges.

        The DLS algorithm (Fig. 12(b)) first cuts the graph into sub-graphs
        that contain no residual connections so the dynamic program can treat
        each segment as a chain. A cut point is any position in the topological
        order that no residual edge spans.
        """
        order = self.topological_order()
        position = {node_id: index for index, node_id in enumerate(order)}
        spans = [
            (position[src], position[dst]) for src, dst in self._residual_edges
        ]
        segments: List[List[int]] = []
        current: List[int] = []
        for index, node_id in enumerate(order):
            current.append(node_id)
            boundary = index + 1
            crossed = any(start < boundary <= end for start, end in spans)
            if not crossed:
                segments.append(current)
                current = []
        if current:
            segments.append(current)
        return segments

    def __iter__(self) -> Iterator[OperatorNode]:
        return iter(self.nodes())

    def __len__(self) -> int:
        return self.num_nodes
