"""Multi-wafer evaluation (Fig. 19).

Models too large for a single wafer are split across several wafers with
pipeline parallelism; intra-wafer execution uses whichever scheme is being
evaluated. The step time of a pipelined run is

    ``stage_time * (num_microbatches + pp - 1) / num_microbatches``

plus the inter-stage activation transfers, where ``stage_time`` is the
single-wafer (or sub-wafer) simulation of one pipeline stage's share of the
layers. TEMP's advantage on multi-wafer systems comes from needing a *lower*
pipeline degree (TATP covers more parallelism inside a wafer), which shrinks
the bubble term.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.costmodel.tables import PlanCache
from repro.hardware.multiwafer import MultiWaferSystem
from repro.parallelism.baselines import BaselineScheme, candidate_specs
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import SimulationReport, WaferSimulator
from repro.solver.search_space import prune_specs
from repro.workloads.models import ModelConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.scenario import Scenario


@dataclass
class MultiWaferResult:
    """Best pipelined configuration of a scheme on a multi-wafer system."""

    scheme: BaselineScheme
    engine: str
    model: ModelConfig
    num_wafers: int
    best_spec: Optional[ParallelSpec]
    step_time: float
    compute_time: float
    comm_time: float
    bubble_time: float
    throughput: float
    oom: bool
    report: Optional[SimulationReport] = None

    def breakdown(self) -> Dict[str, float]:
        """Latency breakdown matching Fig. 19's bars."""
        return {
            "compute": self.compute_time,
            "communication": self.comm_time,
            "bubble": self.bubble_time,
        }


def pipeline_degrees_for(
    scheme: BaselineScheme, num_wafers: int, allow_sub_wafer_pp: bool = True
) -> List[int]:
    """Pipeline degrees a scheme considers on ``num_wafers`` wafers.

    Baselines without a wafer-tailored parallelism need PP to be a multiple of
    the wafer count (the paper observes PP = k*N); TEMP can additionally use a
    PP degree equal to the wafer count or even lower is impossible (a stage
    cannot span wafers), so its candidates are {N, 2N} while baselines explore
    {N, 2N, 4N}.
    """
    if num_wafers < 1:
        raise ValueError("num_wafers must be >= 1")
    if scheme is BaselineScheme.TEMP:
        return [num_wafers, 2 * num_wafers]
    degrees = [num_wafers, 2 * num_wafers, 4 * num_wafers]
    if not allow_sub_wafer_pp:
        degrees = [num_wafers]
    return degrees


def evaluate_multiwafer(
    scheme: BaselineScheme,
    engine: str,
    model: ModelConfig,
    num_wafers: int,
    config: Optional[SimulatorConfig] = None,
    num_microbatches: int = 16,
    max_tatp: int = 32,
    plan_cache: Optional[PlanCache] = None,
) -> MultiWaferResult:
    """Deprecated loose-kwargs front of the multi-wafer search.

    .. deprecated::
        Build a :class:`repro.api.scenario.Scenario` with
        ``HardwareSpec(num_wafers=...)`` and call
        :meth:`repro.api.PlanService.evaluate` instead. This shim delegates
        to the same search and returns bit-identical results.
    """
    warnings.warn(
        "evaluate_multiwafer() is deprecated; build a Scenario with "
        "HardwareSpec(num_wafers=...) and use repro.api.PlanService.evaluate "
        "instead", DeprecationWarning, stacklevel=2)
    return _search_multiwafer(
        scheme, engine, model, num_wafers, config=config,
        num_microbatches=num_microbatches, max_tatp=max_tatp,
        plan_cache=plan_cache)


def run_multiwafer_scenario(
    scenario: "Scenario",
    plan_cache: Optional[PlanCache] = None,
) -> MultiWaferResult:
    """Run the multi-wafer (pipelined) search described by ``scenario``.

    The scenario's hardware spec supplies the wafer count and the number of
    pipeline microbatches; the solver spec supplies scheme, engine, and the
    TATP cap. ``plan_cache`` shares one memoised ``analyze_model`` across
    evaluations (pure memoisation; results are identical with or without it).
    """
    solver = scenario.solver
    return _search_multiwafer(
        solver.resolved_scheme(),
        solver.engine,
        scenario.workload.resolve(),
        scenario.hardware.num_wafers,
        config=scenario.hardware.resolve_simulator(),
        num_microbatches=scenario.hardware.num_microbatches,
        max_tatp=solver.max_tatp,
        plan_cache=plan_cache,
        wafer_config=scenario.hardware.resolve_config(),
    )


def _search_multiwafer(
    scheme: BaselineScheme,
    engine: str,
    model: ModelConfig,
    num_wafers: int,
    config: Optional[SimulatorConfig] = None,
    num_microbatches: int = 16,
    max_tatp: int = 32,
    plan_cache: Optional[PlanCache] = None,
    wafer_config=None,
) -> MultiWaferResult:
    """Evaluate one scheme + mapping engine on a multi-wafer system."""
    if num_wafers < 1:
        raise ValueError("num_wafers must be >= 1")
    config = config or SimulatorConfig()
    plan_cache = plan_cache if plan_cache is not None else PlanCache()
    system = MultiWaferSystem(num_wafers, wafer_config=wafer_config)
    wafer = system.wafers[0]
    simulator = WaferSimulator(wafer, config)
    dies_per_wafer = wafer.config.num_dies

    best: Optional[MultiWaferResult] = None
    fallback: Optional[MultiWaferResult] = None

    for pp in pipeline_degrees_for(scheme, num_wafers):
        stage_dies = system.total_dies // pp
        if stage_dies < 1 or stage_dies > dies_per_wafer:
            continue
        specs = candidate_specs(
            scheme, system.total_dies,
            max_tp=min(32, model.num_heads),
            max_tatp=max_tatp,
            pipeline_degrees=(pp,),
        )
        specs = prune_specs(specs, model, wafer.config, memory_margin=2.0,
                            plan_cache=plan_cache)
        for spec in specs:
            result = _evaluate_spec(
                scheme, engine, model, spec, system, simulator, config,
                num_microbatches, plan_cache)
            if result.oom:
                if fallback is None or result.step_time < fallback.step_time:
                    fallback = result
                continue
            if best is None or result.step_time < best.step_time:
                best = result
    if best is not None:
        return best
    if fallback is not None:
        return fallback
    raise ValueError(
        f"no feasible configuration found for {model.name} on {num_wafers} wafers")


def _evaluate_spec(
    scheme: BaselineScheme,
    engine: str,
    model: ModelConfig,
    spec: ParallelSpec,
    system: MultiWaferSystem,
    simulator: WaferSimulator,
    config: SimulatorConfig,
    num_microbatches: int,
    plan_cache: PlanCache,
) -> MultiWaferResult:
    """Simulate one pipelined configuration on the multi-wafer system."""
    plan = plan_cache.analyze(
        model, spec, num_devices=spec.total_degree,
        num_microbatches=num_microbatches)
    report = simulator.simulate(plan, engine=engine)

    # The intra-stage simulation already contains the bubble for spec.pp; the
    # inter-stage transfers crossing wafers add the inter-wafer link cost.
    boundary_bytes = (
        model.batch_size / max(spec.data_parallel_degree, 1) / num_microbatches
        * model.seq_length / max(spec.sequence_split_degree, 1)
        * model.hidden_size * model.dtype.bytes
    )
    cross_wafer_time = 0.0
    for stage in range(spec.pp - 1):
        if system.stage_boundary_crosses_wafer(stage, spec.pp):
            cross_wafer_time += 2 * num_microbatches * \
                system.inter_stage_transfer_time(stage, spec.pp, boundary_bytes)

    step_time = report.step_time + cross_wafer_time
    throughput = model.tokens_per_batch / step_time if step_time > 0 else 0.0
    return MultiWaferResult(
        scheme=scheme,
        engine=engine,
        model=model,
        num_wafers=system.num_wafers,
        best_spec=spec,
        step_time=step_time,
        compute_time=report.compute_time,
        comm_time=report.total_comm_time + cross_wafer_time,
        bubble_time=report.bubble_time,
        throughput=throughput,
        oom=report.oom,
        report=report,
    )
