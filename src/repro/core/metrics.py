"""Metric helpers shared by the experiment runners.

The figures of the paper present normalised quantities (latency normalised to
the slowest baseline, throughput normalised to a reference, power breakdowns
summing to one), speedups, and averages across models; this module keeps that
arithmetic in one place.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence


def speedup(baseline_time: float, optimized_time: float) -> float:
    """Ratio of baseline time to optimized time (>1 means faster)."""
    if optimized_time <= 0:
        raise ValueError(f"optimized_time must be positive, got {optimized_time}")
    if baseline_time < 0:
        raise ValueError(f"baseline_time must be non-negative, got {baseline_time}")
    return baseline_time / optimized_time


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty iterable)."""
    items = [value for value in values]
    if not items:
        return 0.0
    if any(value <= 0 for value in items):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in items) / len(items))


def normalize_to(
    values: Mapping[str, float], reference_key: Optional[str] = None
) -> Dict[str, float]:
    """Normalise a mapping of values to one of its entries.

    Args:
        values: name -> value.
        reference_key: the entry everything is divided by; defaults to the
            largest value (so the result is in (0, 1], matching how the paper
            normalises latency bars).
    """
    if not values:
        return {}
    if reference_key is None:
        reference_key = max(values, key=lambda key: values[key])
    reference = values[reference_key]
    if reference <= 0:
        raise ValueError(f"reference value for '{reference_key}' must be positive")
    return {key: value / reference for key, value in values.items()}


def normalize_breakdown(breakdown: Mapping[str, float]) -> Dict[str, float]:
    """Normalise a breakdown so its components sum to 1.0."""
    total = sum(breakdown.values())
    if total <= 0:
        return {key: 0.0 for key in breakdown}
    return {key: value / total for key, value in breakdown.items()}


def average_speedup(
    baseline_times: Sequence[float], optimized_times: Sequence[float]
) -> float:
    """Geometric-mean speedup across paired measurements."""
    if len(baseline_times) != len(optimized_times):
        raise ValueError("baseline and optimized sequences must have equal length")
    ratios = [speedup(base, opt) for base, opt in zip(baseline_times, optimized_times)]
    return geometric_mean(ratios)


def best_non_oom(reports: Mapping[str, "object"]) -> Optional[str]:
    """Key of the fastest non-OOM report in a mapping of simulation reports."""
    best_key: Optional[str] = None
    best_time = math.inf
    for key, report in reports.items():
        if getattr(report, "oom", False):
            continue
        step_time = getattr(report, "step_time", math.inf)
        if step_time < best_time:
            best_key, best_time = key, step_time
    return best_key
