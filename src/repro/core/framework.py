"""The TEMP framework and the baseline evaluation grid.

:class:`TEMP` is the end-to-end entry point of the reproduction: given a wafer
and a model, it searches the TATP-enabled configuration space with the
dual-level solver, maps the winner with the traffic-conscious mapping engine,
and returns the simulated training-step report.

:func:`run_baseline_scenario` is the engine room behind the Scenario API
(:mod:`repro.api`): it consumes a :class:`~repro.api.scenario.Scenario`,
enumerates the scheme's candidate configurations, simulates each with the
requested mapping engine, and keeps the best-performing configuration that
does not run out of memory (reporting the OOM if none fits).
:func:`simulate_fixed_spec` is the no-search variant for scenarios that pin
one :class:`ParallelSpec`.

:func:`evaluate_baseline` is the deprecated loose-kwargs predecessor; it is a
thin shim over the same search and returns bit-identical results (pinned by
``tests/api/test_service.py``). New code should build a ``Scenario`` and call
:meth:`repro.api.PlanService.evaluate` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.api.scenario import SolverSpec
from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.obs.tracing import span
from repro.parallelism.baselines import BaselineScheme, candidate_specs
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import SimulationReport, WaferSimulator
from repro.solver.dlws import DualLevelWaferSolver, SolverResult
from repro.solver.search_space import prune_specs
from repro.workloads.models import ModelConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.scenario import Scenario


@dataclass
class BaselineResult:
    """Best configuration found for one (scheme, mapping engine) pair."""

    scheme: BaselineScheme
    engine: str
    model: ModelConfig
    best_spec: Optional[ParallelSpec]
    report: Optional[SimulationReport]
    oom: bool
    candidates_evaluated: int
    all_reports: Dict[str, SimulationReport] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Readable label like "mesp+gmap" used in figures."""
        return f"{self.scheme.value}+{self.engine}"


def scheme_max_tp(scheme: BaselineScheme, model: ModelConfig) -> int:
    """The tensor-parallel cap a scheme's recipe allows on ``model``.

    Megatron recipes keep the tensor-parallel degree within one
    high-bandwidth group of 8; TEMP's own space may push TP (and TATP)
    further.
    """
    if scheme in (BaselineScheme.MEGATRON1, BaselineScheme.MESP):
        return min(8, model.num_heads)
    return min(32, model.num_heads)


def evaluate_baseline(
    scheme: BaselineScheme,
    engine: str,
    model: ModelConfig,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    max_tatp: int = 32,
    pipeline_degrees: Sequence[int] = (1,),
    max_candidates: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
) -> BaselineResult:
    """Deprecated loose-kwargs front of the baseline search.

    .. deprecated::
        Build a :class:`repro.api.scenario.Scenario` and call
        :meth:`repro.api.PlanService.evaluate` (or ``evaluate_raw``)
        instead. This shim delegates to the same search and returns
        bit-identical results.
    """
    warnings.warn(
        "evaluate_baseline() is deprecated; build a Scenario and use "
        "repro.api.PlanService.evaluate instead",
        DeprecationWarning, stacklevel=2)
    return _search_baseline(
        scheme, engine, model, wafer=wafer, config=config, max_tatp=max_tatp,
        pipeline_degrees=pipeline_degrees, max_candidates=max_candidates,
        plan_cache=plan_cache)


def run_baseline_scenario(
    scenario: "Scenario",
    plan_cache: Optional[PlanCache] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    report_cache=None,
) -> BaselineResult:
    """Run the single-wafer baseline search described by ``scenario``.

    ``wafer`` and ``config`` default to what the scenario's hardware spec
    resolves to; callers holding an already-built (identical) wafer may pass
    it to skip reconstruction. ``plan_cache`` lets a caller evaluating many
    scenarios — e.g. a sweep-orchestrator worker — share one memoised
    ``analyze_model`` across evaluations; the cache is pure memoisation, so
    results are identical with a private or a shared cache. ``report_cache``
    (a :class:`repro.costmodel.portfolio.ReportCache`) additionally memoises
    whole simulation reports across scenarios that pin the same wafer and
    simulator configuration.
    """
    solver = scenario.solver
    return _search_baseline(
        solver.resolved_scheme(),
        solver.engine,
        scenario.workload.resolve(),
        wafer=wafer if wafer is not None else scenario.hardware.resolve_wafer(),
        config=config if config is not None else scenario.hardware.resolve_simulator(),
        max_tatp=solver.max_tatp,
        pipeline_degrees=solver.pipeline_degrees,
        max_candidates=solver.max_candidates,
        plan_cache=plan_cache,
        report_cache=report_cache,
    )


def simulate_fixed_spec(
    scenario: "Scenario",
    plan_cache: Optional[PlanCache] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    report_cache=None,
) -> BaselineResult:
    """Evaluate the one pinned configuration of a fixed-spec scenario.

    No search happens: the solver spec's ``fixed_spec`` is analysed and
    simulated as-is (with the usual activation-checkpointing retry on OOM,
    unless the scenario disables ``allow_checkpoint_fallback``).
    """
    solver = scenario.solver
    spec = solver.resolve_fixed_spec()
    model = scenario.workload.resolve()
    wafer = wafer if wafer is not None else scenario.hardware.resolve_wafer()
    config = (config if config is not None
              else scenario.hardware.resolve_simulator())
    plan_cache = plan_cache if plan_cache is not None else PlanCache()
    simulator = WaferSimulator(wafer, config)
    with span("evaluate.simulate", spec=spec.label()):
        report = _simulate_with_fallback(
            simulator, plan_cache, model, spec, wafer.num_dies, solver.engine,
            allow_checkpointing=solver.allow_checkpoint_fallback,
            report_cache=report_cache)
    return BaselineResult(
        scheme=solver.resolved_scheme(),
        engine=solver.engine,
        model=model,
        best_spec=spec,
        report=report,
        oom=report.oom,
        candidates_evaluated=1,
        all_reports={spec.label(): report},
    )


def _simulate_with_fallback(
    simulator: WaferSimulator,
    plan_cache: PlanCache,
    model: ModelConfig,
    spec: ParallelSpec,
    num_devices: int,
    engine: str,
    allow_checkpointing: bool,
    report_cache=None,
) -> SimulationReport:
    """Simulate one spec, retrying with activation checkpointing on OOM.

    ``report_cache`` (duck-typed; see
    :class:`repro.costmodel.portfolio.ReportCache`) memoises the final report
    per ``(model, spec, num_devices, engine, allow_checkpointing)`` — valid
    only while the simulator's wafer and config stay fixed, which the cache
    owner guarantees by scoping one cache per hardware group.
    """
    if report_cache is not None:
        return report_cache.simulate(
            simulator, plan_cache, model, spec, num_devices, engine,
            allow_checkpointing)
    plan = plan_cache.analyze(model, spec, num_devices=num_devices)
    report = simulator.simulate(plan, engine=engine)
    if report.oom and allow_checkpointing:
        checkpointed_plan = plan_cache.analyze(
            model, spec, num_devices=num_devices,
            activation_checkpointing=True)
        checkpointed = simulator.simulate(checkpointed_plan, engine=engine)
        if not checkpointed.oom:
            report = checkpointed
    return report


def _search_baseline(
    scheme: BaselineScheme,
    engine: str,
    model: ModelConfig,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    max_tatp: int = 32,
    pipeline_degrees: Sequence[int] = (1,),
    max_candidates: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
    report_cache=None,
) -> BaselineResult:
    """Evaluate one scheme with one mapping engine on one model.

    Every candidate configuration of the scheme is analysed and simulated;
    the fastest configuration that fits in memory wins. When no configuration
    fits, the result is flagged OOM and carries the least-over-capacity
    report (this is how the OOM bars of Fig. 13 are produced).
    """
    wafer = wafer or WaferScaleChip()
    simulator = WaferSimulator(wafer, config)
    num_devices = wafer.num_dies
    # Pruning and the simulation loop below analyse the same specs; the plan
    # cache derives each execution plan exactly once.
    plan_cache = plan_cache if plan_cache is not None else PlanCache()
    with span("evaluate.candidates", scheme=scheme.value):
        all_specs = candidate_specs(
            scheme, num_devices,
            max_tp=scheme_max_tp(scheme, model),
            max_tatp=max_tatp,
            pipeline_degrees=pipeline_degrees,
        )
        specs = prune_specs(all_specs, model, wafer.config, memory_margin=2.0,
                            plan_cache=plan_cache)
        if not specs and all_specs:
            # Every configuration is hopelessly over capacity (e.g. Megatron-1
            # on a 175B model); keep the least-infeasible one so the OOM bar
            # can still be reported.
            specs = [min(
                all_specs,
                key=lambda s: plan_cache.analyze(
                    model, s, num_devices=num_devices).memory.total)]
        if max_candidates is not None and len(specs) > max_candidates:
            specs = downsample_specs(specs, max_candidates)

    reports: Dict[str, SimulationReport] = {}
    best_spec: Optional[ParallelSpec] = None
    best_report: Optional[SimulationReport] = None
    fallback_spec: Optional[ParallelSpec] = None
    fallback_report: Optional[SimulationReport] = None

    # Full activation recomputation is part of every scheme's toolbox except
    # Megatron-1's, whose replication-reliant execution the paper evaluates
    # with its published (selective-recompute-only) recipe.
    allow_checkpointing = scheme is not BaselineScheme.MEGATRON1

    with span("evaluate.simulate", candidates=len(specs)):
        for spec in specs:
            report = _simulate_with_fallback(
                simulator, plan_cache, model, spec, num_devices, engine,
                allow_checkpointing=allow_checkpointing,
                report_cache=report_cache)
            reports[spec.label()] = report
            if report.oom:
                if (fallback_report is None
                        or (report.memory_pressure
                            < fallback_report.memory_pressure)):
                    fallback_spec, fallback_report = spec, report
                continue
            if (best_report is None
                    or report.step_time < best_report.step_time):
                best_spec, best_report = spec, report

    if best_report is not None:
        return BaselineResult(
            scheme=scheme, engine=engine, model=model,
            best_spec=best_spec, report=best_report, oom=False,
            candidates_evaluated=len(specs), all_reports=reports)
    return BaselineResult(
        scheme=scheme, engine=engine, model=model,
        best_spec=fallback_spec, report=fallback_report, oom=True,
        candidates_evaluated=len(specs), all_reports=reports)


def downsample_specs(specs: List[ParallelSpec], limit: int) -> List[ParallelSpec]:
    """Evenly subsample a candidate list while keeping both endpoints."""
    if limit >= len(specs):
        return specs
    if limit == 1:
        return [specs[0]]
    # Spread limit indices over [0, len-1] inclusive; the stride is >= 1
    # (limit < len), so the rounded indices are strictly increasing and the
    # last one lands exactly on len(specs) - 1.
    stride = (len(specs) - 1) / (limit - 1)
    return [specs[min(round(index * stride), len(specs) - 1)]
            for index in range(limit)]


#: Backwards-compatible alias (the helper predates the Scenario API).
_downsample = downsample_specs


class TEMP:
    """End-to-end TEMP framework (TATP + TCME + DLWS).

    .. deprecated::
        Build a :class:`repro.api.scenario.Scenario` (with
        :meth:`~repro.api.scenario.SolverSpec.for_framework` for the ablation
        switches) and call :class:`repro.api.PlanService` instead. The class
        keeps working and returns bit-identical results.

    Args:
        wafer: the wafer-scale chip to optimise for (Table I, 4x8 by default).
        config: simulator efficiency knobs.
        enable_tatp: include TATP in the configuration space (ablation switch).
        enable_tcme: use the traffic-conscious mapping engine; when disabled
            the naive sequential mapper is used instead (ablation switch).
        max_tatp: cap on the TATP degree the solver explores.
        plan_cache: optional shared ``analyze_model`` memoisation (see
            :func:`run_baseline_scenario`).
    """

    def __init__(
        self,
        wafer: Optional[WaferScaleChip] = None,
        config: Optional[SimulatorConfig] = None,
        enable_tatp: bool = True,
        enable_tcme: bool = True,
        max_tatp: int = 32,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        warnings.warn(
            "TEMP() is deprecated; build a Scenario with "
            "SolverSpec.for_framework(...) and use repro.api.PlanService "
            "instead", DeprecationWarning, stacklevel=2)
        self.wafer = wafer or WaferScaleChip()
        self.config = config or SimulatorConfig()
        self.enable_tatp = enable_tatp
        self.enable_tcme = enable_tcme
        self.max_tatp = max_tatp if enable_tatp else 1
        self.plan_cache = plan_cache

    def _solver_spec(
        self,
        pipeline_degrees: Sequence[int] = (1,),
        max_candidates: Optional[int] = None,
    ) -> SolverSpec:
        """The framework's solver spec (single home of scheme resolution)."""
        return SolverSpec.for_framework(
            enable_tatp=self.enable_tatp,
            enable_tcme=self.enable_tcme,
            max_tatp=self.max_tatp,
            pipeline_degrees=pipeline_degrees,
            max_candidates=max_candidates,
        )

    @property
    def mapping_engine(self) -> str:
        """Name of the mapping engine the framework uses."""
        return self._solver_spec().engine

    def optimize(
        self,
        model: ModelConfig,
        pipeline_degrees: Sequence[int] = (1,),
        max_candidates: Optional[int] = None,
    ) -> BaselineResult:
        """Find and simulate the best TEMP configuration for ``model``.

        Returns a :class:`BaselineResult` so TEMP slots into the same reporting
        pipeline as the baselines.
        """
        solver = self._solver_spec(pipeline_degrees=pipeline_degrees,
                                   max_candidates=max_candidates)
        return _search_baseline(
            solver.resolved_scheme(),
            solver.engine,
            model,
            wafer=self.wafer,
            config=self.config,
            max_tatp=solver.max_tatp,
            pipeline_degrees=solver.pipeline_degrees,
            max_candidates=solver.max_candidates,
            plan_cache=self.plan_cache,
        )

    def solve(self, model: ModelConfig) -> SolverResult:
        """Run the full dual-level solver (DP + GA + simulator finalists)."""
        solver_spec = self._solver_spec()
        solver = DualLevelWaferSolver(
            wafer=self.wafer,
            config=self.config,
            mapping_engine=solver_spec.engine,
        )
        return solver.solve(model, scheme=solver_spec.resolved_scheme(),
                            max_tatp=solver_spec.max_tatp)
