"""The TEMP framework and the baseline evaluation grid.

:class:`TEMP` is the end-to-end entry point of the reproduction: given a wafer
and a model, it searches the TATP-enabled configuration space with the
dual-level solver, maps the winner with the traffic-conscious mapping engine,
and returns the simulated training-step report.

:func:`evaluate_baseline` evaluates one (partitioning scheme, mapping engine)
pair the way the paper's figures do: enumerate the scheme's candidate
configurations, simulate each with the given mapping engine, and keep the
best-performing configuration that does not run out of memory (reporting the
OOM if none fits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme, candidate_specs
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import SimulationReport, WaferSimulator
from repro.solver.dlws import DualLevelWaferSolver, SolverResult
from repro.solver.search_space import prune_specs
from repro.workloads.models import ModelConfig


@dataclass
class BaselineResult:
    """Best configuration found for one (scheme, mapping engine) pair."""

    scheme: BaselineScheme
    engine: str
    model: ModelConfig
    best_spec: Optional[ParallelSpec]
    report: Optional[SimulationReport]
    oom: bool
    candidates_evaluated: int
    all_reports: Dict[str, SimulationReport] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Readable label like "mesp+gmap" used in figures."""
        return f"{self.scheme.value}+{self.engine}"


def evaluate_baseline(
    scheme: BaselineScheme,
    engine: str,
    model: ModelConfig,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    max_tatp: int = 32,
    pipeline_degrees: Sequence[int] = (1,),
    max_candidates: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
) -> BaselineResult:
    """Evaluate one scheme with one mapping engine on one model.

    Every candidate configuration of the scheme is analysed and simulated; the
    fastest configuration that fits in memory wins. When no configuration
    fits, the result is flagged OOM and carries the least-over-capacity report
    (this is how the OOM bars of Fig. 13 are produced).

    ``plan_cache`` lets a caller evaluating many (scheme, engine, model) cells
    — e.g. a sweep-orchestrator worker — share one memoised ``analyze_model``
    across evaluations; the cache is pure memoisation, so results are
    identical with a private or a shared cache.
    """
    wafer = wafer or WaferScaleChip()
    simulator = WaferSimulator(wafer, config)
    num_devices = wafer.num_dies
    # Pruning and the simulation loop below analyse the same specs; the plan
    # cache derives each execution plan exactly once.
    plan_cache = plan_cache if plan_cache is not None else PlanCache()
    # Megatron recipes keep the tensor-parallel degree within one high-bandwidth
    # group of 8; TEMP's own space may push TP (and TATP) further.
    max_tp = min(32, model.num_heads)
    if scheme in (BaselineScheme.MEGATRON1, BaselineScheme.MESP):
        max_tp = min(8, model.num_heads)
    all_specs = candidate_specs(
        scheme, num_devices,
        max_tp=max_tp,
        max_tatp=max_tatp,
        pipeline_degrees=pipeline_degrees,
    )
    specs = prune_specs(all_specs, model, wafer.config, memory_margin=2.0,
                        plan_cache=plan_cache)
    if not specs and all_specs:
        # Every configuration is hopelessly over capacity (e.g. Megatron-1 on a
        # 175B model); keep the least-infeasible one so the OOM bar can still
        # be reported.
        specs = [min(
            all_specs,
            key=lambda s: plan_cache.analyze(model, s, num_devices=num_devices)
            .memory.total)]
    if max_candidates is not None and len(specs) > max_candidates:
        specs = _downsample(specs, max_candidates)

    reports: Dict[str, SimulationReport] = {}
    best_spec: Optional[ParallelSpec] = None
    best_report: Optional[SimulationReport] = None
    fallback_spec: Optional[ParallelSpec] = None
    fallback_report: Optional[SimulationReport] = None

    # Full activation recomputation is part of every scheme's toolbox except
    # Megatron-1's, whose replication-reliant execution the paper evaluates
    # with its published (selective-recompute-only) recipe.
    allow_checkpointing = scheme is not BaselineScheme.MEGATRON1

    for spec in specs:
        plan = plan_cache.analyze(model, spec, num_devices=num_devices)
        report = simulator.simulate(plan, engine=engine)
        if report.oom and allow_checkpointing:
            # Fall back to activation checkpointing (full recomputation)
            # before declaring the configuration infeasible.
            checkpointed_plan = plan_cache.analyze(
                model, spec, num_devices=num_devices,
                activation_checkpointing=True)
            checkpointed = simulator.simulate(checkpointed_plan, engine=engine)
            if not checkpointed.oom:
                report = checkpointed
        reports[spec.label()] = report
        if report.oom:
            if (fallback_report is None
                    or report.memory_pressure < fallback_report.memory_pressure):
                fallback_spec, fallback_report = spec, report
            continue
        if best_report is None or report.step_time < best_report.step_time:
            best_spec, best_report = spec, report

    if best_report is not None:
        return BaselineResult(
            scheme=scheme, engine=engine, model=model,
            best_spec=best_spec, report=best_report, oom=False,
            candidates_evaluated=len(specs), all_reports=reports)
    return BaselineResult(
        scheme=scheme, engine=engine, model=model,
        best_spec=fallback_spec, report=fallback_report, oom=True,
        candidates_evaluated=len(specs), all_reports=reports)


def _downsample(specs: List[ParallelSpec], limit: int) -> List[ParallelSpec]:
    """Evenly subsample a candidate list while keeping its endpoints."""
    if limit >= len(specs):
        return specs
    stride = len(specs) / limit
    return [specs[int(index * stride)] for index in range(limit)]


class TEMP:
    """End-to-end TEMP framework (TATP + TCME + DLWS).

    Args:
        wafer: the wafer-scale chip to optimise for (Table I, 4x8 by default).
        config: simulator efficiency knobs.
        enable_tatp: include TATP in the configuration space (ablation switch).
        enable_tcme: use the traffic-conscious mapping engine; when disabled
            the naive sequential mapper is used instead (ablation switch).
        max_tatp: cap on the TATP degree the solver explores.
        plan_cache: optional shared ``analyze_model`` memoisation (see
            :func:`evaluate_baseline`).
    """

    def __init__(
        self,
        wafer: Optional[WaferScaleChip] = None,
        config: Optional[SimulatorConfig] = None,
        enable_tatp: bool = True,
        enable_tcme: bool = True,
        max_tatp: int = 32,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.wafer = wafer or WaferScaleChip()
        self.config = config or SimulatorConfig()
        self.enable_tatp = enable_tatp
        self.enable_tcme = enable_tcme
        self.max_tatp = max_tatp if enable_tatp else 1
        self.plan_cache = plan_cache

    @property
    def mapping_engine(self) -> str:
        """Name of the mapping engine the framework uses."""
        return "tcme" if self.enable_tcme else "smap"

    def optimize(
        self,
        model: ModelConfig,
        pipeline_degrees: Sequence[int] = (1,),
        max_candidates: Optional[int] = None,
    ) -> BaselineResult:
        """Find and simulate the best TEMP configuration for ``model``.

        Returns a :class:`BaselineResult` so TEMP slots into the same reporting
        pipeline as the baselines.
        """
        scheme = BaselineScheme.TEMP if self.enable_tatp else BaselineScheme.FSDP
        result = evaluate_baseline(
            scheme,
            self.mapping_engine,
            model,
            wafer=self.wafer,
            config=self.config,
            max_tatp=self.max_tatp,
            pipeline_degrees=pipeline_degrees,
            max_candidates=max_candidates,
            plan_cache=self.plan_cache,
        )
        return result

    def solve(self, model: ModelConfig) -> SolverResult:
        """Run the full dual-level solver (DP + GA + simulator finalists)."""
        solver = DualLevelWaferSolver(
            wafer=self.wafer,
            config=self.config,
            mapping_engine=self.mapping_engine,
        )
        scheme = BaselineScheme.TEMP if self.enable_tatp else BaselineScheme.FSDP
        return solver.solve(model, scheme=scheme, max_tatp=self.max_tatp)
