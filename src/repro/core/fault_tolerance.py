"""Framework-level fault tolerance (Fig. 20).

The paper's three-step flow:

1. **fault localisation and classification** — identify whether the injected
   faults are link faults, core faults, or whole-die faults
   (:func:`repro.hardware.faults.classify_faults`),
2. **adaptive tensor partitioning** — re-balance computation so the slowest
   (most core-degraded) die no longer gates the step; in this analytical
   reproduction the re-balancing recovers the average (instead of the
   minimum) per-die throughput, up to a balancing efficiency,
3. **communication re-routing** — the mapping layer routes around failed links
   (BFS fallback in :func:`repro.mapping.routing.route_flow`); when the mesh
   becomes too fragmented for contiguous rings, TATP's hop factors and
   contention grow, producing the throughput cliff the paper reports near a
   35% link-fault rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.faults import FaultModel, FaultType, classify_faults
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import SimulationReport, WaferSimulator
from repro.workloads.models import ModelConfig

#: Fraction of the compute lost to imbalance that adaptive re-partitioning
#: recovers (1.0 would be perfect re-balancing).
REBALANCE_EFFICIENCY = 0.9


@dataclass
class FaultToleranceResult:
    """Outcome of evaluating a configuration under injected faults."""

    model: ModelConfig
    spec: ParallelSpec
    fault_counts: Dict[FaultType, int]
    healthy_throughput: float
    faulty_throughput: float
    report: SimulationReport
    rerouted: bool
    rebalanced: bool

    @property
    def relative_throughput(self) -> float:
        """Throughput under faults normalised to the healthy wafer."""
        if self.healthy_throughput <= 0:
            return 0.0
        return self.faulty_throughput / self.healthy_throughput


def evaluate_with_faults(
    model: ModelConfig,
    spec: ParallelSpec,
    fault_model: FaultModel,
    config: Optional[SimulatorConfig] = None,
    engine: str = "tcme",
    rebalance: bool = True,
    wafer_config=None,
) -> FaultToleranceResult:
    """Simulate ``spec`` on a healthy and a faulty wafer and compare.

    Args:
        model: the model being trained.
        spec: the parallel configuration (it must fit the healthy die count).
        fault_model: injected faults.
        config: simulator knobs.
        engine: mapping engine to use.
        rebalance: apply step 2 (adaptive re-partitioning) so core faults are
            absorbed by re-balancing instead of gating on the slowest die.
        wafer_config: geometry of the wafer the faults are injected into
            (Table I 4x8 by default); both the healthy and the faulty wafer
            are built from it.
    """
    config = config or SimulatorConfig()
    healthy_wafer = WaferScaleChip(wafer_config)
    faulty_wafer = WaferScaleChip(wafer_config, fault_model=fault_model)

    healthy_report = _simulate(model, spec, healthy_wafer, config, engine)
    try:
        faulty_report = _simulate(model, spec, faulty_wafer, config, engine)
        faulty_throughput = faulty_report.throughput
    except (ValueError, KeyError):
        # The mesh has fragmented: some dies can no longer reach each other, so
        # the configuration cannot run at all — the throughput cliff.
        faulty_report = healthy_report
        faulty_throughput = 0.0

    rebalanced = False
    if rebalance and fault_model.core_faults and faulty_throughput > 0:
        faulty_throughput = _rebalanced_throughput(
            model, spec, faulty_wafer, healthy_report, faulty_report)
        rebalanced = True

    return FaultToleranceResult(
        model=model,
        spec=spec,
        fault_counts=classify_faults(fault_model),
        healthy_throughput=healthy_report.throughput,
        faulty_throughput=faulty_throughput,
        report=faulty_report,
        rerouted=bool(fault_model.failed_links),
        rebalanced=rebalanced,
    )


def _simulate(
    model: ModelConfig,
    spec: ParallelSpec,
    wafer: WaferScaleChip,
    config: SimulatorConfig,
    engine: str,
) -> SimulationReport:
    simulator = WaferSimulator(wafer, config)
    plan = analyze_model(model, spec, num_devices=spec.total_degree)
    return simulator.simulate(plan, engine=engine)


def _rebalanced_throughput(
    model: ModelConfig,
    spec: ParallelSpec,
    wafer: WaferScaleChip,
    healthy_report: SimulationReport,
    faulty_report: SimulationReport,
) -> float:
    """Step 2: adaptive tensor partitioning re-balances core-fault losses.

    Without re-balancing the step is gated by the slowest die; with it, each
    die receives work proportional to its surviving compute, so the effective
    loss approaches the *average* core-fault fraction (scaled by the
    re-balancing efficiency).
    """
    healthy_flops = wafer.config.die.peak_flops
    die_flops = [wafer.die(d).peak_flops for d in wafer.healthy_dies()]
    if not die_flops or healthy_flops <= 0:
        return faulty_report.throughput
    average_capacity = sum(die_flops) / (len(die_flops) * healthy_flops)
    slowest_capacity = min(die_flops) / healthy_flops
    if slowest_capacity <= 0:
        return faulty_report.throughput
    # The un-rebalanced run already reflects the slowest die; undo that and
    # apply the (partially) recovered average capacity instead.
    recovered_capacity = (
        slowest_capacity
        + (average_capacity - slowest_capacity) * REBALANCE_EFFICIENCY
    )
    improvement = recovered_capacity / slowest_capacity
    compute_time = faulty_report.compute_time / improvement
    other_time = faulty_report.step_time - faulty_report.compute_time
    new_step_time = compute_time + other_time
    if new_step_time <= 0:
        return faulty_report.throughput
    return model.tokens_per_batch / new_step_time
