"""The TEMP framework: end-to-end partition-mapping co-optimisation.

* :mod:`repro.core.framework` — the :class:`TEMP` entry point plus the baseline
  evaluation helpers (scheme x mapping-engine grid of the paper's figures) and
  the ablation switches (+TATP, +TCME).
* :mod:`repro.core.metrics` — normalisation and aggregation helpers for the
  figures (speedups, geometric means, breakdown tables).
* :mod:`repro.core.multiwafer` — pipeline scheduling across multiple wafers
  (Fig. 19).
* :mod:`repro.core.fault_tolerance` — the three-step fault-tolerance flow of
  Fig. 20 (localise/classify, re-balance partitions, re-route communication).
"""

from repro.core.framework import TEMP, BaselineResult, evaluate_baseline
from repro.core.metrics import geometric_mean, normalize_to, speedup
from repro.core.multiwafer import MultiWaferResult, evaluate_multiwafer
from repro.core.fault_tolerance import FaultToleranceResult, evaluate_with_faults

__all__ = [
    "TEMP",
    "BaselineResult",
    "evaluate_baseline",
    "geometric_mean",
    "normalize_to",
    "speedup",
    "MultiWaferResult",
    "evaluate_multiwafer",
    "FaultToleranceResult",
    "evaluate_with_faults",
]
