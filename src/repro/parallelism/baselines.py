"""Baseline partitioning schemes (Megatron-1, Megatron-3/MeSP, FSDP).

The paper's six baselines combine three partitioning schemes with two mapping
engines. The schemes differ in which parallelism dimensions they may use:

* **Megatron-1** — hierarchical DP x TP (x PP on multi-wafer systems); TP
  replicates block-boundary activations.
* **MeSP** (Megatron-3) — DP x TP with sequence parallelism coupled to the TP
  group (``sp_within_tp``) plus optional context parallelism for long
  sequences.
* **FSDP** — fully-sharded data parallelism, optionally nested under plain DP.
* **TEMP** — the full search space including TATP (used by the framework
  itself rather than as a baseline).

Each scheme exposes the set of candidate :class:`ParallelSpec` configurations
it is allowed to pick from; the framework evaluates all of them through the
simulator and keeps the best non-OOM configuration, which is how the paper
reports each baseline "on its best-performing configuration".
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, List, Optional

from repro.parallelism.spec import ParallelSpec


class BaselineScheme(Enum):
    """Partitioning schemes used as baselines (plus TEMP itself)."""

    MEGATRON1 = "megatron1"
    MESP = "mesp"
    FSDP = "fsdp"
    TEMP = "temp"


def _divisors(value: int, cap: Optional[int] = None) -> List[int]:
    """Divisors of ``value`` up to ``cap`` (defaults to ``value``)."""
    limit = cap if cap is not None else value
    return [d for d in range(1, min(value, limit) + 1) if value % d == 0]


def megatron1_spec(num_devices: int, tp: int, pp: int = 1) -> ParallelSpec:
    """A Megatron-1 configuration: DP fills whatever TP and PP leave over."""
    if num_devices % (tp * pp):
        raise ValueError(
            f"tp={tp} * pp={pp} does not divide device count {num_devices}")
    return ParallelSpec(dp=num_devices // (tp * pp), tp=tp, pp=pp,
                        zero1_optimizer=False)


def mesp_spec(num_devices: int, tp: int, cp: int = 1, pp: int = 1) -> ParallelSpec:
    """A Megatron-3 configuration: sequence parallelism coupled to TP."""
    if num_devices % (tp * cp * pp):
        raise ValueError(
            f"tp={tp} * cp={cp} * pp={pp} does not divide {num_devices}")
    dp = num_devices // (tp * cp * pp)
    return ParallelSpec(dp=dp, tp=tp, cp=cp, pp=pp, sp_within_tp=tp > 1)


def fsdp_spec(num_devices: int, fsdp: Optional[int] = None, pp: int = 1) -> ParallelSpec:
    """An FSDP configuration (fully sharded across ``fsdp`` devices)."""
    shard = fsdp if fsdp is not None else num_devices // pp
    if num_devices % (shard * pp):
        raise ValueError(
            f"fsdp={shard} * pp={pp} does not divide device count {num_devices}")
    dp = num_devices // (shard * pp)
    return ParallelSpec(dp=dp, fsdp=shard, pp=pp)


def candidate_specs(
    scheme: BaselineScheme,
    num_devices: int,
    max_tp: int = 32,
    max_tatp: int = 32,
    pipeline_degrees: Iterable[int] = (1,),
) -> List[ParallelSpec]:
    """Enumerate the configurations a scheme is allowed to choose from.

    Args:
        scheme: which partitioning scheme.
        num_devices: devices available to the scheme.
        max_tp: cap on the tensor-parallel degree.
        max_tatp: cap on the TATP degree explored by TEMP.
        pipeline_degrees: pipeline degrees to combine with (used for the
            multi-wafer study; single-wafer runs keep PP = 1).

    Returns:
        All valid :class:`ParallelSpec` candidates for the scheme.
    """
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    specs: List[ParallelSpec] = []
    for pp in pipeline_degrees:
        if pp <= 0 or num_devices % pp:
            continue
        intra = num_devices // pp
        if scheme is BaselineScheme.MEGATRON1:
            specs.extend(_megatron1_candidates(intra, pp, max_tp))
        elif scheme is BaselineScheme.MESP:
            specs.extend(_mesp_candidates(intra, pp, max_tp))
        elif scheme is BaselineScheme.FSDP:
            specs.extend(_fsdp_candidates(intra, pp))
        elif scheme is BaselineScheme.TEMP:
            specs.extend(_temp_candidates(intra, pp, max_tp, max_tatp))
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown scheme {scheme}")
    return _deduplicate(specs)


def _megatron1_candidates(intra: int, pp: int, max_tp: int) -> List[ParallelSpec]:
    # Megatron-1 predates the distributed optimizer: its FP32 state is
    # replicated across data-parallel ranks.
    return [
        ParallelSpec(dp=intra // tp, tp=tp, pp=pp, zero1_optimizer=False)
        for tp in _divisors(intra, max_tp)
    ]


def _mesp_candidates(intra: int, pp: int, max_tp: int) -> List[ParallelSpec]:
    specs: List[ParallelSpec] = []
    for tp in _divisors(intra, max_tp):
        remaining = intra // tp
        for cp in _divisors(remaining):
            dp = remaining // cp
            specs.append(ParallelSpec(
                dp=dp, tp=tp, cp=cp, pp=pp, sp_within_tp=tp > 1))
    return specs


def _fsdp_candidates(intra: int, pp: int) -> List[ParallelSpec]:
    specs: List[ParallelSpec] = []
    for shard in _divisors(intra):
        if shard == 1 and intra > 1:
            # Pure DP without sharding is not an FSDP configuration.
            continue
        specs.append(ParallelSpec(dp=intra // shard, fsdp=shard, pp=pp))
    return specs


def _temp_candidates(
    intra: int, pp: int, max_tp: int, max_tatp: int
) -> List[ParallelSpec]:
    specs: List[ParallelSpec] = []
    for spec in ParallelSpec.enumerate(
            intra, dimensions=("dp", "tp", "sp", "tatp"),
            max_degree_per_dim=max(max_tp, max_tatp)):
        if spec.tp > max_tp or spec.tatp > max_tatp:
            continue
        specs.append(spec.with_degree("pp", pp))
    return specs


def _deduplicate(specs: List[ParallelSpec]) -> List[ParallelSpec]:
    seen = set()
    unique: List[ParallelSpec] = []
    for spec in specs:
        key = (spec.dp, spec.tp, spec.sp, spec.cp, spec.fsdp, spec.tatp,
               spec.pp, spec.sp_within_tp)
        if key not in seen:
            seen.add(key)
            unique.append(spec)
    return unique
