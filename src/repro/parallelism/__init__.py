"""Parallelism strategies: DP / TP / SP / CP / PP / FSDP and the paper's TATP.

* :mod:`repro.parallelism.spec` — :class:`ParallelSpec`, the (DP, TP, SP, CP,
  FSDP, TATP, PP) degree tuple that names a hybrid strategy, as in the
  "(1,4,1,8)" notation of Fig. 17/18.
* :mod:`repro.parallelism.comm` — communication-task abstractions (collective
  type, group, per-device volume) shared between the strategy analysis and the
  mapping engines.
* :mod:`repro.parallelism.tatp` — the tensor-stream partition paradigm (TSPP)
  and its topology-aware realisation TATP, including Algorithm 1's
  bidirectional compute-and-relay orchestration and the selective
  weight-vs-activation streaming policy.
* :mod:`repro.parallelism.strategies` — the analytical execution-plan builder:
  for a model, a spec, and a die count it derives per-die FLOPs, the
  mixed-precision memory footprint, and the communication tasks each strategy
  induces.
* :mod:`repro.parallelism.baselines` — the baseline partitioning schemes
  (Megatron-1, Megatron-3/MeSP, FSDP) used throughout the evaluation.
* :mod:`repro.parallelism.representation` — the coordinate-based unified
  parallelism representation of Fig. 10 (sub-tensor coordinates and their
  spatio-temporal mapping onto dies).
"""

from repro.parallelism.spec import ParallelSpec
from repro.parallelism.comm import CollectiveType, CommTask
from repro.parallelism.tatp import (
    StreamChoice,
    TATPSchedule,
    TransferOp,
    bidirectional_schedule,
    naive_ring_schedule,
    select_stream_tensor,
)
from repro.parallelism.strategies import ExecutionPlan, analyze_layer, analyze_model
from repro.parallelism.baselines import (
    BaselineScheme,
    fsdp_spec,
    megatron1_spec,
    mesp_spec,
    candidate_specs,
)
from repro.parallelism.representation import (
    SubTensorCoordinate,
    UnifiedMapping,
    build_unified_mapping,
)

__all__ = [
    "ParallelSpec",
    "CollectiveType",
    "CommTask",
    "StreamChoice",
    "TATPSchedule",
    "TransferOp",
    "bidirectional_schedule",
    "naive_ring_schedule",
    "select_stream_tensor",
    "ExecutionPlan",
    "analyze_layer",
    "analyze_model",
    "BaselineScheme",
    "fsdp_spec",
    "megatron1_spec",
    "mesp_spec",
    "candidate_specs",
    "SubTensorCoordinate",
    "UnifiedMapping",
    "build_unified_mapping",
]
