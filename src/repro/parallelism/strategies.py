"""Analytical execution plans for hybrid parallel strategies.

Given a model, a :class:`~repro.parallelism.spec.ParallelSpec`, and the number
of devices it runs on, :func:`analyze_model` derives everything the simulator
needs:

* per-device FLOPs of one training step,
* the per-device mixed-precision memory footprint (weights, gradients,
  optimizer state, activations) including the replication each strategy
  induces,
* the list of :class:`~repro.parallelism.comm.CommTask` records describing
  the collectives, point-to-point transfers, and TATP streaming traffic of the
  step.

The analysis captures the structural differences the paper's evaluation turns
on:

* Megatron-style TP replicates the block-boundary activations inside the TP
  group and pays two activation all-reduces per layer in each direction;
* SP removes that replication (Megatron-3) by splitting the norm/dropout
  regions and converting the all-reduces into all-gather + reduce-scatter
  pairs of the same volume;
* CP splits the attention context and pays a KV all-gather per layer;
* FSDP shards weights/gradients/optimizer but pays per-layer weight
  all-gathers (forward and backward) plus a gradient reduce-scatter;
* DP replicates everything and pays one (overlappable) gradient all-reduce;
* TATP shards inputs *and* weights with no replication and only streams the
  smaller operand to physical neighbours, fully overlappable with compute;
* PP splits layers into stages and pays per-microbatch activation transfers
  plus the pipeline bubble (accounted for by the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.parallelism.comm import (
    CollectiveType,
    CommTask,
    collective_wire_bytes,
)
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.tatp import StreamChoice, select_stream_tensor
from repro.workloads.models import ModelConfig
from repro.workloads.training import MemoryFootprint, TrainingStep

#: Fraction of per-layer activations that Megatron TP shards across the TP
#: group (FFN intermediates and attention internals); the remainder lives in
#: the norm/dropout/residual regions and is replicated unless SP splits it.
TP_SHARDED_ACTIVATION_FRACTION = 0.6

#: Default number of pipeline microbatches per training step.
DEFAULT_MICROBATCHES = 8

#: Sequences per data-parallel rank that are live at once. Training uses
#: gradient accumulation: the global batch is processed micro-batch by
#: micro-batch, so only one micro-batch's activations occupy memory at a time.
MICRO_BATCH_SEQUENCES = 1


@dataclass
class ExecutionPlan:
    """Everything the simulator needs to cost one training step of a strategy.

    Attributes:
        model: the model configuration.
        spec: the hybrid parallel specification.
        num_devices: devices the plan occupies (``spec.total_degree``).
        flops_per_device: FLOPs each device executes per training step.
        memory: per-device memory footprint in bytes.
        comm_tasks: critical-path communication tasks (per step).
        overlap_tasks: communication that can hide under computation
            (TATP streaming, DP gradient all-reduce).
        num_microbatches: microbatch count used when ``spec.pp > 1``.
        tatp_rounds_per_layer: TATP rounds executed per layer (0 if unused).
        stream_choice: operand TATP streams, when TATP is active.
    """

    model: ModelConfig
    spec: ParallelSpec
    num_devices: int
    flops_per_device: float
    memory: MemoryFootprint
    comm_tasks: List[CommTask] = field(default_factory=list)
    overlap_tasks: List[CommTask] = field(default_factory=list)
    num_microbatches: int = DEFAULT_MICROBATCHES
    tatp_rounds_per_layer: int = 0
    stream_choice: Optional[StreamChoice] = None

    @property
    def all_tasks(self) -> List[CommTask]:
        """Critical-path plus overlappable tasks."""
        return list(self.comm_tasks) + list(self.overlap_tasks)

    def critical_comm_bytes(self) -> float:
        """Total per-device wire bytes on the critical path."""
        return sum(task.bytes_per_device * task.count for task in self.comm_tasks)

    def overlap_comm_bytes(self) -> float:
        """Total per-device wire bytes that can hide under compute."""
        return sum(task.bytes_per_device * task.count for task in self.overlap_tasks)

    def total_comm_bytes(self) -> float:
        """Total per-device wire bytes of the step."""
        return self.critical_comm_bytes() + self.overlap_comm_bytes()

    def tasks_by_dimension(self) -> Dict[str, float]:
        """Per-dimension wire bytes, for the breakdown plots."""
        breakdown: Dict[str, float] = {}
        for task in self.all_tasks:
            key = task.dimension or task.kind.value
            breakdown[key] = breakdown.get(key, 0.0) + (
                task.bytes_per_device * task.count
            )
        return breakdown


def analyze_model(
    model: ModelConfig,
    spec: ParallelSpec,
    num_devices: Optional[int] = None,
    activation_checkpointing: bool = False,
    num_microbatches: int = DEFAULT_MICROBATCHES,
) -> ExecutionPlan:
    """Build the execution plan of ``model`` under ``spec``.

    Args:
        model: the model configuration (Table II entry or custom).
        spec: the hybrid parallel specification; its total degree must equal
            ``num_devices`` when that is given.
        num_devices: number of devices; defaults to ``spec.total_degree``.
        activation_checkpointing: enable selective recomputation (reduces
            activation memory, adds ~1/3 more compute).
        num_microbatches: pipeline microbatches when ``spec.pp > 1``.

    Returns:
        The :class:`ExecutionPlan` for one training step.
    """
    devices = num_devices if num_devices is not None else spec.total_degree
    spec.validate_for(devices)
    step = TrainingStep.from_model(
        model, activation_checkpointing=activation_checkpointing)

    flops_per_device = step.flops / devices
    memory = _memory_footprint(model, spec, step)
    critical, overlap, stream_choice = _communication_tasks(
        model, spec, step, num_microbatches)

    return ExecutionPlan(
        model=model,
        spec=spec,
        num_devices=devices,
        flops_per_device=flops_per_device,
        memory=memory,
        comm_tasks=critical,
        overlap_tasks=overlap,
        num_microbatches=num_microbatches if spec.pp > 1 else 1,
        tatp_rounds_per_layer=spec.tatp if spec.tatp > 1 else 0,
        stream_choice=stream_choice,
    )


def analyze_layer(
    model: ModelConfig,
    spec: ParallelSpec,
    num_devices: Optional[int] = None,
) -> ExecutionPlan:
    """Execution plan of a single representative transformer layer.

    Used by the solver's dynamic program, which optimises one layer at a time
    and scales by the layer count.
    """
    single_layer = model.with_overrides(num_layers=1)
    return analyze_model(single_layer, spec, num_devices=num_devices)


# Memory ---------------------------------------------------------------------


def _memory_footprint(
    model: ModelConfig, spec: ParallelSpec, step: TrainingStep
) -> MemoryFootprint:
    """Per-device memory footprint under ``spec``.

    Sharding assumptions, matching standard Megatron / FSDP practice:

    * weights and gradients are sharded by TP, TATP, FSDP and PP and
      replicated across DP/SP/CP ranks,
    * the FP32 optimizer state additionally shards across the data-parallel
      ranks (ZeRO-1 style distributed optimizer),
    * only one micro-batch's activations are live at a time thanks to
      gradient accumulation; TP shards only its "internal" activation
      fraction while the norm-region activations are replicated unless
      Megatron-3-style SP splits them.
    """
    weight_shard = spec.tp * spec.tatp * spec.fsdp * spec.pp
    state_shard = weight_shard * (spec.dp if spec.zero1_optimizer else 1)

    weights = step.weight_bytes / weight_shard
    gradients = step.gradient_bytes / weight_shard
    optimizer = step.optimizer_bytes / state_shard

    batch_seq_divisor = (
        spec.dp * spec.fsdp * spec.cp * spec.tatp * spec.pp * spec.sp
    )
    sharded_fraction = TP_SHARDED_ACTIVATION_FRACTION
    replicated_fraction = 1.0 - sharded_fraction
    norm_region_divisor = spec.effective_sp if spec.sp_within_tp else 1
    tp_factor = (
        sharded_fraction / spec.tp + replicated_fraction / norm_region_divisor
    )
    # Gradient accumulation keeps only MICRO_BATCH_SEQUENCES sequences per
    # data-parallel rank in flight.
    sequences_per_rank = model.batch_size / spec.data_parallel_degree
    live_fraction = min(1.0, MICRO_BATCH_SEQUENCES / max(sequences_per_rank, 1.0))
    activations = (
        step.activation_bytes / batch_seq_divisor * tp_factor * live_fraction
    )

    return MemoryFootprint(
        weights=weights,
        gradients=gradients,
        optimizer=optimizer,
        activations=activations,
    )


# Communication ----------------------------------------------------------------


def _communication_tasks(
    model: ModelConfig,
    spec: ParallelSpec,
    step: TrainingStep,
    num_microbatches: int,
) -> (List[CommTask], List[CommTask], Optional[StreamChoice]):
    """Derive the critical-path and overlappable communication of one step."""
    critical: List[CommTask] = []
    overlap: List[CommTask] = []

    layers = model.num_layers
    layers_per_stage = max(1, layers // spec.pp)
    dtype_bytes = model.dtype.bytes

    # Per-device tensor slice sizes used repeatedly below.
    batch_shard = model.batch_size / spec.data_parallel_degree
    seq_shard = model.seq_length / spec.sequence_split_degree
    # Volume of the block-boundary activation the TP collectives move: the
    # full sequence inside the CP shard (SP shards it for storage, but the
    # collective still has to materialise / reduce the whole thing).
    tp_collective_buffer = (
        batch_shard * (model.seq_length / spec.cp) * model.hidden_size
        * dtype_bytes / spec.tatp
    )
    activation_slice = (
        batch_shard * seq_shard * model.hidden_size * dtype_bytes / spec.tatp
    )
    embedding_params = model.vocab_size * model.hidden_size
    layer_weight_bytes = (
        (model.num_parameters - embedding_params) / layers * dtype_bytes
    )
    layer_weight_shard = layer_weight_bytes / (spec.tp * spec.tatp)
    grad_shard_bytes = step.gradient_bytes / (spec.tp * spec.tatp * spec.fsdp * spec.pp)

    # Tensor parallelism: two activation collectives per layer in forward and
    # two in backward (Megatron); with SP they become all-gather +
    # reduce-scatter pairs of identical volume, so the cost model treats the
    # volume the same but SP earns its memory saving above.
    if spec.tp > 1:
        kind = (CollectiveType.ALL_GATHER if spec.sp_within_tp
                else CollectiveType.ALL_REDUCE)
        wire = collective_wire_bytes(
            CollectiveType.ALL_REDUCE, tp_collective_buffer, spec.tp)
        critical.append(CommTask(
            kind=kind,
            group_size=spec.tp,
            bytes_per_device=wire,
            count=4.0 * layers_per_stage,
            label="tp-activation-collective",
            overlappable=False,
            dimension="tp",
        ))

    # Sequence parallelism without TP (Ulysses/ring style): the attention
    # block needs the full sequence, so each layer all-gathers the activation
    # slice in forward and reduce-scatters in backward.
    if spec.sp > 1 and spec.tp == 1:
        wire = collective_wire_bytes(
            CollectiveType.ALL_GATHER,
            activation_slice * spec.sp,
            spec.sp,
        )
        critical.append(CommTask(
            kind=CollectiveType.ALL_GATHER,
            group_size=spec.sp,
            bytes_per_device=wire,
            count=2.0 * layers_per_stage,
            label="sp-sequence-allgather",
            overlappable=False,
            dimension="sp",
        ))

    # Context parallelism: KV tensors are gathered across the CP group for the
    # attention computation of every layer.
    if spec.cp > 1:
        kv_bytes = 2.0 * batch_shard * model.seq_length * model.hidden_size * dtype_bytes
        wire = collective_wire_bytes(
            CollectiveType.ALL_GATHER, kv_bytes / spec.tp, spec.cp)
        critical.append(CommTask(
            kind=CollectiveType.ALL_GATHER,
            group_size=spec.cp,
            bytes_per_device=wire,
            count=2.0 * layers_per_stage,
            label="cp-kv-allgather",
            overlappable=False,
            dimension="cp",
        ))

    # FSDP: gather the layer's weight shards before the forward and backward
    # of every layer, and reduce-scatter its gradients afterwards.
    if spec.fsdp > 1:
        gather_wire = collective_wire_bytes(
            CollectiveType.ALL_GATHER, layer_weight_shard, spec.fsdp)
        critical.append(CommTask(
            kind=CollectiveType.ALL_GATHER,
            group_size=spec.fsdp,
            bytes_per_device=gather_wire,
            count=2.0 * layers_per_stage,
            label="fsdp-weight-allgather",
            overlappable=False,
            dimension="fsdp",
        ))
        rs_wire = collective_wire_bytes(
            CollectiveType.REDUCE_SCATTER, layer_weight_shard, spec.fsdp)
        critical.append(CommTask(
            kind=CollectiveType.REDUCE_SCATTER,
            group_size=spec.fsdp,
            bytes_per_device=rs_wire,
            count=1.0 * layers_per_stage,
            label="fsdp-grad-reducescatter",
            overlappable=False,
            dimension="fsdp",
        ))

    # Data parallelism: one gradient all-reduce per step. Following the
    # paper's cost model (Eq. 2), collective communication is exposed rather
    # than overlapped — only point-to-point streaming hides under compute.
    if spec.dp > 1:
        wire = collective_wire_bytes(
            CollectiveType.ALL_REDUCE, grad_shard_bytes / spec.fsdp, spec.dp)
        critical.append(CommTask(
            kind=CollectiveType.ALL_REDUCE,
            group_size=spec.dp,
            bytes_per_device=wire,
            count=1.0,
            label="dp-grad-allreduce",
            overlappable=False,
            dimension="dp",
        ))

    # TATP: stream the smaller operand between physical neighbours each round,
    # for the forward, backward, and gradient stages of every layer.
    stream_choice: Optional[StreamChoice] = None
    if spec.tatp > 1:
        layer_activation_bytes = (
            batch_shard * seq_shard * model.hidden_size * dtype_bytes)
        stream_choice = select_stream_tensor(
            layer_weight_shard, layer_activation_bytes)
        streamed = min(layer_weight_shard, layer_activation_bytes)
        wire = streamed * (spec.tatp - 1) / spec.tatp
        overlap.append(CommTask(
            kind=CollectiveType.STREAM,
            group_size=spec.tatp,
            bytes_per_device=wire,
            count=3.0 * layers_per_stage,
            label="tatp-stream",
            overlappable=True,
            dimension="tatp",
        ))

    # Pipeline parallelism: per-microbatch activation transfers at every stage
    # boundary, in forward and backward.
    if spec.pp > 1:
        boundary_bytes = (
            batch_shard / num_microbatches * seq_shard * model.hidden_size
            * dtype_bytes
        )
        critical.append(CommTask(
            kind=CollectiveType.P2P,
            group_size=2,
            bytes_per_device=boundary_bytes,
            count=2.0 * num_microbatches,
            label="pp-activation-p2p",
            overlappable=False,
            dimension="pp",
        ))

    return critical, overlap, stream_choice
