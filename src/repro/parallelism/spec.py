"""Parallelism specification.

A hybrid strategy is named by the degree of each constituent parallelism. The
paper writes configurations as ``(DP, TP, SP, TATP)`` tuples (Fig. 17/18),
optionally with FSDP replacing plain DP and PP appearing only on multi-wafer
systems (Fig. 19). :class:`ParallelSpec` captures all of these and validates
that the degrees multiply to the device count they are mapped onto.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class ParallelSpec:
    """Degrees of each parallelism dimension.

    Attributes:
        dp: data parallelism (batch split, full replicas).
        tp: Megatron-style tensor parallelism (weight split, activation
            replication inside the group).
        sp: sequence parallelism (activation split along the sequence in the
            norm/dropout regions, paired with TP in Megatron-3).
        cp: context parallelism (attention context split along the sequence).
        fsdp: fully-sharded data parallelism (batch split + weight sharding).
        tatp: the paper's topology-aware tensor-stream parallelism degree.
        pp: pipeline parallelism (used across wafers in Fig. 19).
        sp_within_tp: Megatron-3 style sequence parallelism that reuses the TP
            group's devices (activations sharded ``tp`` ways in the norm /
            dropout regions) instead of occupying a separate SP dimension.
        zero1_optimizer: whether the FP32 optimizer state is sharded across
            the data-parallel ranks (ZeRO-1 / Megatron distributed optimizer).
            The original Megatron-1 recipe replicates it instead.
    """

    dp: int = 1
    tp: int = 1
    sp: int = 1
    cp: int = 1
    fsdp: int = 1
    tatp: int = 1
    pp: int = 1
    sp_within_tp: bool = False
    zero1_optimizer: bool = True

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 1:
                raise ValueError(f"{name} degree must be >= 1, got {value}")
        if self.sp_within_tp and self.sp > 1:
            raise ValueError(
                "sp_within_tp reuses the TP group; set sp=1 when enabling it")

    # Views -----------------------------------------------------------------------

    def as_dict(self) -> Dict[str, int]:
        """Dictionary of degree names to values."""
        return {
            "dp": self.dp,
            "tp": self.tp,
            "sp": self.sp,
            "cp": self.cp,
            "fsdp": self.fsdp,
            "tatp": self.tatp,
            "pp": self.pp,
        }

    @property
    def intra_stage_degree(self) -> int:
        """Product of all degrees except pipeline parallelism."""
        return self.dp * self.tp * self.sp * self.cp * self.fsdp * self.tatp

    @property
    def total_degree(self) -> int:
        """Product of every degree (device count the spec requires)."""
        return self.intra_stage_degree * self.pp

    @property
    def data_parallel_degree(self) -> int:
        """Combined batch-splitting degree (DP and FSDP both split the batch)."""
        return self.dp * self.fsdp

    @property
    def sequence_split_degree(self) -> int:
        """Combined sequence-splitting degree from SP and CP.

        Megatron-3 style SP (``sp_within_tp``) shards the sequence across the
        TP group, so it contributes the TP degree here.
        """
        coupled = self.tp if self.sp_within_tp else 1
        return self.sp * self.cp * coupled

    @property
    def effective_sp(self) -> int:
        """Degree over which norm-region activations are sharded."""
        if self.sp_within_tp:
            return self.tp
        return self.sp

    def active_dimensions(self) -> List[str]:
        """Names of dimensions with degree > 1, in canonical order."""
        return [name for name, value in self.as_dict().items() if value > 1]

    def label(self) -> str:
        """Compact label like ``(2,1,1,16)`` meaning (DP, TP, SP, TATP).

        Pipeline, CP and FSDP degrees are appended only when non-trivial, to
        match how the paper annotates configurations.
        """
        sp_label = f"tp-coupled" if self.sp_within_tp else str(self.sp)
        base = f"(dp={self.dp},tp={self.tp},sp={sp_label},tatp={self.tatp}"
        extras = []
        if self.cp > 1:
            extras.append(f"cp={self.cp}")
        if self.fsdp > 1:
            extras.append(f"fsdp={self.fsdp}")
        if self.pp > 1:
            extras.append(f"pp={self.pp}")
        suffix = ("," + ",".join(extras)) if extras else ""
        return base + suffix + ")"

    # Validation / manipulation -----------------------------------------------------

    def validate_for(self, num_devices: int) -> None:
        """Check that this spec exactly fills ``num_devices`` devices.

        Raises:
            ValueError: when the degree product does not match.
        """
        if self.total_degree != num_devices:
            raise ValueError(
                f"spec {self.label()} needs {self.total_degree} devices but "
                f"{num_devices} are available"
            )

    def fits(self, num_devices: int) -> bool:
        """Whether the spec's total degree divides into ``num_devices``."""
        return self.total_degree <= num_devices and num_devices % self.total_degree == 0

    def without_pipeline(self) -> "ParallelSpec":
        """The intra-stage spec (pipeline degree forced to one)."""
        return replace(self, pp=1)

    def with_degree(self, name: str, value: int) -> "ParallelSpec":
        """Return a copy with one named degree replaced."""
        if name not in self.as_dict():
            raise KeyError(f"unknown parallelism dimension '{name}'")
        return replace(self, **{name: value})

    @classmethod
    def from_tuple(cls, dp: int, tp: int, sp: int, tatp: int, **kwargs: int) -> "ParallelSpec":
        """Build a spec from the paper's (DP, TP, SP, TATP) notation."""
        return cls(dp=dp, tp=tp, sp=sp, tatp=tatp, **kwargs)

    @staticmethod
    def enumerate(
        num_devices: int,
        dimensions: Tuple[str, ...] = ("dp", "tp", "sp", "tatp"),
        max_degree_per_dim: int = 64,
    ) -> Iterator["ParallelSpec"]:
        """Enumerate every spec over ``dimensions`` whose product is ``num_devices``.

        Degrees are restricted to divisors of ``num_devices`` (power-of-two
        wafers make these the only balanced choices) — this is the search space
        the DLWS solver explores.
        """
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        divisors = [d for d in range(1, min(num_devices, max_degree_per_dim) + 1)
                    if num_devices % d == 0]

        def recurse(index: int, remaining: int, chosen: Dict[str, int]):
            if index == len(dimensions):
                if remaining == 1:
                    yield ParallelSpec(**chosen)
                return
            name = dimensions[index]
            for degree in divisors:
                if remaining % degree:
                    continue
                chosen[name] = degree
                yield from recurse(index + 1, remaining // degree, chosen)
            chosen.pop(name, None)

        yield from recurse(0, num_devices, {})
