"""Coordinate-based unified parallelism representation (Fig. 10).

TCME needs to see every parallel strategy through the same lens so it can
detect communication contention *between* strategies. The paper's unified
representation names each sub-tensor by its coordinate along the split
dimensions (B, M, N, K) and records a spatio-temporal mapping: which die holds
which sub-tensor at which round.

This module builds that representation for a linear operator executed under a
hybrid spec: the tensors are split according to the per-dimension degrees, the
parallel groups are formed over a die list, and the TATP rounds stream the
sub-tensors between neighbouring dies while DP/TP/FSDP groups perform their
collectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.parallelism.spec import ParallelSpec
from repro.parallelism.tatp import bidirectional_schedule


@dataclass(frozen=True)
class SubTensorCoordinate:
    """Coordinate of a sub-tensor along the split dimensions.

    Attributes:
        tensor: which logical tensor ("input", "weight", "output").
        batch: index along the batch (B) split.
        sequence: index along the sequence (M) split.
        hidden: index along the input-hidden (N) split.
        intermediate: index along the output-hidden (K) split.
    """

    tensor: str
    batch: int = 0
    sequence: int = 0
    hidden: int = 0
    intermediate: int = 0

    def as_tuple(self) -> Tuple[str, int, int, int, int]:
        """Tuple form used as a dictionary key."""
        return (self.tensor, self.batch, self.sequence, self.hidden,
                self.intermediate)


@dataclass
class UnifiedMapping:
    """Spatio-temporal mapping of sub-tensors onto dies.

    Attributes:
        spec: the hybrid parallel spec the mapping realises.
        dies: the physical dies the operator occupies, in group order.
        groups: per-dimension parallel groups (lists of die ids).
        placement: ``placement[round][die]`` is the list of sub-tensor
            coordinates resident on the die at that round.
        compute_assignment: ``compute_assignment[round][die]`` is the output
            coordinate the die produces in that round.
        num_rounds: number of TATP rounds (1 when TATP is inactive).
    """

    spec: ParallelSpec
    dies: List[int]
    groups: Dict[str, List[List[int]]]
    placement: List[Dict[int, List[SubTensorCoordinate]]]
    compute_assignment: List[Dict[int, SubTensorCoordinate]]
    num_rounds: int

    def resident_coordinates(self, die: int, round_index: int = 0
                             ) -> List[SubTensorCoordinate]:
        """Sub-tensors resident on ``die`` at ``round_index``."""
        return list(self.placement[round_index].get(die, []))

    def has_replication(self, tensor: str) -> bool:
        """Whether any sub-tensor of ``tensor`` is resident on >1 die at round 0."""
        owners: Dict[Tuple, int] = {}
        for die, coords in self.placement[0].items():
            for coord in coords:
                if coord.tensor != tensor:
                    continue
                owners[coord.as_tuple()] = owners.get(coord.as_tuple(), 0) + 1
        return any(count > 1 for count in owners.values())


#: Default nesting order of parallel dimensions, outermost first. TATP is the
#: innermost dimension so its groups occupy consecutive die positions.
DEFAULT_DIMENSION_ORDER: Tuple[str, ...] = (
    "dp", "fsdp", "cp", "sp", "tp", "tatp")


def build_parallel_groups(
    spec: ParallelSpec,
    dies: Sequence[int],
    order: Sequence[str] = DEFAULT_DIMENSION_ORDER,
) -> Dict[str, List[List[int]]]:
    """Form per-dimension parallel groups over an ordered die list.

    Dimensions are nested following ``order`` (outermost first; the default
    puts DP outermost and TATP innermost, matching the hierarchical group
    formation the paper illustrates in Fig. 10, step 2): consecutive dies
    belong to the same innermost group, so a mapping engine that orders
    ``dies`` along a physical chain automatically gives the innermost
    dimension groups of adjacent dies.
    """
    all_degrees = spec.as_dict()
    if sorted(order) != sorted(name for name in all_degrees if name != "pp"):
        raise ValueError(
            f"order must be a permutation of the intra-stage dimensions, got {order}")
    degrees = [(name, all_degrees[name]) for name in order]
    total = 1
    for _, degree in degrees:
        total *= degree
    if total != len(dies):
        raise ValueError(
            f"spec {spec.label()} needs {total} dies, got {len(dies)}")

    # index_of[die position] -> per-dimension coordinates, innermost fastest.
    groups: Dict[str, List[List[int]]] = {name: [] for name, _ in degrees}
    strides: Dict[str, int] = {}
    stride = 1
    for name, degree in reversed(degrees):
        strides[name] = stride
        stride *= degree

    for name, degree in degrees:
        if degree == 1:
            continue
        group_map: Dict[Tuple, List[int]] = {}
        for position, die in enumerate(dies):
            key = []
            for other_name, other_degree in degrees:
                if other_name == name or other_degree == 1:
                    continue
                key.append((position // strides[other_name]) % other_degree)
            group_map.setdefault(tuple(key), []).append(die)
        groups[name] = list(group_map.values())
    return groups


def build_unified_mapping(
    spec: ParallelSpec,
    dies: Sequence[int],
) -> UnifiedMapping:
    """Build the spatio-temporal sub-tensor mapping of a linear operator.

    The input tensor is split along (B, M) by DP/FSDP and SP/CP/TATP, the
    weight tensor along (N, K) by TP and TATP, and each die is assigned the
    co-located ``(I_i, W_i)`` pair of its coordinates. When TATP is active the
    weight sub-tensors then stream between neighbouring positions following
    Algorithm 1, and the compute assignment records which output coordinate
    each die produces per round.
    """
    die_list = list(dies)
    groups = build_parallel_groups(spec, die_list)
    tatp = spec.tatp
    num_rounds = tatp if tatp > 1 else 1
    schedule = bidirectional_schedule(tatp) if tatp > 1 else None

    degrees = [
        ("dp", spec.dp),
        ("fsdp", spec.fsdp),
        ("cp", spec.cp),
        ("sp", spec.sp),
        ("tp", spec.tp),
        ("tatp", spec.tatp),
    ]
    strides: Dict[str, int] = {}
    stride = 1
    for name, degree in reversed(degrees):
        strides[name] = stride
        stride *= degree

    def coord_of(position: int, name: str) -> int:
        return (position // strides[name]) % dict(degrees)[name]

    placement: List[Dict[int, List[SubTensorCoordinate]]] = []
    compute_assignment: List[Dict[int, SubTensorCoordinate]] = []

    for round_index in range(num_rounds):
        round_placement: Dict[int, List[SubTensorCoordinate]] = {}
        round_compute: Dict[int, SubTensorCoordinate] = {}
        for position, die in enumerate(die_list):
            batch_index = coord_of(position, "dp") * spec.fsdp + coord_of(position, "fsdp")
            seq_index = coord_of(position, "cp") * spec.sp + coord_of(position, "sp")
            tp_index = coord_of(position, "tp")
            tatp_index = coord_of(position, "tatp")

            input_coord = SubTensorCoordinate(
                "input", batch=batch_index, sequence=seq_index,
                hidden=tatp_index)
            if schedule is not None:
                weight_slot = schedule.compute[round_index][tatp_index]
            else:
                weight_slot = tatp_index
            weight_coord = SubTensorCoordinate(
                "weight", hidden=tp_index, intermediate=weight_slot)
            output_coord = SubTensorCoordinate(
                "output", batch=batch_index, sequence=seq_index,
                hidden=tp_index, intermediate=weight_slot)

            round_placement[die] = [input_coord, weight_coord]
            round_compute[die] = output_coord
        placement.append(round_placement)
        compute_assignment.append(round_compute)

    return UnifiedMapping(
        spec=spec,
        dies=die_list,
        groups=groups,
        placement=placement,
        compute_assignment=compute_assignment,
        num_rounds=num_rounds,
    )
