"""TSPP and its topology-aware realisation TATP (Section V, Algorithm 1).

The tensor-stream partition paradigm (TSPP) splits both the input and the
weight tensor of a linear operator into ``N`` non-overlapping sub-tensors,
co-locates ``(I_i, W_i)`` on die ``i``, and executes ``N`` rounds: in round
``t`` each die computes exactly one sub-output while the sub-tensor it will
need next is streamed in, overlapping communication with computation and
eliminating tensor replication.

A *naive* logical-ring orchestration would require a physical torus link
between the first and last die of the group — infeasible on a wafer, where
signal integrity limits D2D links to adjacent dies. TATP instead uses the
**bidirectional compute-and-relay orchestration** of Algorithm 1: sub-tensors
flow simultaneously left and right along the physical chain, one hop per
round, and dies in the lower half of the chain consume sub-tensors in
ascending order while dies in the upper half consume them in descending
order. Every transfer is a single physical hop, so tail latency disappears.

This module provides:

* :func:`bidirectional_schedule` — the TATP schedule (compute + relay ops per
  round) with its invariants checked,
* :func:`naive_ring_schedule` — the naive logical-ring schedule used as the
  contrast case in Fig. 7/8,
* :func:`select_stream_tensor` — the selective transfer policy (stream the
  smaller of weights and activations),
* :class:`TATPCharacteristics` — per-die compute/memory/communication volumes
  the cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence


class StreamChoice(Enum):
    """Which operand TATP streams between dies each round."""

    WEIGHTS = "weights"
    ACTIVATIONS = "activations"


@dataclass(frozen=True)
class TransferOp:
    """A single one-round transfer of a sub-tensor between chain positions.

    Positions are logical ranks within the TATP group (0..N-1 along the
    physical chain); the mapping engine translates them to die ids.
    """

    src: int
    dst: int
    sub_tensor: int
    round_index: int

    @property
    def hops(self) -> int:
        """Logical hop count of the transfer (1 for TATP relays)."""
        return abs(self.dst - self.src)


@dataclass
class TATPSchedule:
    """A complete TATP (or naive-ring) execution schedule.

    Attributes:
        degree: number of participants N.
        compute: ``compute[t][rank]`` is the sub-tensor index rank uses in
            round t.
        transfers: per-round list of :class:`TransferOp`.
        is_ring: whether the schedule assumes a closed physical ring (naive)
            or only a linear chain of adjacent dies (TATP).
    """

    degree: int
    compute: List[Dict[int, int]]
    transfers: List[List[TransferOp]]
    is_ring: bool = False

    @property
    def num_rounds(self) -> int:
        """Number of execution rounds (always equal to the degree)."""
        return len(self.compute)

    def max_hops_per_transfer(self) -> int:
        """Largest logical hop distance of any transfer in the schedule."""
        hops = [op.hops for ops in self.transfers for op in ops]
        return max(hops) if hops else 0

    def transfers_in_round(self, round_index: int) -> List[TransferOp]:
        """Transfers scheduled during ``round_index``."""
        return list(self.transfers[round_index])

    def sends_per_rank_per_round(self) -> int:
        """Maximum number of sends any rank performs in a single round."""
        worst = 0
        for ops in self.transfers:
            per_rank: Dict[int, int] = {}
            for op in ops:
                per_rank[op.src] = per_rank.get(op.src, 0) + 1
            if per_rank:
                worst = max(worst, max(per_rank.values()))
        return worst

    def validate(self) -> None:
        """Check the schedule's correctness invariants.

        * every rank computes each sub-tensor exactly once over all rounds,
        * every sub-tensor a rank computes with is locally available (it was
          resident initially or delivered by a transfer in an earlier round),
        * for TATP (non-ring) schedules every transfer is exactly one hop.

        Raises:
            ValueError: when an invariant is violated.
        """
        n = self.degree
        # Each rank covers all sub-tensors exactly once.
        for rank in range(n):
            seen = [self.compute[t][rank] for t in range(self.num_rounds)]
            if sorted(seen) != list(range(n)):
                raise ValueError(
                    f"rank {rank} computes sub-tensors {sorted(seen)}, "
                    f"expected all of 0..{n - 1}"
                )
        # Availability: track which sub-tensors each rank holds over time.
        holdings: Dict[int, set] = {rank: {rank} for rank in range(n)}
        for t in range(self.num_rounds):
            for rank in range(n):
                needed = self.compute[t][rank]
                if needed not in holdings[rank]:
                    raise ValueError(
                        f"rank {rank} needs sub-tensor {needed} in round {t} "
                        f"but only holds {sorted(holdings[rank])}"
                    )
            for op in self.transfers[t]:
                if op.sub_tensor not in holdings[op.src]:
                    raise ValueError(
                        f"rank {op.src} relays sub-tensor {op.sub_tensor} in "
                        f"round {t} without holding it"
                    )
                holdings[op.dst].add(op.sub_tensor)
        if not self.is_ring and self.max_hops_per_transfer() > 1:
            raise ValueError(
                "TATP schedule contains a multi-hop transfer "
                f"({self.max_hops_per_transfer()} hops)"
            )


def bidirectional_schedule(degree: int) -> TATPSchedule:
    """Build the TATP bidirectional compute-and-relay schedule (Algorithm 1).

    Ranks ``0..N/2-1`` consume sub-tensors in ascending order
    ``(rank + t) mod N`` while ranks ``N/2..N-1`` consume them in descending
    order ``(rank - t) mod N``. Each sub-tensor is relayed simultaneously
    leftward and rightward along the chain, one hop per round, for exactly as
    long as some rank further along still needs it. All transfers are one hop,
    so the schedule runs on a linear chain of adjacent dies without any
    wrap-around link.

    Args:
        degree: number of participating dies N (>= 1).

    Returns:
        A validated :class:`TATPSchedule`.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    n = degree
    compute: List[Dict[int, int]] = []
    for t in range(n):
        round_compute: Dict[int, int] = {}
        for rank in range(n):
            if rank < (n + 1) // 2:
                round_compute[rank] = (rank + t) % n
            else:
                round_compute[rank] = (rank - t) % n
        compute.append(round_compute)

    # need_time[rank][sub] = round in which `rank` computes with `sub`.
    need_time = [
        {compute[t][rank]: t for t in range(n)} for rank in range(n)
    ]

    transfers: List[List[TransferOp]] = [[] for _ in range(n)]
    for sub in range(n):
        _schedule_relay(sub, direction=-1, degree=n, need_time=need_time,
                        transfers=transfers)
        _schedule_relay(sub, direction=+1, degree=n, need_time=need_time,
                        transfers=transfers)

    schedule = TATPSchedule(degree=n, compute=compute, transfers=transfers,
                            is_ring=False)
    schedule.validate()
    return schedule


def _schedule_relay(
    sub: int,
    direction: int,
    degree: int,
    need_time: Sequence[Dict[int, int]],
    transfers: List[List[TransferOp]],
) -> None:
    """Relay sub-tensor ``sub`` hop by hop in ``direction`` while still needed.

    The sub-tensor starts on rank ``sub`` and moves one position per round
    starting at round 0. It keeps moving only while some rank strictly further
    along in this direction needs it at a round it can still make (arrival at
    distance d happens at the end of round d-1, so it serves needs at rounds
    >= d).
    """
    n = degree
    position = sub
    for step in range(1, n):
        next_position = position + direction
        if not 0 <= next_position < n:
            break
        arrival_round = step - 1  # transfer happens during this round
        # Does any rank at or beyond next_position (in this direction) still
        # need the sub-tensor at a round it can reach in time?
        still_needed = False
        probe = next_position
        distance = step
        while 0 <= probe < n:
            needed_at = need_time[probe].get(sub)
            if needed_at is not None and needed_at >= distance and probe != sub:
                still_needed = True
                break
            probe += direction
            distance += 1
        if not still_needed:
            break
        transfers[arrival_round].append(
            TransferOp(src=position, dst=next_position, sub_tensor=sub,
                       round_index=arrival_round)
        )
        position = next_position


def naive_ring_schedule(degree: int) -> TATPSchedule:
    """The naive logical-ring orchestration of TSPP.

    Every rank computes sub-tensor ``(rank + t) mod N`` in round ``t`` and
    passes the sub-tensor it just used to rank ``rank - 1`` — which, for rank
    0, means the transfer wraps around to rank ``N - 1``. On a linear physical
    chain that wrap-around is an ``N - 1`` hop transfer: the tail latency the
    paper's Fig. 5(a) and Fig. 8(b) illustrate.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    n = degree
    compute = [
        {rank: (rank + t) % n for rank in range(n)} for t in range(n)
    ]
    transfers: List[List[TransferOp]] = [[] for _ in range(n)]
    for t in range(n - 1):
        for rank in range(n):
            dst = (rank - 1) % n
            transfers[t].append(
                TransferOp(src=rank, dst=dst, sub_tensor=(rank + t) % n,
                           round_index=t)
            )
    schedule = TATPSchedule(degree=n, compute=compute, transfers=transfers,
                            is_ring=True)
    schedule.validate()
    return schedule


def select_stream_tensor(
    weight_bytes: float, activation_bytes: float
) -> StreamChoice:
    """Selective transfer policy: stream whichever operand is smaller.

    For long-sequence models activations dwarf the weights (the paper cites a
    3x gap for Llama2-7B at 14k tokens), so TATP streams weights; for short
    sequences with very wide layers the opposite can hold.
    """
    if weight_bytes < 0 or activation_bytes < 0:
        raise ValueError("tensor sizes must be non-negative")
    if weight_bytes <= activation_bytes:
        return StreamChoice.WEIGHTS
    return StreamChoice.ACTIVATIONS


@dataclass(frozen=True)
class TATPCharacteristics:
    """Per-die volumes of one operator executed under TATP with degree N.

    Attributes:
        degree: TATP parallel degree N.
        flops_per_die: total FLOPs each die executes across all rounds.
        flops_per_round: FLOPs per die per round.
        streamed_bytes_per_round: bytes each die sends per direction per round.
        stream_choice: which operand is streamed.
        memory_bytes_per_die: resident bytes per die (no replication: input,
            weight and output shards all divide by N).
        num_rounds: number of rounds (equals the degree).
    """

    degree: int
    flops_per_die: float
    flops_per_round: float
    streamed_bytes_per_round: float
    stream_choice: StreamChoice
    memory_bytes_per_die: float
    num_rounds: int

    @classmethod
    def for_operator(
        cls,
        degree: int,
        total_flops: float,
        weight_bytes: float,
        activation_bytes: float,
        output_bytes: float,
    ) -> "TATPCharacteristics":
        """Derive the TATP volumes for one operator.

        Args:
            degree: TATP degree N.
            total_flops: total FLOPs of the operator (fwd, bwd or grad stage).
            weight_bytes: full weight tensor size.
            activation_bytes: full input-activation tensor size.
            output_bytes: full output tensor size.
        """
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        choice = select_stream_tensor(weight_bytes, activation_bytes)
        streamed_total = (
            weight_bytes if choice is StreamChoice.WEIGHTS else activation_bytes
        )
        flops_per_die = total_flops / degree
        flops_per_round = flops_per_die / degree
        streamed_per_round = streamed_total / degree
        memory_per_die = (weight_bytes + activation_bytes + output_bytes) / degree
        return cls(
            degree=degree,
            flops_per_die=flops_per_die,
            flops_per_round=flops_per_round,
            streamed_bytes_per_round=streamed_per_round,
            stream_choice=choice,
            memory_bytes_per_die=memory_per_die,
            num_rounds=degree,
        )
