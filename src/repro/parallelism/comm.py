"""Communication-task abstractions shared by strategies and mapping engines.

A strategy analysis produces :class:`CommTask` records — "this parallel group
performs an all-reduce of X bytes per device, N times per layer". The mapping
engine turns each task into concrete link-level paths on the mesh, and the
simulator turns the paths plus volumes into time and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence


class CollectiveType(Enum):
    """Kinds of communication the strategies generate."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    BROADCAST = "broadcast"
    P2P = "p2p"
    STREAM = "stream"  # TATP's per-round neighbour streaming


@dataclass(frozen=True)
class CommTask:
    """One communication requirement of a parallel execution.

    Attributes:
        kind: collective (or P2P / stream) type.
        group_size: number of logical ranks participating (the mapping engine
            assigns physical die ids).
        bytes_per_device: **wire bytes** each participating device injects into
            the network per execution of the task. Use
            :func:`collective_wire_bytes` to convert a logical buffer size into
            this quantity for the standard ring algorithms.
        count: how many times the task repeats per training step (layer counts
            are already folded in by the strategy analysis).
        label: readable description used in reports.
        overlappable: whether the task can overlap with computation (TATP's
            streaming and the DP gradient all-reduce can; Megatron's activation
            all-reduces sit on the critical path).
        dimension: which parallelism dimension generated the task ("tp",
            "dp", "tatp", ...) so ablation studies can filter.
    """

    kind: CollectiveType
    group_size: int
    bytes_per_device: float
    count: float = 1.0
    label: str = ""
    overlappable: bool = False
    dimension: str = ""

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.bytes_per_device < 0:
            raise ValueError(
                f"bytes_per_device must be non-negative, got {self.bytes_per_device}"
            )
        if self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")

    @property
    def is_trivial(self) -> bool:
        """A task over a single device or with no payload costs nothing."""
        return self.group_size <= 1 or self.bytes_per_device == 0 or self.count == 0

    @property
    def total_bytes(self) -> float:
        """Total wire bytes injected per execution (all devices combined)."""
        if self.group_size <= 1:
            return 0.0
        return self.bytes_per_device * self.group_size

    def scaled(self, count_factor: float) -> "CommTask":
        """Return the task repeated ``count_factor`` times more often."""
        return CommTask(
            kind=self.kind,
            group_size=self.group_size,
            bytes_per_device=self.bytes_per_device,
            count=self.count * count_factor,
            label=self.label,
            overlappable=self.overlappable,
            dimension=self.dimension,
        )


def collective_wire_bytes(
    kind: CollectiveType, buffer_bytes: float, group_size: int
) -> float:
    """Wire bytes each device sends for a collective over ``buffer_bytes``.

    Uses the standard bandwidth-optimal ring volumes:

    * all-reduce: ``2 * (p - 1) / p`` of the buffer,
    * all-gather / reduce-scatter / broadcast: ``(p - 1) / p`` of the buffer,
    * P2P / stream: exactly the buffer (sender side).
    """
    if buffer_bytes < 0:
        raise ValueError(f"buffer_bytes must be non-negative, got {buffer_bytes}")
    if group_size <= 1:
        return 0.0
    p = group_size
    if kind is CollectiveType.ALL_REDUCE:
        return 2.0 * (p - 1) / p * buffer_bytes
    if kind in (CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER,
                CollectiveType.BROADCAST):
        return (p - 1) / p * buffer_bytes
    return buffer_bytes


def merge_tasks(tasks: Sequence[CommTask]) -> List[CommTask]:
    """Coalesce identical tasks (same kind/group/bytes/dimension) by summing counts."""
    counts: dict = {}
    prototypes: dict = {}
    for task in tasks:
        key = (task.kind, task.group_size, task.bytes_per_device,
               task.dimension, task.overlappable, task.label)
        counts[key] = counts.get(key, 0.0) + task.count
        prototypes.setdefault(key, task)
    merged: List[CommTask] = []
    for key, prototype in prototypes.items():
        merged.append(CommTask(
            kind=prototype.kind,
            group_size=prototype.group_size,
            bytes_per_device=prototype.bytes_per_device,
            count=counts[key],
            label=prototype.label,
            overlappable=prototype.overlappable,
            dimension=prototype.dimension,
        ))
    return merged
