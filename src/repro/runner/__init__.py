"""Experiment registry, sweep orchestrator, and artifact pipeline.

The package turns the thirteen figure reproductions under
:mod:`repro.experiments` into one uniform evaluation grid:

* :mod:`repro.runner.registry` — every figure module registers its cell
  runner together with its parameter grids and manifest row schema,
* :mod:`repro.runner.orchestrator` — expands a grid into cells and executes
  them serially or across worker processes (one shared
  :class:`~repro.costmodel.tables.PlanCache` per worker),
* :mod:`repro.runner.manifest` — the ``results/<figure>.json`` artifact
  format every runner emits, plus its validator,
* :mod:`repro.runner.docs` — the generated ``EXPERIMENTS.md`` index,
* :mod:`repro.runner.cli` — the ``python -m repro`` command line.
"""

from repro.runner.context import RunContext
from repro.runner.manifest import validate_manifest, write_manifest
from repro.runner.orchestrator import run_all, run_experiment
from repro.runner.registry import (
    Experiment,
    all_experiments,
    expand_grid,
    get_experiment,
    register,
)

__all__ = [
    "Experiment",
    "RunContext",
    "all_experiments",
    "expand_grid",
    "get_experiment",
    "register",
    "run_all",
    "run_experiment",
    "validate_manifest",
    "write_manifest",
]
