"""The ``python -m repro`` command line (also the ``repro`` console script).

Sub-commands::

    repro list                         # registered figures and grid sizes
    repro run fig19 --reduced          # one figure, reduced grid
    repro run all --reduced --jobs 2   # full evaluation grid, 2 workers
    repro plan '<json>'                # evaluate one Scenario (or '-': stdin)
    repro plan --file scenario.json --solve
    repro check                        # every figure has a valid manifest
    repro docs [--check]               # (re)generate / verify EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.runner import docs as docs_module
from repro.runner import manifest as manifest_module
from repro.runner import orchestrator, registry

#: Default artifact directory.
DEFAULT_OUTPUT_DIR = "results"


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Registry-driven runner for the paper's figure "
                    "reproductions.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered figures")

    run = sub.add_parser("run", help="run one figure (or 'all')")
    run.add_argument("figure", help="registered figure id, or 'all'")
    run.add_argument("--reduced", action="store_true",
                     help="use the fast reduced grids (CI fidelity)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default: 1, serial)")
    run.add_argument("--output-dir", default=DEFAULT_OUTPUT_DIR,
                     help="manifest directory (default: %(default)s)")
    run.add_argument("--no-write", action="store_true",
                     help="run without writing manifests")

    plan = sub.add_parser(
        "plan",
        help="evaluate one Scenario API request (JSON) end to end")
    plan.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON document, or '-' to read it from stdin")
    plan.add_argument("--file", metavar="PATH",
                      help="read the scenario JSON from a file instead")
    plan.add_argument("--solve", action="store_true",
                      help="run the dual-level solver instead of the "
                           "evaluation path")
    plan.add_argument("--validate", action="store_true",
                      help="schema-check the emitted result and fail on "
                           "problems (used by the CI smoke step)")
    plan.add_argument("--indent", type=int, default=2, metavar="N",
                      help="JSON output indentation (default: %(default)s)")

    check = sub.add_parser(
        "check", help="validate that every registered figure has a manifest")
    check.add_argument("--output-dir", default=DEFAULT_OUTPUT_DIR,
                       help="manifest directory (default: %(default)s)")

    docs = sub.add_parser(
        "docs", help="regenerate EXPERIMENTS.md from the registry")
    docs.add_argument("--check", action="store_true",
                      help="verify EXPERIMENTS.md is up to date instead of "
                           "writing it")
    docs.add_argument("--output", default=docs_module.DEFAULT_PATH,
                      help="output path (default: %(default)s)")
    return parser


def _cmd_list() -> int:
    experiments = registry.all_experiments()
    width = max(len(exp.figure) for exp in experiments)
    print(f"{'figure':<{width}}  {'paper':<12} {'cells':>7} {'reduced':>8}  "
          f"title")
    for exp in experiments:
        print(f"{exp.figure:<{width}}  {exp.paper:<12} "
              f"{len(exp.cells(False)):>7} {len(exp.cells(True)):>8}  "
              f"{exp.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    figures = (registry.figure_ids() if args.figure == "all"
               else [args.figure])
    try:
        experiments = {figure: registry.get_experiment(figure)
                       for figure in figures}
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    output_dir = None if args.no_write else args.output_dir
    failures: List[str] = []
    # One pool (or serial context) for the whole run: worker plan caches
    # stay warm across figures sharing evaluations (e.g. Figs. 13/14).
    with orchestrator.sweep_resources(args.jobs, args.reduced) as (pool, ctx):
        for figure, experiment in experiments.items():
            print(f"{figure} ({experiment.paper}): {experiment.title}")
            manifest = orchestrator.run_experiment(
                figure, reduced=args.reduced, jobs=args.jobs,
                output_dir=output_dir, progress=print, pool=pool,
                context=ctx)
            problems = manifest_module.validate_manifest(manifest, experiment)
            total = manifest["timings"]["total_seconds"]
            oom = sum(cell["oom_rows"] for cell in manifest["cells"])
            print(f"  -> {len(manifest['rows'])} rows, {oom} OOM, "
                  f"{total:.2f}s total")
            if problems:
                failures.append(figure)
                for problem in problems:
                    print(f"  !! {problem}", file=sys.stderr)
    if failures:
        print(f"FAILED figures: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.api.scenario import Scenario
    from repro.api.service import PlanService, validate_result_payload

    if args.validate and args.solve:
        # SolverOutcome has its own (different) schema; there is no
        # validator for it, so refuse rather than silently skipping.
        print("error: --validate only applies to evaluation results; "
              "drop it or --solve", file=sys.stderr)
        return 2

    if args.file is not None:
        try:
            with open(args.file, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
            return 2
    elif args.scenario in (None, "-"):
        text = sys.stdin.read()
    else:
        text = args.scenario

    try:
        scenario = Scenario.from_json(text)
        service = PlanService()
        if args.solve:
            payload = service.solve(scenario).to_dict()
        else:
            payload = service.evaluate(scenario).to_dict()
    except (KeyError, ValueError) as error:
        # ScenarioError (a ValueError) covers parse/validation problems;
        # plain ValueError/KeyError covers evaluation-path failures (e.g. no
        # feasible configuration) — report cleanly instead of a traceback.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2

    status = 0
    if args.validate:
        problems = validate_result_payload(payload)
        for problem in problems:
            print(f"invalid result: {problem}", file=sys.stderr)
        status = 1 if problems else 0
    print(json.dumps(payload, indent=args.indent, sort_keys=True,
                     allow_nan=False))
    return status


def _cmd_check(args: argparse.Namespace) -> int:
    status = 0
    for experiment in registry.all_experiments():
        path = manifest_module.manifest_path(args.output_dir,
                                             experiment.figure)
        if not os.path.exists(path):
            print(f"{experiment.figure}: MISSING manifest ({path})",
                  file=sys.stderr)
            status = 1
            continue
        try:
            manifest = manifest_module.read_manifest(path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"{experiment.figure}: unreadable manifest: {error}",
                  file=sys.stderr)
            status = 1
            continue
        problems = manifest_module.validate_manifest(manifest, experiment)
        if problems:
            status = 1
            for problem in problems:
                print(f"{experiment.figure}: {problem}", file=sys.stderr)
        else:
            print(f"{experiment.figure}: ok ({len(manifest['rows'])} rows)")
    return status


def _cmd_docs(args: argparse.Namespace) -> int:
    if args.check:
        if docs_module.check_experiments_md(args.output):
            print(f"{args.output} is up to date")
            return 0
        print(f"{args.output} is stale; regenerate with "
              f"`python -m repro docs`", file=sys.stderr)
        return 1
    path = docs_module.write_experiments_md(args.output)
    print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "docs":
        return _cmd_docs(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
