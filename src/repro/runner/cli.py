"""The ``python -m repro`` command line (also the ``repro`` console script).

Sub-commands::

    repro list                         # registered figures and grid sizes
    repro run fig19 --reduced          # one figure, reduced grid
    repro run all --reduced --jobs 2   # full evaluation grid, 2 workers
    repro plan '<json>'                # evaluate one Scenario (or '-': stdin)
    repro plan '[<json>, ...]'         # batch: array in, array out, one
                                       # shared PlanService across the batch
    repro plan --file scenario.json --solve
    repro serve --port 8099 --jobs 2   # long-lived batched/cached plan server
    repro serve --deadline 30 --max-queue 256   # + deadlines, load shedding
    repro serve --chaos worker-crash:once       # + deterministic fault injection
    repro serve --store plans.sqlite   # indexed SQLite result store (O(1) open)
    repro submit '<json>' --port 8099  # submit scenario(s) to a server
    repro store stats plans.jsonl      # entries / dead records / file size
    repro store compact plans.jsonl    # rewrite last-wins (drop dead records)
    repro store migrate plans.jsonl plans.sqlite  # convert between backends
                                       # (verified key-by-key)
    repro loadtest --requests 200 --dedup-ratio 0.95 --concurrency 8
                                       # replay synthetic plans against a live
                                       # server: p50/p95/p99, cache-hit rate
    repro sweep fig13 --reduced        # registered portfolio -> manifest
    repro sweep fig13 --server 127.0.0.1:8099   # same sweep, remote
    repro sweep --file portfolio.json  # ad-hoc portfolio document
    repro sweep --list                 # registered portfolios
    repro check                        # every figure has a valid manifest
    repro docs [--check]               # (re)generate / verify EXPERIMENTS.md
                                       # and BENCHMARKS.md
    repro bench all --repeat 3 --json BENCH_ci.json   # run benchmark suite
    repro bench --list                 # registered benchmarks
    repro bench --compare BENCH_baseline.json BENCH_ci.json --threshold 40
    repro obs summarize out.jsonl      # per-span-name timing table
    repro obs chrome out.jsonl -o out.trace.json  # chrome://tracing export

Observability flags: every verb accepts ``--log-level`` / ``--log-json``
(structured stdlib logging on the ``repro`` logger), and the evaluation
verbs (``plan``, ``run``, ``sweep``, ``serve``, ``bench``) accept
``--trace PATH`` to record nested timing spans as JSON lines — including
spans drained back from pool workers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.obs.logs import setup_logging
from repro.obs.tracing import configure_tracing, disable_tracing
from repro.runner import docs as docs_module
from repro.runner import manifest as manifest_module
from repro.runner import orchestrator, registry

#: Default artifact directory.
DEFAULT_OUTPUT_DIR = "results"


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Registry-driven runner for the paper's figure "
                    "reproductions.")
    sub = parser.add_subparsers(dest="command", required=True)

    # Flags shared by every verb (logging) and by the evaluation verbs
    # (tracing); argparse merges parent parsers into each subparser.
    logged = argparse.ArgumentParser(add_help=False)
    logged.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="log level of the 'repro' logger "
                             "(default: %(default)s)")
    logged.add_argument("--log-json", action="store_true",
                        help="emit logs as JSON lines instead of text")
    traced = argparse.ArgumentParser(add_help=False, parents=[logged])
    traced.add_argument("--trace", metavar="PATH", default=None,
                        help="record timing spans to this JSON-lines file "
                             "(summarize with 'repro obs summarize PATH')")

    list_parser = sub.add_parser(
        "list", parents=[logged],
        help="list registered figures (or topologies)")
    list_parser.add_argument(
        "--topologies", action="store_true",
        help="list the registered interconnect fabric families instead")

    run = sub.add_parser("run", parents=[traced],
                         help="run one figure (or 'all')")
    run.add_argument("figure", help="registered figure id, or 'all'")
    run.add_argument("--reduced", action="store_true",
                     help="use the fast reduced grids (CI fidelity)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default: 1, serial)")
    run.add_argument("--output-dir", default=DEFAULT_OUTPUT_DIR,
                     help="manifest directory (default: %(default)s)")
    run.add_argument("--no-write", action="store_true",
                     help="run without writing manifests")

    plan = sub.add_parser(
        "plan", parents=[traced],
        help="evaluate Scenario API request(s) (JSON object or array) "
             "end to end")
    plan.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON document (object, or array for batch mode), "
             "or '-' to read it from stdin")
    plan.add_argument("--file", metavar="PATH",
                      help="read the scenario JSON from a file instead")
    plan.add_argument("--solve", action="store_true",
                      help="run the dual-level solver instead of the "
                           "evaluation path")
    plan.add_argument("--validate", action="store_true",
                      help="schema-check the emitted result(s) and fail on "
                           "problems (used by the CI smoke step)")
    plan.add_argument("--stats", action="store_true",
                      help="print the PlanService counters (plan-cache "
                           "hits/misses) to stderr after evaluating")
    plan.add_argument("--indent", type=int, default=2, metavar="N",
                      help="JSON output indentation (default: %(default)s)")

    serve = sub.add_parser(
        "serve", parents=[traced],
        help="run the long-lived plan server (batched, deduplicated, "
             "disk-cached Scenario serving over HTTP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8099,
                       help="bind port; 0 picks an ephemeral one "
                            "(default: %(default)s)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="evaluation workers: 1 serves from one "
                            "in-process PlanService, N>1 from a persistent "
                            "process pool (default: %(default)s)")
    serve.add_argument("--store", metavar="PATH", default=None,
                       help="persistent result store; repeated requests are "
                            "served from it across restarts (default: "
                            "memory only)")
    serve.add_argument("--store-backend", default="auto",
                       choices=("auto", "jsonl", "sqlite"),
                       help="result-store format: append-only JSON lines or "
                            "an indexed SQLite database; 'auto' picks by "
                            "extension (.sqlite/.sqlite3/.db -> sqlite, "
                            "default: %(default)s)")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="micro-batching window (default: %(default)s)")
    serve.add_argument("--max-batch", type=int, default=16, metavar="N",
                       help="requests per micro-batch cap "
                            "(default: %(default)s)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request deadline; an expired request gets "
                            "a structured deadline_expired error (504) "
                            "instead of hanging (default: none)")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission-control bound on unique in-flight "
                            "requests; beyond it new work is shed with a "
                            "503 + Retry-After (default: unbounded)")
    serve.add_argument("--durable", action="store_true",
                       help="fsync the result store on every write (a "
                            "host crash then cannot lose acknowledged "
                            "records)")
    serve.add_argument("--chaos", default=None, metavar="SPEC",
                       help="arm deterministic fault injection, e.g. "
                            "'worker-crash:once,slow-eval:0.2' (default: "
                            "the REPRO_CHAOS environment variable)")

    submit = sub.add_parser(
        "submit", parents=[logged],
        help="submit scenario(s) to a running plan server")
    submit.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario JSON document (object, or array for batch mode), "
             "or '-' to read it from stdin")
    submit.add_argument("--file", metavar="PATH",
                        help="read the scenario JSON from a file instead")
    submit.add_argument("--host", default="127.0.0.1",
                        help="plan server address (default: %(default)s)")
    submit.add_argument("--port", type=int, default=8099,
                        help="plan server port (default: %(default)s)")
    submit.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="request timeout (default: %(default)s)")
    submit.add_argument("--validate", action="store_true",
                        help="schema-check the returned result(s) and fail "
                             "on problems")
    submit.add_argument("--expect-source",
                        choices=("store", "inflight", "evaluated"),
                        help="fail unless the (single) result was served "
                             "from this path (used by the CI smoke step)")
    submit.add_argument("--indent", type=int, default=2, metavar="N",
                        help="JSON output indentation (default: %(default)s)")

    store = sub.add_parser(
        "store", parents=[logged],
        help="maintain result-store files (stats, compaction, backend "
             "migration)")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats_p = store_sub.add_parser(
        "stats", parents=[logged],
        help="entries, dead records, corrupt lines, and on-disk size")
    store_stats_p.add_argument("path", help="result-store file")
    store_stats_p.add_argument("--store-backend", default="auto",
                               choices=("auto", "jsonl", "sqlite"),
                               help="backend of the file (default: by "
                                    "extension)")
    store_compact = store_sub.add_parser(
        "compact", parents=[logged],
        help="drop dead/corrupt records: rewrite a JSON-lines file "
             "last-wins, or checkpoint+VACUUM a SQLite file")
    store_compact.add_argument("path", help="result-store file")
    store_compact.add_argument("--store-backend", default="auto",
                               choices=("auto", "jsonl", "sqlite"),
                               help="backend of the file (default: by "
                                    "extension)")
    store_migrate = store_sub.add_parser(
        "migrate", parents=[logged],
        help="convert a store between backends, verified key-by-key")
    store_migrate.add_argument("source", help="existing result-store file")
    store_migrate.add_argument("destination",
                               help="destination store file (upserted into "
                                    "if it already exists)")
    store_migrate.add_argument("--from-backend", default="auto",
                               choices=("auto", "jsonl", "sqlite"),
                               help="source backend (default: by extension)")
    store_migrate.add_argument("--to-backend", default="auto",
                               choices=("auto", "jsonl", "sqlite"),
                               help="destination backend (default: by "
                                    "extension)")
    store_migrate.add_argument("--durable", action="store_true",
                               help="write the destination with full "
                                    "durability (fsync / synchronous=FULL)")

    loadtest = sub.add_parser(
        "loadtest", parents=[logged],
        help="replay synthetic plan requests against a live server and "
             "report p50/p95/p99 latency, cache-hit rate, and shed counts")
    loadtest.add_argument("--server", metavar="URL", default="127.0.0.1:8099",
                          help="plan server ('HOST:PORT' or "
                               "'http://HOST:PORT', default: %(default)s)")
    loadtest.add_argument("--requests", type=int, default=200, metavar="N",
                          help="total plan requests (default: %(default)s)")
    loadtest.add_argument("--dedup-ratio", type=float, default=0.95,
                          metavar="R",
                          help="fraction of requests repeating an earlier "
                               "scenario; 0 makes every request unique "
                               "(default: %(default)s)")
    loadtest.add_argument("--concurrency", type=int, default=8, metavar="N",
                          help="concurrent client connections "
                               "(default: %(default)s)")
    loadtest.add_argument("--timeout", type=float, default=30.0,
                          metavar="SECONDS",
                          help="per-request timeout (default: %(default)s)")
    loadtest.add_argument("--json", metavar="OUT", dest="json_out",
                          default=None,
                          help="also write the full report as JSON here")
    loadtest.add_argument("--min-cache-hit-rate", type=float, default=None,
                          metavar="R",
                          help="fail (exit 1) when the cache-hit rate lands "
                               "below this SLO (default: no gate)")

    sweep = sub.add_parser(
        "sweep", parents=[traced],
        help="expand a portfolio (a named family of scenarios) through the "
             "plan scheduler and emit a validated manifest")
    sweep.add_argument(
        "portfolio", nargs="?", default=None,
        help="registered portfolio name (see --list), e.g. 'fig13'")
    sweep.add_argument("--file", metavar="PATH",
                       help="read an ad-hoc portfolio JSON document instead "
                            "of a registered name")
    sweep.add_argument("--list", action="store_true", dest="list_portfolios",
                       help="list the registered portfolios and exit")
    sweep.add_argument("--reduced", action="store_true",
                       help="build the reduced (CI fidelity) portfolio")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="local evaluation workers (default: %(default)s; "
                            "ignored with --server)")
    sweep.add_argument("--server", metavar="URL", default=None,
                       help="sweep via a running plan server "
                            "('HOST:PORT' or 'http://HOST:PORT') instead of "
                            "a local scheduler")
    sweep.add_argument("--store", metavar="PATH", default=None,
                       help="persistent result store for the local "
                            "scheduler (repeats served across sweeps)")
    sweep.add_argument("--store-backend", default="auto",
                       choices=("auto", "jsonl", "sqlite"),
                       help="result-store format (see 'repro serve "
                            "--store-backend'; default: %(default)s)")
    sweep.add_argument("--output-dir", default=DEFAULT_OUTPUT_DIR,
                       help="manifest directory (default: %(default)s)")
    sweep.add_argument("--no-write", action="store_true",
                       help="run without writing the manifest")
    sweep.add_argument("--no-batched", action="store_true",
                       help="disable portfolio batching (shared route "
                            "tables / reports / cost tables) for local "
                            "jobs=1 sweeps; results are bit-identical "
                            "either way")
    sweep.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                       help="server-mode progress poll interval "
                            "(default: %(default)s)")
    sweep.add_argument("--timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="server-mode overall deadline "
                            "(default: %(default)s)")

    check = sub.add_parser(
        "check", parents=[logged],
        help="validate that every registered figure has a manifest")
    check.add_argument("--output-dir", default=DEFAULT_OUTPUT_DIR,
                       help="manifest directory (default: %(default)s)")

    docs = sub.add_parser(
        "docs", parents=[logged],
        help="regenerate EXPERIMENTS.md and BENCHMARKS.md from "
             "the registries")
    docs.add_argument("--check", action="store_true",
                      help="verify the generated docs are up to date "
                           "instead of writing them")
    docs.add_argument("--output", default=docs_module.DEFAULT_PATH,
                      help="EXPERIMENTS.md path (default: %(default)s)")
    docs.add_argument("--benchmarks-output",
                      default=docs_module.BENCHMARKS_PATH,
                      help="BENCHMARKS.md path (default: %(default)s)")

    bench = sub.add_parser(
        "bench", parents=[traced],
        help="run registered benchmarks (warmup + timed repeats) and emit "
             "or compare BENCH_*.json perf reports")
    bench.add_argument("name", nargs="?", default="all",
                       help="benchmark name, or 'all' (default)")
    bench.add_argument("--list", action="store_true", dest="list_benchmarks",
                       help="list the registered benchmarks and exit")
    bench.add_argument("--repeat", type=int, default=None, metavar="N",
                       help="timed runs per benchmark (default: each "
                            "benchmark's own)")
    bench.add_argument("--warmup", type=int, default=None, metavar="N",
                       help="untimed warmup runs (default: each "
                            "benchmark's own)")
    bench.add_argument("--json", metavar="OUT", dest="json_out", default=None,
                       help="write the schema-validated BENCH report here")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       default=None,
                       help="compare two BENCH reports instead of running; "
                            "exits non-zero on a median regression beyond "
                            "--threshold")
    bench.add_argument("--threshold", type=float, default=20.0,
                       metavar="PCT",
                       help="regression threshold for --compare, in "
                            "percent (default: %(default)s)")

    obs = sub.add_parser(
        "obs", parents=[logged],
        help="analyze --trace files (per-span summaries, Chrome export)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", parents=[logged],
        help="per-span-name count/total/mean/p50/p95/max table")
    # dest avoids colliding with the --trace *output* flag in main().
    summarize.add_argument("trace_file", metavar="TRACE",
                           help="JSON-lines trace file (--trace output)")
    summarize.add_argument("--json", action="store_true", dest="json_out",
                           help="emit the summary rows as JSON instead of "
                                "a table")
    chrome = obs_sub.add_parser(
        "chrome", parents=[logged],
        help="convert a trace to the Chrome trace_event JSON format "
             "(chrome://tracing, Perfetto)")
    chrome.add_argument("trace_file", metavar="TRACE",
                        help="JSON-lines trace file (--trace output)")
    chrome.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="output path (default: stdout)")
    return parser


def _cmd_list(args: Optional[argparse.Namespace] = None) -> int:
    if args is not None and getattr(args, "topologies", False):
        return _cmd_list_topologies()
    experiments = registry.all_experiments()
    width = max(len(exp.figure) for exp in experiments)
    print(f"{'figure':<{width}}  {'paper':<12} {'cells':>7} {'reduced':>8}  "
          f"title")
    for exp in experiments:
        print(f"{exp.figure:<{width}}  {exp.paper:<12} "
              f"{len(exp.cells(False)):>7} {len(exp.cells(True)):>8}  "
              f"{exp.title}")
    return 0


def _cmd_list_topologies() -> int:
    from repro.hardware.topologies import topology_table

    rows = topology_table()
    name_width = max(len(row["name"]) for row in rows)
    params_width = max(max(len(row["params"]) for row in rows), len("params"))
    print(f"{'fabric':<{name_width}}  {'default':<8} {'params':<{params_width}}"
          f"  link model")
    for row in rows:
        print(f"{row['name']:<{name_width}}  {row['default'] or '-':<8} "
              f"{row['params']:<{params_width}}  {row['link_model']}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    figures = (registry.figure_ids() if args.figure == "all"
               else [args.figure])
    try:
        experiments = {figure: registry.get_experiment(figure)
                       for figure in figures}
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    output_dir = None if args.no_write else args.output_dir
    failures: List[str] = []
    # One pool (or serial context) for the whole run: worker plan caches
    # stay warm across figures sharing evaluations (e.g. Figs. 13/14).
    with orchestrator.sweep_resources(args.jobs, args.reduced) as (pool, ctx):
        for figure, experiment in experiments.items():
            print(f"{figure} ({experiment.paper}): {experiment.title}")
            manifest = orchestrator.run_experiment(
                figure, reduced=args.reduced, jobs=args.jobs,
                output_dir=output_dir, progress=print, pool=pool,
                context=ctx)
            problems = manifest_module.validate_manifest(manifest, experiment)
            total = manifest["timings"]["total_seconds"]
            oom = sum(cell["oom_rows"] for cell in manifest["cells"])
            print(f"  -> {len(manifest['rows'])} rows, {oom} OOM, "
                  f"{total:.2f}s total")
            if problems:
                failures.append(figure)
                for problem in problems:
                    print(f"  !! {problem}", file=sys.stderr)
    if failures:
        print(f"FAILED figures: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _read_request_text(args: argparse.Namespace) -> Optional[str]:
    """The scenario JSON text of a ``plan``/``submit`` invocation."""
    if args.file is not None:
        try:
            with open(args.file, encoding="utf-8") as handle:
                return handle.read()
        except OSError as error:
            print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
            return None
    if args.scenario in (None, "-"):
        return sys.stdin.read()
    return args.scenario


def _validate_payloads(payloads: List[dict], batch: bool) -> int:
    """Schema-check emitted result payloads; returns the exit status."""
    from repro.api.service import validate_result_payload

    status = 0
    for index, payload in enumerate(payloads):
        label = f"result[{index}]" if batch else "result"
        if "error" in payload:
            print(f"{label} is an error: {payload['error']}",
                  file=sys.stderr)
            status = 1
            continue
        for problem in validate_result_payload(payload):
            print(f"invalid {label}: {problem}", file=sys.stderr)
            status = 1
    return status


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.api.scenario import Scenario
    from repro.api.service import PlanService

    if args.validate and args.solve:
        # SolverOutcome has its own (different) schema; there is no
        # validator for it, so refuse rather than silently skipping.
        print("error: --validate only applies to evaluation results; "
              "drop it or --solve", file=sys.stderr)
        return 2

    text = _read_request_text(args)
    if text is None:
        return 2
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        print(f"error: invalid scenario JSON: {error}", file=sys.stderr)
        return 2

    # A JSON array is batch mode: the offline twin of /v1/plan/batch — one
    # PlanService (one PlanCache, one wafer per geometry) serves the batch.
    batch = isinstance(document, list)
    try:
        scenarios = [Scenario.from_dict(item)
                     for item in (document if batch else [document])]
        service = PlanService()
        if args.solve:
            payloads = [service.solve(scenario).to_dict()
                        for scenario in scenarios]
        else:
            payloads = [service.evaluate(scenario).to_dict()
                        for scenario in scenarios]
    except (KeyError, TypeError, ValueError) as error:
        # ScenarioError (a ValueError) covers parse/validation problems;
        # KeyError/TypeError/ValueError covers evaluation-path failures
        # driven by the request (e.g. no feasible configuration, a
        # wrong-typed field) — report cleanly instead of a traceback.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2

    status = _validate_payloads(payloads, batch) if args.validate else 0
    print(json.dumps(payloads if batch else payloads[0], indent=args.indent,
                     sort_keys=True, allow_nan=False))
    if args.stats:
        print(json.dumps(service.stats(), sort_keys=True), file=sys.stderr)
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server.faults import FaultInjector, FaultSpecError
    from repro.server.http import PlanServer
    from repro.server.scheduler import PlanScheduler
    from repro.server.store import ResultStore

    chaos_spec = (args.chaos if args.chaos is not None
                  else os.environ.get("REPRO_CHAOS"))
    try:
        chaos = FaultInjector.from_spec(chaos_spec)
    except FaultSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        scheduler = PlanScheduler(
            store=ResultStore(args.store, durable=args.durable,
                              backend=args.store_backend),
            jobs=args.jobs,
            batch_window=args.batch_window,
            max_batch=args.max_batch,
            deadline=args.deadline,
            max_queue=args.max_queue,
            chaos=chaos,
        )
        server = PlanServer(scheduler, host=args.host, port=args.port)
        await server.start()
        chaos_note = f", chaos={chaos.spec!r}" if chaos is not None else ""
        store_note = (f"{args.store} [{scheduler.store.backend}]"
                      if args.store else "memory-only")
        print(f"plan server listening on http://{args.host}:{server.port} "
              f"(jobs={args.jobs}, store={store_note}"
              f"{chaos_note})",
              flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            # Drains queued and in-flight requests before the pool stops.
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("plan server stopped", file=sys.stderr)
    except ValueError as error:  # bad scheduler knobs (deadline, max-queue)
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.server.client import PlanClient, PlanServerError

    text = _read_request_text(args)
    if text is None:
        return 2
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        print(f"error: invalid scenario JSON: {error}", file=sys.stderr)
        return 2

    batch = isinstance(document, list)
    if args.expect_source and batch:
        print("error: --expect-source only applies to a single scenario",
              file=sys.stderr)
        return 2

    client = PlanClient(host=args.host, port=args.port,
                        timeout=args.timeout)
    try:
        if batch:
            payloads = client.plan_batch(document)
        else:
            payloads = [client.plan(document)]
            print(f"served from: {client.last_source}", file=sys.stderr)
    except PlanServerError as error:
        detail = (error.payload.get("error", error.payload)
                  if isinstance(error.payload, dict) else error.payload)
        print(f"error: plan server returned {error.status}: {detail}",
              file=sys.stderr)
        return 2
    except (OSError, TimeoutError) as error:
        print(f"error: cannot reach plan server at "
              f"{args.host}:{args.port}: {error}", file=sys.stderr)
        return 2

    status = 0
    if args.expect_source and client.last_source != args.expect_source:
        print(f"error: expected the result to be served from "
              f"{args.expect_source!r}, got {client.last_source!r}",
              file=sys.stderr)
        status = 1
    if args.validate:
        status = max(status, _validate_payloads(payloads, batch))
    print(json.dumps(payloads if batch else payloads[0], indent=args.indent,
                     sort_keys=True, allow_nan=False))
    return status


def _parse_server_url(url: str):
    """``--server`` value -> ``(host, port)``; None on a malformed value."""
    from urllib.parse import urlparse

    target = url if "//" in url else f"//{url}"
    try:
        parsed = urlparse(target)
        host, port = parsed.hostname, parsed.port
    except ValueError:
        return None
    if not host:
        return None
    return host, port if port is not None else 8099


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.api.portfolio import (
        Portfolio,
        PortfolioError,
        get_portfolio,
        portfolio_names,
    )
    from repro.server.portfolio import (
        MAX_POINTS,
        build_sweep_manifest,
        run_portfolio_local,
    )

    if args.list_portfolios:
        names = portfolio_names()
        if not names:
            print("no registered portfolios")
            return 0
        width = max(len(name) for name in names)
        for name in names:
            template = get_portfolio(name)
            portfolio = template.build(args.reduced)
            figure = template.figure or "-"
            print(f"{name:<{width}}  figure={figure:<8} "
                  f"{portfolio.num_points():>5} points  "
                  f"{template.description}")
        return 0

    if (args.portfolio is None) == (args.file is None):
        print("error: give exactly one of a registered portfolio name or "
              "--file PATH (or --list)", file=sys.stderr)
        return 2

    # Resolve the portfolio (and, for registered ones, the figure whose
    # manifest identity and row schema the sweep reproduces).
    template = None
    experiment = None
    try:
        if args.file is not None:
            with open(args.file, encoding="utf-8") as handle:
                portfolio = Portfolio.from_json(handle.read())
        else:
            template = get_portfolio(args.portfolio)
            portfolio = template.build(args.reduced)
        points = portfolio.expand(max_points=MAX_POINTS)
    except OSError as error:
        print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except PortfolioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if template is not None and template.figure is not None:
        experiment = registry.get_experiment(template.figure)

    print(f"sweep {portfolio.describe()}")
    start = time.perf_counter()
    if args.server is not None:
        outcomes = _sweep_via_server(args, portfolio, points)
        if outcomes is None:
            return 2
        mode, jobs = "server", 0
    else:
        def _progress(completed, total, outcome):
            params = ", ".join(f"{key}={value}"
                               for key, value in outcome.params.items())
            print(f"  [{portfolio.name}] {completed}/{total}: {params} "
                  f"({outcome.wall_seconds:.2f}s, {outcome.source})")

        try:
            outcomes = run_portfolio_local(
                portfolio, jobs=args.jobs, store=_sweep_store(args),
                points=points, on_unique=_progress,
                batched=False if args.no_batched else None)
        except PortfolioError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        mode, jobs = "local", args.jobs
    total_seconds = time.perf_counter() - start

    manifest = build_sweep_manifest(
        portfolio, outcomes, reduced=args.reduced, jobs=jobs,
        total_seconds=total_seconds, mode=mode, experiment=experiment,
        row_builder=template.row if template is not None else None)
    problems = manifest_module.validate_manifest(manifest, experiment)
    errors = sum(1 for cell in manifest["cells"] if cell["error"])
    oom = sum(cell["oom_rows"] for cell in manifest["cells"])
    print(f"  -> {len(manifest['rows'])} rows, {oom} OOM, {errors} errors, "
          f"{manifest['sweep']['unique']}/{manifest['sweep']['points']} "
          f"unique, {total_seconds:.2f}s total")
    status = 0
    for problem in problems:
        print(f"  !! {problem}", file=sys.stderr)
        status = 1
    if not args.no_write:
        path = manifest_module.write_manifest(manifest, args.output_dir)
        print(f"  wrote {path}")
    return status


def _sweep_store(args: argparse.Namespace):
    if args.store is None:
        return None
    from repro.server.store import ResultStore

    return ResultStore(args.store, backend=args.store_backend)


def _sweep_via_server(args: argparse.Namespace, portfolio, points):
    """Run one sweep through a live plan server; None on failure."""
    from repro.server.client import PlanClient, PlanServerError
    from repro.server.portfolio import PointOutcome

    location = _parse_server_url(args.server)
    if location is None:
        print(f"error: malformed --server value {args.server!r}; expected "
              f"HOST:PORT or http://HOST:PORT", file=sys.stderr)
        return None
    host, port = location

    def _progress(status):
        print(f"  [{portfolio.name}] {status['completed']}/"
              f"{status['unique']} unique evaluated "
              f"({status['elapsed_seconds']:.2f}s)")

    client = PlanClient(host=host, port=port, timeout=args.timeout)
    try:
        status = client.sweep(portfolio, poll_interval=args.poll,
                              timeout=args.timeout, progress=_progress)
    except PlanServerError as error:
        detail = (error.payload.get("error", error.payload)
                  if isinstance(error.payload, dict) else error.payload)
        print(f"error: plan server returned {error.status}: {detail}",
              file=sys.stderr)
        return None
    except (OSError, TimeoutError) as error:
        print(f"error: cannot sweep via plan server at {host}:{port}: "
              f"{error}", file=sys.stderr)
        return None

    # Reassemble point outcomes from the parallel response arrays; the
    # local expansion pins the params (the server expanded identically —
    # expansion is deterministic and validated server-side too).
    outcomes = []
    for point, payload, source, wall in zip(
            points, status["results"], status["sources"],
            status["wall_seconds"]):
        outcomes.append(PointOutcome(
            index=point.index, params=point.params, payload=payload,
            source=source, wall_seconds=wall, key=point.cache_key()))
    return outcomes


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.server.store import (
        StoreError,
        compact_store,
        migrate_store,
        store_stats,
    )

    try:
        if args.store_command == "stats":
            if not os.path.exists(args.path):
                print(f"error: no such store file: {args.path}",
                      file=sys.stderr)
                return 2
            document = store_stats(args.path, backend=args.store_backend)
        elif args.store_command == "compact":
            if not os.path.exists(args.path):
                print(f"error: no such store file: {args.path}",
                      file=sys.stderr)
                return 2
            document = compact_store(args.path, backend=args.store_backend)
        else:  # migrate
            if not os.path.exists(args.source):
                print(f"error: no such store file: {args.source}",
                      file=sys.stderr)
                return 2
            document = migrate_store(
                args.source, args.destination,
                source_backend=args.from_backend,
                destination_backend=args.to_backend,
                durable=args.durable)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:  # StoreError included: corrupt/unwritable files
        kind = ("verification failed"
                if isinstance(error, StoreError) else "store error")
        print(f"error: {kind}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.server.loadtest import render_report, run_loadtest, write_report

    location = _parse_server_url(args.server)
    if location is None:
        print(f"error: malformed --server value {args.server!r}; expected "
              f"HOST:PORT or http://HOST:PORT", file=sys.stderr)
        return 2
    host, port = location
    try:
        report = run_loadtest(
            host=host, port=port, requests=args.requests,
            dedup_ratio=args.dedup_ratio, concurrency=args.concurrency,
            timeout=args.timeout)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_report(report))
    if args.json_out is not None:
        write_report(report, args.json_out)
        print(f"wrote {args.json_out}")
    if report["completed"] == 0:
        print(f"error: no request completed against {host}:{port} "
              f"(is the server up?)", file=sys.stderr)
        return 1
    if (args.min_cache_hit_rate is not None
            and report["cache_hit_rate"] < args.min_cache_hit_rate):
        print(f"error: cache-hit rate {report['cache_hit_rate']:.3f} below "
              f"the --min-cache-hit-rate SLO {args.min_cache_hit_rate:.3f}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    status = 0
    for experiment in registry.all_experiments():
        path = manifest_module.manifest_path(args.output_dir,
                                             experiment.figure)
        if not os.path.exists(path):
            print(f"{experiment.figure}: MISSING manifest ({path})",
                  file=sys.stderr)
            status = 1
            continue
        try:
            manifest = manifest_module.read_manifest(path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"{experiment.figure}: unreadable manifest: {error}",
                  file=sys.stderr)
            status = 1
            continue
        problems = manifest_module.validate_manifest(manifest, experiment)
        if problems:
            status = 1
            for problem in problems:
                print(f"{experiment.figure}: {problem}", file=sys.stderr)
        else:
            print(f"{experiment.figure}: ok ({len(manifest['rows'])} rows)")
    return status


def _cmd_docs(args: argparse.Namespace) -> int:
    documents = (
        (args.output, docs_module.check_experiments_md,
         docs_module.write_experiments_md),
        (args.benchmarks_output, docs_module.check_benchmarks_md,
         docs_module.write_benchmarks_md),
    )
    if args.check:
        status = 0
        for path, check, _ in documents:
            if check(path):
                print(f"{path} is up to date")
            else:
                print(f"{path} is stale; regenerate with "
                      f"`python -m repro docs`", file=sys.stderr)
                status = 1
        return status
    for path, _, write in documents:
        print(f"wrote {write(path)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            old = bench.load_report(old_path)
            new = bench.load_report(new_path)
            regressions, notes = bench.compare_reports(
                old, new, threshold_pct=args.threshold)
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for note in notes:
            print(f"  ok {note}")
        for regression in regressions:
            print(f"  REGRESSION {regression}", file=sys.stderr)
        if regressions:
            print(f"{len(regressions)} benchmark(s) regressed beyond "
                  f"{args.threshold:g}%", file=sys.stderr)
            return 1
        print(f"no regressions beyond {args.threshold:g}% "
              f"({len(new['benchmarks'])} benchmarks compared)")
        return 0

    if args.list_benchmarks:
        benchmarks = bench.all_benchmarks()
        width = max(len(entry.name) for entry in benchmarks)
        for entry in benchmarks:
            print(f"{entry.name:<{width}}  repeat={entry.repeat} "
                  f"warmup={entry.warmup}  {entry.title}")
        return 0

    if args.name == "all":
        names = bench.benchmark_names()
        suite = "ci" if args.json_out else "all"
    else:
        try:
            bench.get_benchmark(args.name)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        names = [args.name]
        suite = args.name

    def _progress(completed, total, entry):
        print(f"  [{completed}/{total}] {entry['name']}: "
              f"median {entry['median_seconds']:.4f}s "
              f"(p10 {entry['p10_seconds']:.4f}s, "
              f"p90 {entry['p90_seconds']:.4f}s, "
              f"repeat {entry['repeat']})")

    report = bench.run_suite(names, suite=suite, repeat=args.repeat,
                             warmup=args.warmup, progress=_progress)
    if args.json_out is not None:
        path = bench.write_report(report, args.json_out)
        print(f"wrote {path}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.tracing import read_trace, summarize_trace, to_chrome_trace

    try:
        records = read_trace(args.trace_file)
    except OSError as error:
        print(f"error: cannot read {args.trace_file}: {error}",
              file=sys.stderr)
        return 2
    if not records:
        print(f"error: no span records in {args.trace_file}",
              file=sys.stderr)
        return 1

    if args.obs_command == "chrome":
        document = json.dumps(to_chrome_trace(records), sort_keys=True)
        if args.output is None:
            print(document)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(f"wrote {args.output} ({len(records)} spans)")
        return 0

    rows = summarize_trace(records)
    if args.json_out:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    width = max(len(str(row["name"])) for row in rows)
    print(f"{'span':<{width}}  {'count':>6} {'total':>10} {'mean':>10} "
          f"{'p50':>10} {'p95':>10} {'max':>10}")
    for row in rows:
        print(f"{row['name']:<{width}}  {row['count']:>6} "
              f"{row['total_seconds']:>10.4f} {row['mean_seconds']:>10.4f} "
              f"{row['p50_seconds']:>10.4f} {row['p95_seconds']:>10.4f} "
              f"{row['max_seconds']:>10.4f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    setup_logging(level=getattr(args, "log_level", "warning"),
                  json_mode=getattr(args, "log_json", False))
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        configure_tracing(path=trace_path)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "loadtest":
            return _cmd_loadtest(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "docs":
            return _cmd_docs(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "obs":
            return _cmd_obs(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        if trace_path is not None:
            disable_tracing()


if __name__ == "__main__":
    sys.exit(main())
