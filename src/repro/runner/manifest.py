"""The JSON artifact manifest every figure runner emits.

One ``results/<figure>.json`` file per figure, written through
:func:`write_manifest` so every artifact has the same shape:

``version``
    manifest format version (currently 1).
``figure`` / ``paper`` / ``title`` / ``module``
    identity of the experiment (mirrors the registry entry).
``reduced`` / ``jobs``
    how the run was launched.
``grid``
    the parameter grid exactly as registered (dict of axes or explicit
    cell list).
``schema``
    ordered row columns; every row carries exactly these keys.
``cells``
    per-cell accounting: the cell params, wall-clock seconds, row count,
    OOM row count, and the error message if the cell raised.
``rows``
    the figure's data, one flat list of ``{**cell_params, **row}`` dicts.
``timings``
    total / max / mean cell wall-clock seconds.

All floats are finite (``inf``/``nan`` are serialised as ``null``) so the
artifacts are strict JSON. :func:`validate_manifest` is the schema check CI
runs on every artifact; it returns a list of human-readable problems.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional

from repro.runner.registry import Experiment, expand_grid

#: Current manifest format version.
MANIFEST_VERSION = 1

#: Keys every manifest must carry.
REQUIRED_KEYS = (
    "version", "figure", "paper", "title", "module", "reduced", "jobs",
    "grid", "schema", "cells", "rows", "timings",
)

#: Keys every per-cell accounting entry must carry.
CELL_KEYS = ("params", "wall_seconds", "num_rows", "oom_rows", "error")


def finite(value):
    """``value`` with non-finite floats replaced by ``None`` (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [finite(item) for item in value]
    return value


def manifest_path(output_dir: str, figure: str) -> str:
    """The artifact path of one figure under ``output_dir``."""
    return os.path.join(output_dir, f"{figure}.json")


def write_manifest(manifest: Dict, output_dir: str) -> str:
    """Serialise ``manifest`` to ``<output_dir>/<figure>.json``.

    Returns:
        The written path.
    """
    os.makedirs(output_dir, exist_ok=True)
    path = manifest_path(output_dir, manifest["figure"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(finite(manifest), handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")
    return path


def read_manifest(path: str) -> Dict:
    """Load one manifest from disk."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def validate_manifest(
    manifest: Dict, experiment: Optional[Experiment] = None
) -> List[str]:
    """Check one manifest against the artifact format (and the registry).

    Args:
        manifest: the parsed JSON document.
        experiment: when given, the manifest is additionally checked against
            the registered schema and grid of the figure.

    Returns:
        A list of problems; empty when the manifest is valid.
    """
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in manifest:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems

    if manifest["version"] != MANIFEST_VERSION:
        problems.append(
            f"version {manifest['version']!r} != {MANIFEST_VERSION}")

    schema = list(manifest["schema"])
    rows = manifest["rows"]
    cells = manifest["cells"]

    for index, cell in enumerate(cells):
        for key in CELL_KEYS:
            if key not in cell:
                problems.append(f"cell {index} missing key {key!r}")
        error = cell.get("error")
        if error:
            problems.append(f"cell {index} ({cell.get('params')}) failed: "
                            f"{error}")

    expected_rows = sum(cell.get("num_rows", 0) for cell in cells)
    if len(rows) != expected_rows:
        problems.append(
            f"{len(rows)} rows but cells account for {expected_rows}")

    schema_set = set(schema)
    for index, row in enumerate(rows):
        if set(row) != schema_set:
            missing = schema_set - set(row)
            extra = set(row) - schema_set
            problems.append(
                f"row {index} keys mismatch schema"
                f"{' (missing ' + ', '.join(sorted(missing)) + ')' if missing else ''}"
                f"{' (extra ' + ', '.join(sorted(extra)) + ')' if extra else ''}")
            break  # one schema report is enough; rows share a producer

    if experiment is not None:
        if manifest["figure"] != experiment.figure:
            problems.append(
                f"figure {manifest['figure']!r} != registered "
                f"{experiment.figure!r}")
        if schema != list(experiment.schema):
            problems.append(
                f"schema {schema} != registered {list(experiment.schema)}")
        expected_cells = len(expand_grid(manifest["grid"]))
        if len(cells) != expected_cells:
            problems.append(
                f"{len(cells)} cells but the grid expands to {expected_cells}")
    return problems
