"""The sweep orchestrator: grid → cells → (parallel) execution → manifest.

A figure's grid is expanded into cells (one dict of parameters each) and the
cells are executed either in-process (``jobs=1``) or across a
``concurrent.futures.ProcessPoolExecutor``. Each worker process builds one
:class:`~repro.runner.context.RunContext` in its initializer, so every cell
the worker executes shares a single :class:`~repro.costmodel.tables.PlanCache`
instead of re-deriving execution plans per cell.

Determinism contract: cells are independent and the plan cache is a pure
memoisation layer, so the manifest ``rows`` of a parallel run are
bit-identical to a serial run — results are collected in grid order
regardless of completion order. ``tests/runner/test_orchestrator.py`` pins
this for a real figure.
"""

from __future__ import annotations

import copy
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro import __version__
from repro.obs.tracing import (configure_tracing, get_tracer, span,
                               tracing_enabled)
from repro.runner.context import RunContext
from repro.runner.manifest import MANIFEST_VERSION, finite, write_manifest
from repro.runner.registry import Experiment, get_experiment
from repro.server.resilience import is_retryable_exception

#: Per-process context of pool workers (created by :func:`_init_worker`).
_WORKER_CONTEXT: Optional[RunContext] = None


@dataclass
class CellOutcome:
    """Execution record of one grid cell.

    ``cache_stats``/``pid`` snapshot the executing process's plan-cache
    counters right after the cell: counters are cumulative per process, so
    the manifest aggregation keeps the *last* snapshot per pid and sums
    across pids — giving fleet-wide hit rates under ``--jobs > 1`` instead
    of just the parent's (historically empty) counters.
    """

    params: Dict[str, object]
    rows: List[Dict[str, object]]
    wall_seconds: float
    oom_rows: int
    error: Optional[str] = None
    retries: int = 0
    cache_stats: Optional[Dict[str, int]] = None
    pid: int = 0
    # Buffered span records drained from a pool worker's tracer; the parent
    # re-emits them into its own sink so one --trace file covers the fleet.
    spans: Optional[List[Dict[str, object]]] = None


def execute_cell(
    experiment: Experiment, params: Dict[str, object], ctx: RunContext,
    max_retries: int = 1,
) -> CellOutcome:
    """Run one cell and account for its wall time and OOM rows.

    A raising cell is retried up to ``max_retries`` times when the failure
    classifies as *retryable* under the server resilience taxonomy (a
    transient infrastructure hiccup, not a deterministic evaluation error);
    still-failing and terminal cells are recorded (traceback in ``error``)
    instead of aborting the sweep — the manifest validator and the CLI
    surface them. Cells are deterministic, so a retried success is
    bit-identical to a first-try success and serial≡parallel row parity is
    unaffected.
    """
    start = time.perf_counter()
    rows: List[Dict[str, object]] = []
    error = None
    attempts = 0
    # Chaos/unit harnesses drive cells with stub experiments lacking ids.
    with span("runner.cell", figure=getattr(experiment, "figure", "?"),
              params=dict(params)):
        while True:
            attempts += 1
            try:
                raw_rows = experiment.cell(ctx, **params)
                rows = [finite({**params, **row}) for row in raw_rows]
                error = None
                break
            except Exception as exc:
                rows = []
                error = traceback.format_exc(limit=8)
                if attempts <= max_retries and is_retryable_exception(exc):
                    continue
                break
    wall = time.perf_counter() - start
    oom_rows = sum(1 for row in rows if row.get("oom"))
    # Chaos/unit harnesses drive cells with a stub context; they simply
    # contribute no cache snapshot.
    plan_cache = getattr(ctx, "plan_cache", None)
    return CellOutcome(params=params, rows=rows, wall_seconds=wall,
                       oom_rows=oom_rows, error=error, retries=attempts - 1,
                       cache_stats=(plan_cache.stats()
                                    if plan_cache is not None else None),
                       pid=os.getpid())


def _init_worker(reduced: bool, trace: bool = False) -> None:
    """Pool initializer: one shared RunContext per worker process."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = RunContext(reduced=reduced)
    if trace:
        # Workers buffer spans in memory; each cell's batch rides back on
        # the CellOutcome and the parent re-emits it into the trace file.
        configure_tracing(buffered=True)


def _run_cell_in_worker(figure: str, params: Dict[str, object],
                        reduced: bool) -> CellOutcome:
    """Top-level (picklable) pool task: execute one cell of ``figure``."""
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None:
        _WORKER_CONTEXT = RunContext(reduced=reduced)
    outcome = execute_cell(get_experiment(figure), params, _WORKER_CONTEXT)
    if tracing_enabled():
        outcome.spans = get_tracer().drain()
    return outcome


def run_experiment(
    figure: str,
    reduced: bool = False,
    jobs: int = 1,
    output_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    pool: Optional[ProcessPoolExecutor] = None,
    context: Optional[RunContext] = None,
) -> Dict:
    """Run one figure's grid and build (optionally write) its manifest.

    Args:
        figure: registered figure id (e.g. ``"fig19"``).
        reduced: use the reduced grid instead of the paper-fidelity one.
        jobs: worker processes; ``1`` executes in-process.
        output_dir: when given, the manifest is written to
            ``<output_dir>/<figure>.json``.
        progress: optional callback receiving one line per completed cell.
        pool: optional externally-owned executor (see :func:`run_all`); its
            workers keep their plan caches warm across figures, so grids
            sharing evaluations (e.g. Figs. 13/14) don't re-derive plans.
        context: optional shared context for the serial path, same purpose.

    Returns:
        The manifest dict (identical to what is written to disk).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    experiment = get_experiment(figure)
    cells = experiment.cells(reduced)

    start = time.perf_counter()
    if (jobs == 1 or len(cells) <= 1) and pool is None:
        ctx = context if context is not None else RunContext(reduced=reduced)
        outcomes = []
        for params in cells:
            outcome = execute_cell(experiment, params, ctx)
            outcomes.append(outcome)
            _report(progress, figure, outcome)
    else:
        owns_pool = pool is None
        if owns_pool:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(cells)),
                initializer=_init_worker,
                initargs=(reduced, tracing_enabled()),
            )
        try:
            # executor.map preserves submission order, so rows come back in
            # grid order and match a serial run exactly.
            outcomes = []
            for outcome in pool.map(
                _run_cell_in_worker,
                [figure] * len(cells), cells, [reduced] * len(cells),
            ):
                if outcome.spans:
                    tracer = get_tracer()
                    for record in outcome.spans:
                        tracer.emit(record)
                    outcome.spans = None
                outcomes.append(outcome)
                _report(progress, figure, outcome)
        finally:
            if owns_pool:
                pool.shutdown()
    total_seconds = time.perf_counter() - start

    manifest = _build_manifest(experiment, outcomes, reduced=reduced,
                               jobs=jobs, total_seconds=total_seconds)
    if output_dir is not None:
        write_manifest(manifest, output_dir)
    return manifest


@contextmanager
def sweep_resources(jobs: int, reduced: bool):
    """Worker pool (``jobs > 1``) or shared serial context for a sweep.

    Yields ``(pool, context)`` — exactly one of the two is not ``None``.
    Sharing them across several ``run_experiment`` calls keeps the
    per-worker plan caches warm between figures that evaluate the same
    (model, spec) cells — e.g. Fig. 14 reads power off the same searches
    Fig. 13 reads latency off.
    """
    if jobs > 1:
        pool = ProcessPoolExecutor(max_workers=jobs,
                                   initializer=_init_worker,
                                   initargs=(reduced, tracing_enabled()))
        try:
            yield pool, None
        finally:
            pool.shutdown()
    else:
        yield None, RunContext(reduced=reduced)


def run_all(
    figures: Optional[List[str]] = None,
    reduced: bool = False,
    jobs: int = 1,
    output_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict]:
    """Run several figures (all registered ones by default) in id order."""
    from repro.runner.registry import figure_ids

    targets = list(figures) if figures is not None else figure_ids()
    manifests: Dict[str, Dict] = {}
    with sweep_resources(jobs, reduced) as (pool, context):
        for figure in targets:
            manifests[figure] = run_experiment(
                figure, reduced=reduced, jobs=jobs, output_dir=output_dir,
                progress=progress, pool=pool, context=context)
    return manifests


def _report(progress: Optional[Callable[[str], None]], figure: str,
            outcome: CellOutcome) -> None:
    if progress is None:
        return
    status = "FAILED" if outcome.error else (
        f"{len(outcome.rows)} rows"
        + (f", {outcome.oom_rows} OOM" if outcome.oom_rows else ""))
    params = ", ".join(f"{k}={v}" for k, v in outcome.params.items())
    progress(f"  [{figure}] {params}: {status} ({outcome.wall_seconds:.2f}s)")


def aggregate_cache_stats(outcomes: List[CellOutcome]) -> Dict[str, object]:
    """Fleet-wide plan-cache counters from per-cell snapshots.

    Counters are cumulative within a process, so only the last snapshot of
    each pid contributes; sums across pids are the whole fleet's totals.
    The parent process of a pooled run executes no cells, so its (empty)
    counters rightly never appear.
    """
    latest: Dict[int, Dict[str, int]] = {}
    for outcome in outcomes:
        if outcome.cache_stats is not None:
            latest[outcome.pid] = outcome.cache_stats
    totals = {"hits": 0, "misses": 0, "entries": 0}
    for snapshot in latest.values():
        for key in totals:
            totals[key] += int(snapshot.get(key, 0))
    lookups = totals["hits"] + totals["misses"]
    return {
        "processes": len(latest),
        **totals,
        "hit_rate": round(totals["hits"] / lookups, 4) if lookups else 0.0,
    }


def _build_manifest(
    experiment: Experiment,
    outcomes: List[CellOutcome],
    reduced: bool,
    jobs: int,
    total_seconds: float,
) -> Dict:
    cell_seconds = [outcome.wall_seconds for outcome in outcomes]
    return {
        "version": MANIFEST_VERSION,
        "repro_version": __version__,
        "figure": experiment.figure,
        "paper": experiment.paper,
        "title": experiment.title,
        "module": experiment.module,
        "reduced": reduced,
        "jobs": jobs,
        # Deep-copied: the manifest must not alias the registry's grid.
        "grid": copy.deepcopy(experiment.grid(reduced)),
        "schema": list(experiment.schema),
        "cells": [
            {
                "params": outcome.params,
                "wall_seconds": round(outcome.wall_seconds, 6),
                "num_rows": len(outcome.rows),
                "oom_rows": outcome.oom_rows,
                "error": outcome.error,
            }
            for outcome in outcomes
        ],
        "rows": [row for outcome in outcomes for row in outcome.rows],
        "plan_cache": aggregate_cache_stats(outcomes),
        "timings": {
            "total_seconds": round(total_seconds, 6),
            "max_cell_seconds": round(max(cell_seconds), 6) if cell_seconds else 0.0,
            "mean_cell_seconds": (
                round(sum(cell_seconds) / len(cell_seconds), 6)
                if cell_seconds else 0.0),
        },
    }
