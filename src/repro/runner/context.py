"""Per-worker execution context shared by every cell a worker runs.

The orchestrator creates one :class:`RunContext` per worker (one total in
serial mode) and passes it to every cell runner. The context owns the shared
:class:`~repro.api.service.PlanService` (and through it the shared
:class:`~repro.costmodel.tables.PlanCache`) — the contract pinned by the
serial-vs-parallel parity test is that the cache is a pure memoisation layer:
a cell must produce bit-identical rows whether its plans come from a cold or
a warm cache, so sharding cells across workers (each with its own cache)
cannot change any result.
"""

from __future__ import annotations

from typing import Optional

from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.simulation.config import SimulatorConfig


class RunContext:
    """Shared state handed to every cell runner of a worker.

    Attributes:
        plan_cache: memoised ``analyze_model`` shared across the worker's
            cells (owned by the worker's :class:`PlanService`).
        reduced: whether the run uses the reduced grids (informational).
    """

    def __init__(
        self,
        plan_cache: Optional[PlanCache] = None,
        reduced: bool = False,
    ) -> None:
        # PlanCache has __len__: `or` would discard an empty shared cache.
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.reduced = reduced
        self._service = None
        self._wafer: Optional[WaferScaleChip] = None
        self._config: Optional[SimulatorConfig] = None

    @property
    def service(self):
        """The worker's :class:`~repro.api.service.PlanService`.

        Built once per worker around the shared plan cache, so every
        scenario the worker's cells evaluate reuses the same memoised
        execution plans and resolved wafers.
        """
        if self._service is None:
            from repro.api.service import PlanService
            self._service = PlanService(plan_cache=self.plan_cache)
        return self._service

    @property
    def wafer(self) -> WaferScaleChip:
        """The default Table I wafer, built once per worker."""
        if self._wafer is None:
            self._wafer = WaferScaleChip()
        return self._wafer

    @property
    def config(self) -> SimulatorConfig:
        """Default simulator knobs, built once per worker."""
        if self._config is None:
            self._config = SimulatorConfig()
        return self._config
