"""The experiment registry: one entry per figure/table of the evaluation.

Every module under :mod:`repro.experiments` registers its figure with
:func:`register` at import time: a cell runner (the unit of parallel work),
the default and reduced parameter grids, and the schema of the manifest rows
it emits. The orchestrator, the CLI, the generated ``EXPERIMENTS.md``, and
``repro.experiments.__all__`` are all derived from this table, so adding a
figure is one decorator — no hand-maintained lists.

A *grid* is either

* a dict mapping axis name to a list of values — expanded as the cartesian
  product (``{"model": [...], "system": [...]}`` → one cell per pair), or
* an explicit list of cell-parameter dicts, for figures whose cells are not
  a full product (e.g. Fig. 4's two sub-studies over different model sets).

A *cell runner* has the signature ``cell(ctx, **params) -> list[dict]``:
``ctx`` is a :class:`repro.runner.context.RunContext` (shared plan cache),
``params`` is one point of the grid, and the returned dicts are merged with
``params`` into manifest rows. The merged keys must equal the registered
``schema`` for every row.
"""

from __future__ import annotations

import importlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Grid = Union[Dict[str, Sequence], List[Dict[str, object]]]

#: Module whose import populates the registry (imports all figure modules).
_EXPERIMENTS_PACKAGE = "repro.experiments"


@dataclass(frozen=True)
class Experiment:
    """Registered metadata and runner of one figure."""

    figure: str
    paper: str
    title: str
    module: str
    cell: Callable
    default_grid: Grid
    reduced_grid: Grid
    schema: Tuple[str, ...]
    entrypoints: Tuple[str, ...] = field(default_factory=tuple)
    description: str = ""
    scenario: Optional[Callable] = None

    def scenario_for(self, **params) -> "object":
        """Build the figure's :class:`repro.api.Scenario` for one cell.

        Every registered figure maps its grid parameters to a Scenario via
        the ``scenario`` builder it registered; this is what makes the grids
        "dicts of Scenario overrides" and what the serde round-trip test
        iterates.

        Raises:
            ValueError: when the figure registered no scenario builder.
        """
        if self.scenario is None:
            raise ValueError(
                f"figure {self.figure!r} registered no scenario builder")
        return self.scenario(**params)

    def grid(self, reduced: bool = False) -> Grid:
        """The parameter grid for the requested fidelity."""
        return self.reduced_grid if reduced else self.default_grid

    def cells(self, reduced: bool = False) -> List[Dict[str, object]]:
        """The expanded cell-parameter list for the requested fidelity."""
        return expand_grid(self.grid(reduced))

    def axes(self) -> List[str]:
        """Axis names of the grid (param keys for explicit cell lists)."""
        grid = self.default_grid
        if isinstance(grid, dict):
            return list(grid)
        keys: List[str] = []
        for cell in grid:
            for key in cell:
                if key not in keys:
                    keys.append(key)
        return keys


_REGISTRY: Dict[str, Experiment] = {}


def register(
    *,
    figure: str,
    paper: str,
    title: str,
    default_grid: Grid,
    reduced_grid: Grid,
    schema: Sequence[str],
    entrypoints: Sequence[str] = (),
    description: str = "",
    scenario: Optional[Callable] = None,
) -> Callable[[Callable], Callable]:
    """Class the decorated cell runner under ``figure`` in the registry.

    Args:
        figure: registry key, e.g. ``"fig13"`` or ``"search_time"``.
        paper: the paper's label, e.g. ``"Fig. 13"`` or ``"§VIII-H"``.
        title: one-line description of what the figure measures.
        default_grid: the paper-fidelity grid.
        reduced_grid: the fast grid used by CI and the test suite.
        schema: keys of every manifest row (cell params merged with the
            runner's row dicts).
        entrypoints: public ``run_*`` functions of the module, re-exported
            from ``repro.experiments``.
        description: longer prose for the generated docs.
        scenario: builder mapping one cell's grid params to the
            :class:`repro.api.Scenario` the cell evaluates (same signature
            as the cell runner minus ``ctx``).
    """

    def decorator(func: Callable) -> Callable:
        if figure in _REGISTRY:
            raise ValueError(f"figure {figure!r} registered twice")
        _REGISTRY[figure] = Experiment(
            figure=figure,
            paper=paper,
            title=title,
            module=func.__module__,
            cell=func,
            default_grid=default_grid,
            reduced_grid=reduced_grid,
            schema=tuple(schema),
            entrypoints=tuple(entrypoints),
            description=description,
            scenario=scenario,
        )
        return func

    return decorator


def ensure_loaded() -> None:
    """Import the experiments package so every figure registers itself."""
    importlib.import_module(_EXPERIMENTS_PACKAGE)


def get_experiment(figure: str) -> Experiment:
    """Look up one registered figure.

    Raises:
        KeyError: when the figure id is unknown; the message lists the
            registered ids.
    """
    ensure_loaded()
    try:
        return _REGISTRY[figure]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown figure {figure!r}; registered: {known}") from None


def all_experiments() -> List[Experiment]:
    """Every registered figure, in id order."""
    ensure_loaded()
    return [_REGISTRY[figure] for figure in sorted(_REGISTRY)]


def figure_ids() -> List[str]:
    """Sorted registered figure ids."""
    ensure_loaded()
    return sorted(_REGISTRY)


def expand_grid(grid: Grid) -> List[Dict[str, object]]:
    """Expand a grid into the ordered list of cell-parameter dicts."""
    if isinstance(grid, dict):
        axes = list(grid)
        combos = itertools.product(*(grid[axis] for axis in axes))
        return [dict(zip(axes, combo)) for combo in combos]
    return [dict(cell) for cell in grid]
