"""Dual-Level Wafer Solver (DLWS, Section VII).

The solver finds the best hybrid parallel configuration for a model on a
wafer. It combines:

* :mod:`repro.solver.search_space` — enumeration and pruning of candidate
  :class:`~repro.parallelism.spec.ParallelSpec` configurations,
* :mod:`repro.solver.dp` — the first level: graph partitioning at
  residual-free boundaries followed by a dynamic program that assigns a spec
  to each operator chain segment,
* :mod:`repro.solver.genetic` — the second level: a genetic algorithm that
  refines the spec assignment (crossover / mutation / elitist selection),
* :mod:`repro.solver.exhaustive` — the slow exhaustive baseline standing in
  for the ILP solver of the search-time comparison (§VIII-H),
* :mod:`repro.solver.dlws` — the orchestrating :class:`DualLevelWaferSolver`.
"""

from repro.solver.search_space import SearchSpace, prune_specs
from repro.solver.dp import DynamicProgrammingResult, optimize_segments
from repro.solver.genetic import GeneticConfig, GeneticRefiner
from repro.solver.exhaustive import ExhaustiveSolver
from repro.solver.dlws import DualLevelWaferSolver, SolverResult

__all__ = [
    "SearchSpace",
    "prune_specs",
    "DynamicProgrammingResult",
    "optimize_segments",
    "GeneticConfig",
    "GeneticRefiner",
    "ExhaustiveSolver",
    "DualLevelWaferSolver",
    "SolverResult",
]
