"""Exhaustive configuration search — the slow baseline of §VIII-H.

The paper compares its dual-level search against an ILP formulation that takes
tens of hours for large models. In this reproduction the slow baseline is an
exhaustive enumeration over joint per-operator assignments (with an optional
cap so the benchmark finishes): the point of the comparison is the scaling of
evaluation counts and wall-clock time, which exhaustive joint enumeration
exhibits in the same way an exact ILP does.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.costmodel.analytical import graph_cost
from repro.hardware.config import WaferConfig
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.graph import ComputeGraph


@dataclass
class ExhaustiveResult:
    """Outcome of the exhaustive search."""

    assignment: Dict[int, ParallelSpec]
    cost: float
    evaluations: int
    elapsed_seconds: float
    truncated: bool


class ExhaustiveSolver:
    """Joint enumeration over per-operator configuration assignments."""

    def __init__(
        self,
        wafer: WaferConfig,
        config: Optional[SimulatorConfig] = None,
        max_evaluations: Optional[int] = None,
    ) -> None:
        self.wafer = wafer
        self.config = config or SimulatorConfig()
        self.max_evaluations = max_evaluations

    def search(
        self,
        graph: ComputeGraph,
        candidates: Sequence[ParallelSpec],
    ) -> ExhaustiveResult:
        """Enumerate every joint assignment (up to ``max_evaluations``)."""
        if not candidates:
            raise ValueError("candidate spec list must not be empty")
        node_ids = [node.node_id for node in graph.nodes()]
        best_cost = float("inf")
        best_assignment: Dict[int, ParallelSpec] = {
            node_id: candidates[0] for node_id in node_ids}
        evaluations = 0
        truncated = False
        start = time.perf_counter()

        for combo in itertools.product(range(len(candidates)), repeat=len(node_ids)):
            if (self.max_evaluations is not None
                    and evaluations >= self.max_evaluations):
                truncated = True
                break
            assignment = {
                node_id: candidates[index]
                for node_id, index in zip(node_ids, combo)
            }
            cost = graph_cost(graph, assignment, self.wafer, self.config)
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment

        elapsed = time.perf_counter() - start
        return ExhaustiveResult(
            assignment=best_assignment,
            cost=best_cost,
            evaluations=evaluations,
            elapsed_seconds=elapsed,
            truncated=truncated,
        )

    @staticmethod
    def total_combinations(num_operators: int, num_candidates: int) -> int:
        """Size of the joint space the exhaustive/ILP search faces."""
        if num_operators < 0 or num_candidates < 0:
            raise ValueError("counts must be non-negative")
        return num_candidates ** num_operators
