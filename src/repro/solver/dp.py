"""First solver level: graph partitioning + dynamic programming (Fig. 12(b)).

The compute graph is first cut into segments that contain no residual
connections (``ComputeGraph.partition_at_residual_boundaries``), which lets
the solver treat each segment as an operator chain. A dynamic program then
walks each chain and picks, operator by operator, the parallel configuration
that minimises the accumulated cost: the intra-operator cost of Eq. (2) plus
the resharding cost of Eq. (3) relative to the previous operator's choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.costmodel.analytical import inter_operator_cost, intra_operator_cost
from repro.hardware.config import WaferConfig
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.graph import ComputeGraph


@dataclass
class DynamicProgrammingResult:
    """Outcome of the DP pass over a compute graph.

    Attributes:
        assignment: node id -> chosen spec.
        total_cost: accumulated cost of the assignment (seconds).
        segment_costs: cost per residual-free segment, in segment order.
        evaluations: number of (operator, spec) cost evaluations performed —
            the quantity the search-time comparison counts.
    """

    assignment: Dict[int, ParallelSpec]
    total_cost: float
    segment_costs: List[float] = field(default_factory=list)
    evaluations: int = 0


def optimize_segments(
    graph: ComputeGraph,
    candidates: Sequence[ParallelSpec],
    wafer: WaferConfig,
    config: Optional[SimulatorConfig] = None,
    memory_limit: Optional[float] = None,
) -> DynamicProgrammingResult:
    """Run the dynamic program over the graph's residual-free segments.

    Args:
        graph: the compute graph (typically one representative layer).
        candidates: the candidate specs each operator may choose from.
        wafer: wafer configuration for the analytical cost model.
        config: simulator knobs.
        memory_limit: optional per-die byte budget; assignments whose summed
            per-operator memory exceeds it are penalised out of the solution.

    Returns:
        The minimising assignment and its cost.
    """
    if not candidates:
        raise ValueError("candidate spec list must not be empty")
    config = config or SimulatorConfig()
    segments = graph.partition_at_residual_boundaries()
    assignment: Dict[int, ParallelSpec] = {}
    segment_costs: List[float] = []
    evaluations = 0
    total = 0.0

    for segment in segments:
        seg_assignment, seg_cost, seg_evals = _optimize_chain(
            graph, segment, candidates, wafer, config, memory_limit)
        assignment.update(seg_assignment)
        segment_costs.append(seg_cost)
        total += seg_cost
        evaluations += seg_evals

    return DynamicProgrammingResult(
        assignment=assignment,
        total_cost=total,
        segment_costs=segment_costs,
        evaluations=evaluations,
    )


def _optimize_chain(
    graph: ComputeGraph,
    chain: Sequence[int],
    candidates: Sequence[ParallelSpec],
    wafer: WaferConfig,
    config: SimulatorConfig,
    memory_limit: Optional[float],
) -> (Dict[int, ParallelSpec], float, int):
    """Classic chain DP: state = (position, spec of the previous operator)."""
    num_ops = len(chain)
    num_specs = len(candidates)
    evaluations = 0

    # intra_cost[i][s]: cost of operator i under spec s; memory[i][s] likewise.
    intra_cost: List[List[float]] = []
    memory: List[List[float]] = []
    for node_id in chain:
        operator = graph.node(node_id).operator
        row_cost: List[float] = []
        row_memory: List[float] = []
        for spec in candidates:
            cost = intra_operator_cost(operator, spec, wafer, config)
            evaluations += 1
            row_cost.append(cost.total)
            row_memory.append(cost.memory_bytes)
        intra_cost.append(row_cost)
        memory.append(row_memory)

    # best[i][s]: minimal cost of the prefix ending at operator i with spec s.
    best = [[float("inf")] * num_specs for _ in range(num_ops)]
    parent = [[-1] * num_specs for _ in range(num_ops)]
    for s in range(num_specs):
        best[0][s] = intra_cost[0][s]
    for i in range(1, num_ops):
        producer = graph.node(chain[i - 1]).operator
        for s in range(num_specs):
            for prev in range(num_specs):
                reshard = inter_operator_cost(
                    producer, candidates[prev], candidates[s], wafer, config)
                evaluations += 1
                cost = best[i - 1][prev] + reshard + intra_cost[i][s]
                if cost < best[i][s]:
                    best[i][s] = cost
                    parent[i][s] = prev

    # Memory feasibility: penalise chains whose total footprint blows the budget.
    if memory_limit is not None:
        for s in range(num_specs):
            footprint = sum(memory[i][s] for i in range(num_ops))
            if footprint > memory_limit:
                best[num_ops - 1][s] = float("inf")

    final_spec = min(range(num_specs), key=lambda s: best[num_ops - 1][s])
    total_cost = best[num_ops - 1][final_spec]
    if total_cost == float("inf"):
        # Every spec violated the memory budget: keep the cheapest anyway so the
        # caller can still report an (OOM) assignment.
        final_spec = min(
            range(num_specs),
            key=lambda s: sum(memory[i][s] for i in range(num_ops)))
        total_cost = sum(intra_cost[i][final_spec] for i in range(num_ops))

    # Backtrack the chosen specs.
    chosen = [0] * num_ops
    chosen[num_ops - 1] = final_spec
    for i in range(num_ops - 1, 0, -1):
        prev = parent[i][chosen[i]]
        chosen[i - 1] = prev if prev >= 0 else chosen[i]

    assignment = {
        chain[i]: candidates[chosen[i]] for i in range(num_ops)
    }
    return assignment, total_cost, evaluations
