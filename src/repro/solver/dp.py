"""First solver level: graph partitioning + dynamic programming (Fig. 12(b)).

The compute graph is first cut into segments that contain no residual
connections (``ComputeGraph.partition_at_residual_boundaries``), which lets
the solver treat each segment as an operator chain. A dynamic program then
walks each chain and picks, operator by operator, the parallel configuration
that minimises the accumulated cost: the intra-operator cost of Eq. (2) plus
the resharding cost of Eq. (3) relative to the previous operator's choice.

The transition relation is evaluated on the vectorized tables of
:class:`~repro.costmodel.tables.CostTables`: each DP step is one
``best[:, None] + reshard + intra`` min-reduction over numpy arrays instead
of ``O(specs^2)`` scalar cost-model calls, which keeps the dual-level search
orders of magnitude faster than the exhaustive baseline even as candidate
lists grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.tables import CostTables
from repro.hardware.config import WaferConfig
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.graph import ComputeGraph


@dataclass
class DynamicProgrammingResult:
    """Outcome of the DP pass over a compute graph.

    Attributes:
        assignment: node id -> chosen spec.
        total_cost: accumulated cost of the assignment (seconds).
        segment_costs: cost per residual-free segment, in segment order.
        evaluations: number of cost-table cells materialised on behalf of
            this optimisation — the quantity the search-time comparison
            counts. On fresh tables it matches the count of scalar
            (operator, spec) and (operator, spec, spec) evaluations the
            unvectorized implementation performed.
    """

    assignment: Dict[int, ParallelSpec]
    total_cost: float
    segment_costs: List[float] = field(default_factory=list)
    evaluations: int = 0


def optimize_segments(
    graph: ComputeGraph,
    candidates: Sequence[ParallelSpec],
    wafer: WaferConfig,
    config: Optional[SimulatorConfig] = None,
    memory_limit: Optional[float] = None,
    tables: Optional[CostTables] = None,
) -> DynamicProgrammingResult:
    """Run the dynamic program over the graph's residual-free segments.

    Args:
        graph: the compute graph (typically one representative layer).
        candidates: the candidate specs each operator may choose from.
        wafer: wafer configuration for the analytical cost model.
        config: simulator knobs.
        memory_limit: optional per-die byte budget; assignments whose summed
            per-operator memory exceeds it are penalised out of the solution.
        tables: pre-built cost tables to reuse (the DLWS solver shares one
            instance across both levels); built on demand when omitted.

    Returns:
        The minimising assignment and its cost.
    """
    if not candidates:
        raise ValueError("candidate spec list must not be empty")
    config = config or SimulatorConfig()
    if tables is None:
        tables = CostTables(graph, candidates, wafer, config)
    else:
        tables.ensure_compatible(graph, candidates, wafer, config)
    cells_before = tables.cells_materialized
    segments = graph.partition_at_residual_boundaries()
    assignment: Dict[int, ParallelSpec] = {}
    segment_costs: List[float] = []
    total = 0.0

    for segment in segments:
        seg_assignment, seg_cost = _optimize_chain(
            graph, segment, candidates, tables, memory_limit)
        assignment.update(seg_assignment)
        segment_costs.append(seg_cost)
        total += seg_cost

    return DynamicProgrammingResult(
        assignment=assignment,
        total_cost=total,
        segment_costs=segment_costs,
        evaluations=tables.cells_materialized - cells_before,
    )


def _optimize_chain(
    graph: ComputeGraph,
    chain: Sequence[int],
    candidates: Sequence[ParallelSpec],
    tables: CostTables,
    memory_limit: Optional[float],
) -> Tuple[Dict[int, ParallelSpec], float]:
    """Classic chain DP: state = (position, spec of the previous operator)."""
    num_ops = len(chain)
    num_specs = len(candidates)

    intra = [tables.intra_row(node_id) for node_id in chain]
    memory = [tables.memory_row(node_id) for node_id in chain]

    # best[s]: minimal cost of the prefix ending at the current operator with
    # spec s; parent[i][s] backtracks the minimising predecessor spec.
    best = intra[0].copy()
    parent = np.full((num_ops, num_specs), -1, dtype=np.int64)
    for i in range(1, num_ops):
        transition = (
            best[:, None]
            + tables.reshard_matrix(chain[i - 1])
            + intra[i][None, :]
        )
        parent[i] = np.argmin(transition, axis=0)
        best = transition[parent[i], np.arange(num_specs)]

    # Memory feasibility: penalise chains whose total footprint blows the
    # budget. Keep the unpenalised costs so the OOM fallback below can still
    # report the true cost of the path it returns.
    unpenalized = best
    if memory_limit is not None:
        footprint = np.sum(memory, axis=0)
        best = np.where(footprint > memory_limit, np.inf, best)

    final_spec = int(np.argmin(best))
    total_cost = float(best[final_spec])
    if total_cost == float("inf"):
        # Every spec violated the memory budget: keep the smallest-footprint
        # spec anyway so the caller can still report an (OOM) assignment, and
        # charge it the full path cost — intra plus resharding — of the path
        # the backtrack below returns.
        final_spec = int(np.argmin(np.sum(memory, axis=0)))
        total_cost = float(unpenalized[final_spec])

    # Backtrack the chosen specs.
    chosen = [0] * num_ops
    chosen[num_ops - 1] = final_spec
    for i in range(num_ops - 1, 0, -1):
        prev = int(parent[i][chosen[i]])
        chosen[i - 1] = prev if prev >= 0 else chosen[i]

    assignment = {
        chain[i]: candidates[chosen[i]] for i in range(num_ops)
    }
    return assignment, total_cost
