"""Candidate-configuration enumeration and pruning.

Given a die count, the search space of hybrid configurations grows
combinatorially (this is Challenge 3 of the paper). The solver keeps it
manageable with structural pruning:

* degrees must be divisors of the die count,
* the TP degree cannot exceed the number of attention heads,
* the TATP degree is capped (the paper's sweet-spot analysis bounds useful
  degrees at around 32),
* configurations whose estimated per-die memory footprint already exceeds the
  HBM capacity by a wide margin are dropped before simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.costmodel.tables import PlanCache
from repro.hardware.config import WaferConfig, default_wafer_config
from repro.parallelism.baselines import BaselineScheme, candidate_specs
from repro.parallelism.spec import ParallelSpec
from repro.workloads.models import ModelConfig


@dataclass
class SearchSpace:
    """The candidate configurations the solver explores for one model.

    Attributes:
        model: the model being optimised.
        num_devices: dies available.
        scheme: which scheme's configuration space to enumerate (TEMP by
            default — the full space including TATP).
        max_tp: cap on tensor parallel degree.
        max_tatp: cap on TATP degree.
        pipeline_degrees: pipeline degrees to consider.
    """

    model: ModelConfig
    num_devices: int
    scheme: BaselineScheme = BaselineScheme.TEMP
    max_tp: int = 32
    max_tatp: int = 32
    pipeline_degrees: Sequence[int] = (1,)

    def candidates(self) -> List[ParallelSpec]:
        """Enumerate the raw candidate configurations."""
        max_tp = min(self.max_tp, self.model.num_heads)
        return candidate_specs(
            self.scheme,
            self.num_devices,
            max_tp=max_tp,
            max_tatp=self.max_tatp,
            pipeline_degrees=self.pipeline_degrees,
        )

    def pruned_candidates(
        self,
        wafer: Optional[WaferConfig] = None,
        memory_margin: float = 1.5,
        plan_cache: Optional[PlanCache] = None,
    ) -> List[ParallelSpec]:
        """Candidates surviving the memory-based pruning."""
        wafer = wafer or default_wafer_config()
        return prune_specs(
            self.candidates(), self.model, wafer, memory_margin=memory_margin,
            plan_cache=plan_cache)


def prune_specs(
    specs: Iterable[ParallelSpec],
    model: ModelConfig,
    wafer: WaferConfig,
    memory_margin: float = 1.5,
    plan_cache: Optional[PlanCache] = None,
) -> List[ParallelSpec]:
    """Drop configurations that cannot possibly fit in memory.

    Args:
        specs: candidate configurations.
        model: the model being trained.
        wafer: wafer configuration providing the per-die HBM capacity.
        memory_margin: configurations whose estimated footprint exceeds
            ``memory_margin x capacity`` are pruned outright (mildly
            over-capacity candidates are kept so the simulator can report them
            as OOM, matching how the paper presents OOM bars).
        plan_cache: shared execution-plan cache; callers that analyse the
            surviving specs again (finalist ranking, simulation) pass their
            cache here so every plan is derived exactly once. A private cache
            is used when omitted.

    Returns:
        The surviving configurations, in the original order.
    """
    if memory_margin <= 0:
        raise ValueError(f"memory_margin must be positive, got {memory_margin}")
    # Explicit None check: an empty PlanCache is falsy (it has __len__).
    if plan_cache is None:
        plan_cache = PlanCache()
    capacity = wafer.die.hbm.capacity
    survivors: List[ParallelSpec] = []
    for spec in specs:
        plan = plan_cache.analyze(model, spec)
        if plan.memory.total <= capacity * memory_margin:
            survivors.append(spec)
            continue
        # A configuration may still become feasible once activation
        # checkpointing is enabled; keep it if the checkpointed footprint is
        # within the margin.
        checkpointed = plan_cache.analyze(
            model, spec, activation_checkpointing=True)
        if checkpointed.memory.total <= capacity * memory_margin:
            survivors.append(spec)
    return survivors
