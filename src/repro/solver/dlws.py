"""The Dual-Level Wafer Solver (DLWS).

DLWS orchestrates the full search for one model on one wafer:

1. enumerate and prune candidate configurations (:mod:`repro.solver.search_space`),
2. build the representative-layer compute graph and cut it at residual-free
   boundaries,
3. run the dynamic program to get a strong per-operator assignment,
4. refine it with the genetic algorithm,
5. evaluate the best whole-model configurations through the full simulator and
   return the winner together with its simulation report.

Steps 3-4 use the fast analytical/learned cost model; only a handful of
finalists reach the simulator, which is how the solver stays ~200x faster than
exhaustive/ILP search while matching its quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.costmodel.tables import CostTables, PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.obs.tracing import span
from repro.parallelism.baselines import BaselineScheme
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import ExecutionPlan
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import SimulationReport, WaferSimulator
from repro.solver.dp import optimize_segments
from repro.solver.genetic import GeneticConfig, GeneticRefiner
from repro.solver.search_space import SearchSpace
from repro.workloads.models import ModelConfig
from repro.workloads.transformer import representative_layer_graph


@dataclass
class SolverResult:
    """Outcome of one DLWS run."""

    model: ModelConfig
    best_spec: ParallelSpec
    best_report: SimulationReport
    candidates_considered: int
    finalists_simulated: int
    dp_cost: float
    ga_cost: float
    search_seconds: float
    evaluations: int
    reports: Dict[str, SimulationReport] = field(default_factory=dict)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


class DualLevelWaferSolver:
    """Search for the optimal hybrid configuration of a model on a wafer."""

    def __init__(
        self,
        wafer: Optional[WaferScaleChip] = None,
        config: Optional[SimulatorConfig] = None,
        genetic_config: Optional[GeneticConfig] = None,
        num_finalists: int = 8,
        mapping_engine: str = "tcme",
        tables_provider=None,
    ) -> None:
        if num_finalists < 1:
            raise ValueError("num_finalists must be at least 1")
        self.wafer = wafer or WaferScaleChip()
        self.config = config or SimulatorConfig()
        self.genetic_config = genetic_config or GeneticConfig(generations=12,
                                                              population_size=16)
        self.num_finalists = num_finalists
        self.mapping_engine = mapping_engine
        # Optional (model, candidates) -> CostTables hook letting a portfolio
        # runner share tables across solves; see
        # repro.costmodel.portfolio.PortfolioTables.tables_for.
        self.tables_provider = tables_provider
        self.simulator = WaferSimulator(self.wafer, self.config)

    def solve(
        self,
        model: ModelConfig,
        scheme: BaselineScheme = BaselineScheme.TEMP,
        max_tatp: int = 32,
        pipeline_degrees: Sequence[int] = (1,),
    ) -> SolverResult:
        """Find the best configuration of ``model`` on this solver's wafer."""
        start = time.perf_counter()
        num_devices = self.wafer.num_dies
        # One plan cache per solve: pruning, finalist ranking, and finalist
        # simulation all share a single analyze_model result per (model, spec).
        plan_cache = PlanCache()
        space = SearchSpace(
            model=model,
            num_devices=num_devices,
            scheme=scheme,
            max_tatp=max_tatp,
            pipeline_degrees=pipeline_degrees,
        )
        with span("solver.prune"):
            candidates = space.pruned_candidates(
                self.wafer.config, plan_cache=plan_cache)
            if not candidates:
                candidates = space.candidates()

        # One set of vectorized cost tables feeds both solver levels. A
        # provider (portfolio batching) hands back tables built over its own
        # representative graph, so the solve must adopt that graph too.
        with span("solver.tables", candidates=len(candidates)):
            if self.tables_provider is not None:
                tables = self.tables_provider(model, candidates)
                layer_graph = tables.graph
            else:
                layer_graph = representative_layer_graph(model)
                # The fabric's analytic hop model: 1 on the default mesh,
                # higher on fabrics whose canonical die groups cannot ring
                # cheaply.
                tables = CostTables(
                    layer_graph, candidates, self.wafer.config, self.config,
                    hop_factor=self.wafer.topology.collective_hop_factor())

        # Level 1: dynamic program over the representative layer.
        with span("solver.dp", candidates=len(candidates)):
            dp_result = optimize_segments(
                layer_graph, candidates, self.wafer.config, self.config,
                memory_limit=self.wafer.config.die.hbm.capacity,
                tables=tables)

        # Level 2: genetic refinement of the DP assignment.
        with span("solver.ga",
                  generations=self.genetic_config.generations):
            refiner = GeneticRefiner(
                layer_graph, candidates, self.wafer.config, self.config,
                genetic_config=self.genetic_config, tables=tables)
            ga_result = refiner.refine(
                initial_assignment=dp_result.assignment)

        # Finalists: whole-model candidates ranked by the fast cost model, then
        # validated through the full simulator with the TCME mapping.
        finalists = self._select_finalists(model, candidates, plan_cache)
        with span("solver.simulate", finalists=len(finalists)):
            reports: Dict[str, SimulationReport] = {}
            best_spec: Optional[ParallelSpec] = None
            best_report: Optional[SimulationReport] = None
            for spec in finalists:
                plan = plan_cache.analyze(model, spec,
                                          num_devices=num_devices)
                report = self.simulator.simulate(
                    plan, engine=self.mapping_engine)
                reports[spec.label()] = report
                if report.oom:
                    continue
                if (best_report is None
                        or report.step_time < best_report.step_time):
                    best_spec, best_report = spec, report
            if best_report is None:
                # Every finalist went OOM; fall back to the
                # least-over-capacity one.
                best_spec = min(
                    finalists,
                    key=lambda s: reports[s.label()].memory_pressure)
                best_report = reports[best_spec.label()]

        elapsed = time.perf_counter() - start
        return SolverResult(
            model=model,
            best_spec=best_spec,
            best_report=best_report,
            candidates_considered=len(candidates),
            finalists_simulated=len(finalists),
            dp_cost=dp_result.total_cost,
            ga_cost=ga_result.cost,
            search_seconds=elapsed,
            evaluations=dp_result.evaluations + ga_result.evaluations,
            reports=reports,
            plan_cache_hits=plan_cache.hits,
            plan_cache_misses=plan_cache.misses,
        )

    def _select_finalists(
        self,
        model: ModelConfig,
        candidates: Sequence[ParallelSpec],
        plan_cache: PlanCache,
    ) -> List[ParallelSpec]:
        """Rank candidates with the fast analytical plan and keep the best few."""
        scored: List[tuple] = []
        capacity = self.wafer.config.die.hbm.capacity
        for spec in candidates:
            plan = plan_cache.analyze(model, spec, num_devices=self.wafer.num_dies)
            fits = plan.memory.total <= capacity
            score = self._fast_score(plan)
            scored.append((not fits, score, spec))
        scored.sort(key=lambda item: (item[0], item[1]))
        finalists = [spec for _, _, spec in scored[: self.num_finalists]]
        return finalists

    def _fast_score(self, plan: ExecutionPlan) -> float:
        """Cheap step-time proxy: compute time + critical wire time."""
        sustained = self.wafer.config.die.peak_flops * self.config.base_mfu
        compute = plan.flops_per_device / sustained
        bandwidth = self.wafer.config.d2d.bandwidth
        critical = plan.critical_comm_bytes() / bandwidth
        exposed = max(0.0, plan.overlap_comm_bytes() / bandwidth - compute)
        return compute + critical + exposed
