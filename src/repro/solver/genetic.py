"""Second solver level: genetic-algorithm refinement.

The dynamic program produces a good per-operator assignment quickly; the
genetic stage then explores combinations the DP's greedy chain structure
cannot reach (e.g. trading a worse spec on one operator for a much better
resharding pattern two operators later). Genes encode the per-operator spec
index; the population evolves with tournament selection, single-point
crossover, per-gene mutation, and elitism. Because the DP already pared the
space down, a few dozen generations converge.

Fitness is read from the vectorized tables of
:class:`~repro.costmodel.tables.CostTables`: the initial population is scored
with one fancy-indexed pass, elites carry their cost forward, and each child
is scored incrementally from its first parent's cost by re-evaluating only
the genes the crossover/mutation changed (and the resharding edges incident
to them) instead of rescoring the whole graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.tables import CostTables
from repro.hardware.config import WaferConfig
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.graph import ComputeGraph


@dataclass(frozen=True)
class GeneticConfig:
    """Hyper-parameters of the genetic refinement stage."""

    population_size: int = 24
    generations: int = 30
    crossover_rate: float = 0.8
    mutation_rate: float = 0.08
    elite_count: int = 2
    tournament_size: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise ValueError("elite_count must be in [0, population_size)")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")


@dataclass
class GeneticResult:
    """Outcome of the genetic refinement."""

    assignment: Dict[int, ParallelSpec]
    cost: float
    generations_run: int
    evaluations: int
    history: List[float] = field(default_factory=list)


class GeneticRefiner:
    """Genetic-algorithm search over per-operator spec assignments."""

    def __init__(
        self,
        graph: ComputeGraph,
        candidates: Sequence[ParallelSpec],
        wafer: WaferConfig,
        config: Optional[SimulatorConfig] = None,
        genetic_config: Optional[GeneticConfig] = None,
        cost_function: Optional[Callable[[Dict[int, ParallelSpec]], float]] = None,
        tables: Optional[CostTables] = None,
    ) -> None:
        if not candidates:
            raise ValueError("candidate spec list must not be empty")
        self.graph = graph
        self.candidates = list(candidates)
        self.wafer = wafer
        self.sim_config = config or SimulatorConfig()
        self.config = genetic_config or GeneticConfig()
        self._cost_function = cost_function
        self._node_ids = [node.node_id for node in graph.nodes()]
        self._spec_index = {
            spec: index for index, spec in enumerate(self.candidates)}
        # A custom cost function bypasses the analytical model entirely, so
        # the tables are only built (or accepted) for the default fitness.
        self._tables: Optional[CostTables] = None
        if cost_function is None:
            if tables is not None:
                tables.ensure_compatible(
                    graph, self.candidates, wafer, self.sim_config)
                self._tables = tables
            else:
                self._tables = CostTables(
                    graph, self.candidates, wafer, self.sim_config)
        self._evaluations = 0

    # Cost -------------------------------------------------------------------------

    def _cost_of(self, genome: Sequence[int]) -> float:
        self._evaluations += 1
        if self._cost_function is not None:
            return self._cost_function(self._assignment_from(genome))
        return self._tables.genome_cost(np.asarray(genome, dtype=np.int64))

    def _child_cost(
        self, parent: Sequence[int], parent_cost: float, child: Sequence[int]
    ) -> float:
        """Score a child incrementally from its first parent where possible."""
        if self._cost_function is not None:
            return self._cost_of(child)
        self._evaluations += 1
        return self._tables.delta_cost(parent, parent_cost, child)

    def _population_costs(self, population: List[List[int]]) -> List[float]:
        """Score a whole population (vectorized on the tables when available)."""
        if self._cost_function is not None:
            return [self._cost_of(genome) for genome in population]
        self._evaluations += len(population)
        genomes = np.asarray(population, dtype=np.int64)
        return [float(cost) for cost in self._tables.population_costs(genomes)]

    def _assignment_from(self, genome: Sequence[int]) -> Dict[int, ParallelSpec]:
        return {
            node_id: self.candidates[gene]
            for node_id, gene in zip(self._node_ids, genome)
        }

    # Search ------------------------------------------------------------------------

    def refine(
        self, initial_assignment: Optional[Dict[int, ParallelSpec]] = None
    ) -> GeneticResult:
        """Run the genetic search, optionally seeded with a DP assignment."""
        rng = random.Random(self.config.seed)
        genome_length = len(self._node_ids)
        num_specs = len(self.candidates)
        self._evaluations = 0

        population: List[List[int]] = []
        if initial_assignment is not None:
            population.append(self._genome_from(initial_assignment))
        while len(population) < self.config.population_size:
            population.append(
                [rng.randrange(num_specs) for _ in range(genome_length)])

        costs = self._population_costs(population)
        history: List[float] = [min(costs)]

        for _ in range(self.config.generations):
            population, costs = self._next_generation(population, costs, rng, num_specs)
            history.append(min(costs))

        best_index = min(range(len(population)), key=lambda i: costs[i])
        best_genome = population[best_index]
        return GeneticResult(
            assignment=self._assignment_from(best_genome),
            cost=costs[best_index],
            generations_run=self.config.generations,
            evaluations=self._evaluations,
            history=history,
        )

    def _genome_from(self, assignment: Dict[int, ParallelSpec]) -> List[int]:
        return [
            self._spec_index.get(assignment[node_id], 0)
            for node_id in self._node_ids
        ]

    def _next_generation(
        self,
        population: List[List[int]],
        costs: List[float],
        rng: random.Random,
        num_specs: int,
    ) -> Tuple[List[List[int]], List[float]]:
        order = sorted(range(len(population)), key=lambda i: costs[i])
        next_population: List[List[int]] = [
            list(population[order[i]]) for i in range(self.config.elite_count)
        ]
        # Elites keep their (deterministic) cost; only new children are scored.
        next_costs: List[float] = [
            costs[order[i]] for i in range(self.config.elite_count)
        ]
        while len(next_population) < self.config.population_size:
            index_a = self._tournament(population, costs, rng)
            index_b = self._tournament(population, costs, rng)
            parent_a = list(population[index_a])
            child = self._crossover(parent_a, population[index_b], rng)
            self._mutate(child, rng, num_specs)
            next_population.append(child)
            next_costs.append(
                self._child_cost(parent_a, costs[index_a], child))
        return next_population, next_costs

    def _tournament(
        self, population: List[List[int]], costs: List[float], rng: random.Random
    ) -> int:
        contenders = rng.sample(range(len(population)),
                                min(self.config.tournament_size, len(population)))
        return min(contenders, key=lambda i: costs[i])

    def _crossover(
        self, parent_a: List[int], parent_b: List[int], rng: random.Random
    ) -> List[int]:
        if len(parent_a) <= 1 or rng.random() > self.config.crossover_rate:
            return list(parent_a)
        point = rng.randrange(1, len(parent_a))
        return parent_a[:point] + parent_b[point:]

    def _mutate(self, genome: List[int], rng: random.Random, num_specs: int) -> None:
        for index in range(len(genome)):
            if rng.random() < self.config.mutation_rate:
                genome[index] = rng.randrange(num_specs)
