"""Unified observability: metrics registry, tracing spans, structured logs.

The one instrumentation layer every dispatch path reports through — see
:mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`, :mod:`repro.obs.logs`.
"""

from repro.obs.logs import JsonFormatter, setup_logging
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    CounterBundle,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    flatten_stats,
    prometheus_name,
    render_prometheus,
    set_default_registry,
)
from repro.obs.tracing import (
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    read_trace,
    span,
    summarize_trace,
    to_chrome_trace,
    tracing_enabled,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "CounterBundle",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricError",
    "MetricsRegistry",
    "Tracer",
    "configure_tracing",
    "default_registry",
    "disable_tracing",
    "flatten_stats",
    "get_tracer",
    "prometheus_name",
    "read_trace",
    "render_prometheus",
    "set_default_registry",
    "setup_logging",
    "span",
    "summarize_trace",
    "to_chrome_trace",
    "tracing_enabled",
]
