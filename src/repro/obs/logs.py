"""Structured logging: the ``repro`` logger with an optional JSON formatter.

Every CLI verb accepts ``--log-level`` / ``--log-json``; both feed
:func:`setup_logging`, which configures the ``"repro"`` logger namespace
(components log via ``logging.getLogger("repro.<area>")``). JSON mode
emits one object per line — ``{"ts", "level", "logger", "message"}`` plus
any ``extra`` fields — so server logs can be shipped without a parser.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

#: Attributes of a LogRecord that are plumbing, not user payload.
_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra={...}`` keys ride along."""

    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                document[key] = value
        if record.exc_info:
            document["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True)


class TextFormatter(logging.Formatter):
    """Human-oriented single-line format with wall-clock timestamps."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S")

    def formatTime(self, record: logging.LogRecord,
                   datefmt: Optional[str] = None) -> str:
        return time.strftime(datefmt or "%H:%M:%S",
                             time.localtime(record.created))


def setup_logging(level: str = "warning", json_mode: bool = False,
                  stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent, returns the logger.

    Replaces any handler a previous call installed, so tests and repeated
    CLI dispatches reconfigure cleanly instead of stacking handlers.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper(), logging.WARNING))
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
