"""The metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` holds every metric a component records. The
design follows the Prometheus client model, adapted to this repo's two
constraints — zero third-party dependencies, and a scheduler that must
aggregate telemetry coming back from pool workers:

* metrics are *named* (dotted, e.g. ``"scheduler.queue_wait_seconds"``) and
  get-or-created idempotently, so instrumentation sites never coordinate;
* histograms use **fixed upper-bound buckets** with linearly interpolated
  p50/p95/p99 estimation — cheap to record, cheap to merge, and exactly the
  shape Prometheus exposes;
* every registry produces a plain-JSON :meth:`~MetricsRegistry.snapshot`
  that another registry can :meth:`~MetricsRegistry.merge_snapshot`, which
  is how per-worker registries aggregate across the process pool;
* :func:`render_prometheus` turns a stats document plus histogram snapshots
  into the Prometheus text exposition format (``GET
  /metrics?format=prometheus``).

There is a process-global :func:`default_registry` for CLI-style call
sites; components that must stay isolated (a scheduler per test, a service
per pool worker) take an injectable instance instead.

:class:`CounterBundle` is the one ``snapshot()`` convention shared by the
components that predate this module (``PlanCache``, ``ResultStore``, the
scheduler) — a dict of named integer counters with ``inc``/``merge``/
``snapshot``, replacing their three hand-rolled counter-dict shapes.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds) for latency metrics:
#: sub-millisecond cache hits through minute-long searches.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Bucket upper bounds for small-count histograms (batch sizes, group sizes).
COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


class MetricError(ValueError):
    """A metric was declared twice with conflicting types or buckets."""


class Counter:
    """A monotonically increasing named value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def merge(self, value: float) -> None:
        self.value += value


class Gauge:
    """A named value that can go up and down (last write wins on merge)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value

    def merge(self, value: float) -> None:
        # Gauges are point-in-time readings; summing worker gauges is the
        # aggregation that makes sense for the sizes we track (entries,
        # in-flight counts).
        self.value += value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimation.

    ``buckets`` are *upper bounds* (ascending); an implicit +Inf bucket
    catches overflow. ``observe`` is O(log buckets); ``percentile`` walks
    the cumulative counts and linearly interpolates inside the landing
    bucket, clamping to the true observed ``max`` so the +Inf bucket never
    fabricates values. Snapshots are mergeable across registries with
    identical bucket bounds.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name!r} buckets must be strictly ascending "
                f"upper bounds, got {buckets!r}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (non-finite values are dropped)."""
        if not math.isfinite(value):
            return
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if value <= self.bounds[mid]:
                high = mid
            else:
                low = mid + 1
        with self._lock:
            self.counts[low] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` (0..1) from the bucket counts.

        Interpolates linearly between a bucket's lower and upper bound by
        the rank's position inside the bucket; the first bucket's lower
        bound is 0 and the overflow bucket reports the observed ``max``.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if self.count == 0:
            return 0.0
        target = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index == len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = ((target - previous) / bucket_count
                            if bucket_count else 1.0)
                estimate = lower + (upper - lower) * max(0.0, fraction)
                return min(estimate, self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        """Plain-JSON digest: count, sum, mean, max, p50/p95/p99."""
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "mean": round(self.mean, 9),
            "max": round(self.max, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        if list(snapshot["bounds"]) != list(self.bounds):
            raise MetricError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ")
        with self._lock:
            for index, value in enumerate(snapshot["counts"]):
                self.counts[index] += int(value)
            self.count += int(snapshot["count"])
            self.sum += float(snapshot["sum"])
            self.max = max(self.max, float(snapshot["max"]))


class MetricsRegistry:
    """Named metrics with idempotent get-or-create and mergeable snapshots."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory) -> object:
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise MetricError(f"{name!r} is already a {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise MetricError(f"{name!r} is already a {metric.kind}")
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, buckets=buckets))
        if not isinstance(metric, Histogram):
            raise MetricError(f"{name!r} is already a {metric.kind}")
        if tuple(float(bound) for bound in buckets) != metric.bounds:
            raise MetricError(
                f"histogram {name!r} re-declared with different buckets")
        return metric

    def metrics(self) -> List[object]:
        """Every registered metric, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-JSON state of every metric, keyed by kind then name.

        The wire format of cross-process aggregation: workers ship it back
        with each group result and the scheduler feeds it to
        :meth:`merge_snapshot`.
        """
        doc: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            doc[metric.kind + "s"][metric.name] = metric.snapshot()
        return doc

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).merge(value)
        for name, digest in snapshot.get("histograms", {}).items():
            self.histogram(
                name, buckets=digest["bounds"]).merge(digest)

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """``{name: summary()}`` for every histogram (the JSON digest)."""
        return {metric.name: metric.summary() for metric in self.metrics()
                if isinstance(metric, Histogram)}

    def histogram_snapshots(self) -> Dict[str, Dict[str, object]]:
        """``{name: snapshot()}`` for every histogram (bucket-level detail,
        the shape :func:`render_prometheus` consumes)."""
        return {metric.name: metric.snapshot() for metric in self.metrics()
                if isinstance(metric, Histogram)}


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry CLI-style call sites record into."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (tests); returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


# Counter bundles -----------------------------------------------------------------


class CounterBundle(dict):
    """Named integer counters with one shared snapshot()/merge() convention.

    A plain ``dict`` subclass, so legacy call sites keep working unchanged
    (``bundle["requests"] += 1``, ``dict(bundle)``), plus attribute access
    (``bundle.hits += 1``) for the components that exposed counters as
    attributes. ``snapshot()`` is the one counter-dict shape ``PlanCache``,
    ``ResultStore``, and the scheduler now share.
    """

    def __init__(self, **initial: int) -> None:
        super().__init__(initial)

    def __getattr__(self, name: str) -> int:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        self[name] = value

    def inc(self, name: str, amount: int = 1) -> None:
        self[name] = self.get(name, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        """Plain-JSON counter dict (a copy, safe to ship across processes)."""
        return dict(self)

    def merge(self, other: Mapping[str, int]) -> None:
        """Fold another bundle's snapshot into this one (summing)."""
        for name, value in other.items():
            self[name] = self.get(name, 0) + value

    def reset(self) -> None:
        for name in self:
            self[name] = 0


# Prometheus exposition -----------------------------------------------------------


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A dotted metric name as a valid Prometheus metric name."""
    flat = _NAME_SANITIZER.sub("_", name.strip())
    return f"{prefix}_{flat}" if prefix else flat


def flatten_stats(document: Mapping[str, object],
                  prefix: str = "",
                  skip: Iterable[str] = (),
                  ) -> List[Tuple[str, float]]:
    """Numeric leaves of a nested stats document as ``(path, value)`` pairs.

    Booleans become 0/1, ``None`` and non-numeric leaves are dropped, and
    top-level keys named in ``skip`` are excluded (histograms are exposed
    natively, not re-flattened).
    """
    skipped = set(skip)
    pairs: List[Tuple[str, float]] = []
    for key, value in document.items():
        if not prefix and key in skipped:
            continue
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            pairs.extend(flatten_stats(value, prefix=path))
        elif isinstance(value, bool):
            pairs.append((path, 1.0 if value else 0.0))
        elif isinstance(value, (int, float)) and math.isfinite(value):
            pairs.append((path, float(value)))
    return pairs


def render_prometheus(stats: Mapping[str, object],
                      histograms: Optional[Mapping[str, Mapping]] = None,
                      skip: Iterable[str] = ("timings",),
                      prefix: str = "repro") -> str:
    """Prometheus text exposition of a stats document plus histograms.

    ``stats`` is a nested plain-JSON document (the bit-compatible
    ``GET /metrics`` body); every numeric leaf becomes one gauge sample.
    ``histograms`` maps names to :meth:`Histogram.snapshot` documents and is
    rendered natively (``_bucket``/``_sum``/``_count`` series with
    cumulative ``le`` labels). Serve with :data:`PROMETHEUS_CONTENT_TYPE`.
    """
    lines: List[str] = []
    for path, value in flatten_stats(stats, skip=skip):
        name = prometheus_name(path, prefix=prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    for metric_name in sorted(histograms or {}):
        digest = histograms[metric_name]
        name = prometheus_name(metric_name, prefix=prefix)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(digest["bounds"], digest["counts"]):
            cumulative += int(count)
            lines.append(
                f'{name}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cumulative}")
        cumulative += int(digest["counts"][len(digest["bounds"])])
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(float(digest['sum']))}")
        lines.append(f"{name}_count {int(digest['count'])}")
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    """A float as Prometheus text (integers without a trailing ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
