"""Tracing: nested spans with monotonic wall times, across processes.

The API is one function::

    from repro.obs import span

    with span("solver.dp", candidates=len(candidates)):
        ...

When tracing is disabled (the default) ``span`` returns a shared no-op
context manager — the instrumentation sites stay in the hot paths
permanently and cost one dict lookup plus one call. When enabled via
:func:`configure_tracing`, each ``with`` block produces a span record:

``{"name", "trace_id", "span_id", "parent_id", "pid", "start_unix",
"duration_seconds", "attrs"}``

Nesting is tracked with a :mod:`contextvars` stack, so spans nest
correctly through generators and asyncio tasks. Records are either
written through to a JSON-lines file as spans close (the CLI ``--trace
PATH`` mode) or buffered in memory (pool workers), where
:meth:`Tracer.drain` returns the batch that rides back to the scheduler
inside group telemetry — workers never contend on the trace file.

Cross-process parenting: the dispatching side calls
:meth:`Tracer.serialize_context` and ships the small dict to the worker,
which calls :meth:`Tracer.attach` so its root spans parent under the
scheduler's dispatch span. The scheduler re-emits drained worker records
with :meth:`Tracer.emit`.

Export/analysis helpers: :func:`read_trace`, :func:`to_chrome_trace`
(``chrome://tracing`` / Perfetto ``trace_event`` format), and
:func:`summarize_trace` (per-name count/total/mean/p50/p95/max table —
the ``repro obs summarize`` backend).
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, TextIO


class _SpanHandle:
    """A live span: identity plus the stage-duration rollup for children."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "stages")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        # Per-child-name duration sums, filled as direct children close.
        # The root span's rollup becomes PlanResult stage timings.
        self.stages: Dict[str, float] = {}


class Tracer:
    """Produces nested span records; one per process (see module docs)."""

    def __init__(self) -> None:
        self._enabled = False
        self._sink: Optional[TextIO] = None
        self._sink_path: Optional[str] = None
        self._buffer: List[Dict[str, object]] = []
        self._buffered = False
        self._stack: contextvars.ContextVar[tuple] = contextvars.ContextVar(
            "repro_span_stack", default=())
        self._remote_parent: Optional[Dict[str, str]] = None
        self._lock = threading.Lock()
        self._counter = 0

    # -- configuration ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def configure(self, path: Optional[str] = None,
                  buffered: bool = False) -> None:
        """Enable tracing, writing through to ``path`` or buffering."""
        self.close()
        self._enabled = True
        self._buffered = buffered or path is None
        if path is not None:
            self._sink_path = path
            self._sink = open(path, "a", encoding="utf-8")

    def disable(self) -> None:
        self.close()
        self._enabled = False
        self._buffered = False
        self._remote_parent = None

    def close(self) -> None:
        """Flush and close the sink file, if any."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None
            self._sink_path = None

    # -- identity --------------------------------------------------------

    def _next_span_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{os.getpid():x}.{self._counter:x}"

    def current_span(self) -> Optional[_SpanHandle]:
        stack = self._stack.get()
        return stack[-1] if stack else None

    def serialize_context(self) -> Optional[Dict[str, str]]:
        """The current span identity as a small dict for another process."""
        if not self._enabled:
            return None
        handle = self.current_span()
        if handle is None:
            return self._remote_parent
        return {"trace_id": handle.trace_id, "span_id": handle.span_id}

    def attach(self, context: Optional[Mapping[str, str]]) -> None:
        """Adopt a serialized context: new root spans parent under it."""
        self._remote_parent = dict(context) if context else None

    # -- recording -------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[_SpanHandle]:
        if not self._enabled:
            yield _NOOP_HANDLE
            return
        parent = self.current_span()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif self._remote_parent is not None:
            trace_id = self._remote_parent["trace_id"]
            parent_id = self._remote_parent["span_id"]
        else:
            trace_id = os.urandom(8).hex()
            parent_id = None
        handle = _SpanHandle(name, trace_id, self._next_span_id(), parent_id)
        stack = self._stack.get()
        token = self._stack.set(stack + (handle,))
        start_unix = time.time()
        start = time.perf_counter()
        try:
            yield handle
        finally:
            duration = time.perf_counter() - start
            self._stack.reset(token)
            if parent is not None:
                parent.stages[name] = parent.stages.get(name, 0.0) + duration
            record: Dict[str, object] = {
                "name": name,
                "trace_id": trace_id,
                "span_id": handle.span_id,
                "parent_id": parent_id,
                "pid": os.getpid(),
                "start_unix": round(start_unix, 6),
                "duration_seconds": round(duration, 9),
            }
            if attrs:
                record["attrs"] = attrs
            self.emit(record)

    @contextlib.contextmanager
    def span_under(self, context: Optional[Mapping[str, str]], name: str,
                   **attrs: object) -> Iterator[_SpanHandle]:
        """:meth:`span`, explicitly parented under a serialized context.

        The cross-boundary entry point: a worker (thread or process) opens
        its root span under the scheduler's dispatch span without touching
        process-global parent state, so concurrent threads cannot adopt
        each other's parents.
        """
        if not self._enabled or context is None:
            with self.span(name, **attrs) as handle:
                yield handle
            return
        parent = _SpanHandle("<remote>", context["trace_id"],
                             context["span_id"], None)
        stack = self._stack.get()
        token = self._stack.set(stack + (parent,))
        try:
            with self.span(name, **attrs) as handle:
                yield handle
        finally:
            self._stack.reset(token)

    def record_span(self, name: str, duration_seconds: float,
                    context: Optional[Mapping[str, str]] = None,
                    start_unix: Optional[float] = None,
                    **attrs: object) -> None:
        """Emit one already-measured span (e.g. a queue wait).

        ``context`` (a :meth:`serialize_context` dict) names the parent;
        without one the span parents under the current span, if any.
        """
        if not self._enabled:
            return
        if context is None:
            context = self.serialize_context()
        if context is not None:
            trace_id = context["trace_id"]
            parent_id = context["span_id"]
        else:
            trace_id = os.urandom(8).hex()
            parent_id = None
        record: Dict[str, object] = {
            "name": name,
            "trace_id": trace_id,
            "span_id": self._next_span_id(),
            "parent_id": parent_id,
            "pid": os.getpid(),
            "start_unix": round(
                time.time() - duration_seconds if start_unix is None
                else start_unix, 6),
            "duration_seconds": round(duration_seconds, 9),
        }
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def emit(self, record: Dict[str, object]) -> None:
        """Record a finished span (also used to re-emit worker spans)."""
        if not self._enabled:
            return
        if self._sink is not None:
            with self._lock:
                self._sink.write(json.dumps(record, sort_keys=True) + "\n")
                self._sink.flush()
        else:
            with self._lock:
                self._buffer.append(record)

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear buffered records ([] in write-through mode)."""
        with self._lock:
            records, self._buffer = self._buffer, []
        return records


class _NoopHandle:
    """Shared inert handle yielded by disabled spans."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    stages: Dict[str, float] = {}


_NOOP_HANDLE = _NoopHandle()


class _NoopContext:
    """Reusable zero-allocation context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> _NoopHandle:
        return _NOOP_HANDLE

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_CONTEXT = _NoopContext()

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str, **attrs: object):
    """Context manager recording one span on the process-global tracer."""
    if not _TRACER.enabled:
        return _NOOP_CONTEXT
    return _TRACER.span(name, **attrs)


def configure_tracing(path: Optional[str] = None,
                      buffered: bool = False) -> Tracer:
    """Enable the global tracer (JSONL sink at ``path``, or buffered)."""
    _TRACER.configure(path=path, buffered=buffered)
    return _TRACER


def disable_tracing() -> None:
    """Disable the global tracer and close any open sink."""
    _TRACER.disable()


def tracing_enabled() -> bool:
    return _TRACER.enabled


# Trace-file analysis -------------------------------------------------------------


def read_trace(path: str) -> List[Dict[str, object]]:
    """Span records from a JSON-lines trace file (bad lines are skipped)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "name" in record:
                records.append(record)
    return records


def to_chrome_trace(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Span records as a Chrome ``trace_event`` document.

    Complete ("X") events with microsecond timestamps; load the JSON in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = []
    for record in records:
        events.append({
            "name": record.get("name", "?"),
            "ph": "X",
            "ts": float(record.get("start_unix", 0.0)) * 1e6,
            "dur": float(record.get("duration_seconds", 0.0)) * 1e6,
            "pid": int(record.get("pid", 0)),
            "tid": int(record.get("pid", 0)),
            "args": dict(record.get("attrs") or {}),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize_trace(records: List[Dict[str, object]],
                    ) -> List[Dict[str, object]]:
    """Per-span-name aggregate rows, sorted by total time descending.

    Each row: ``{"name", "count", "total_seconds", "mean_seconds",
    "p50_seconds", "p95_seconds", "max_seconds"}``.
    """
    by_name: Dict[str, List[float]] = {}
    for record in records:
        duration = record.get("duration_seconds")
        if isinstance(duration, (int, float)):
            by_name.setdefault(str(record.get("name", "?")), []).append(
                float(duration))
    rows: List[Dict[str, object]] = []
    for name, durations in by_name.items():
        durations.sort()
        total = sum(durations)
        rows.append({
            "name": name,
            "count": len(durations),
            "total_seconds": round(total, 9),
            "mean_seconds": round(total / len(durations), 9),
            "p50_seconds": round(_sorted_quantile(durations, 0.50), 9),
            "p95_seconds": round(_sorted_quantile(durations, 0.95), 9),
            "max_seconds": round(durations[-1], 9),
        })
    rows.sort(key=lambda row: (-float(row["total_seconds"]), row["name"]))
    return rows


def _sorted_quantile(sorted_values: List[float], quantile: float) -> float:
    """Linear-interpolation quantile of an already sorted list."""
    if not sorted_values:
        return 0.0
    position = quantile * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction
