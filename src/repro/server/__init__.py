"""The plan server: batched, cached, concurrent, *resilient* Scenario serving.

A long-lived front end over the Scenario API — requests are deduplicated
and micro-batched by :class:`~repro.server.scheduler.PlanScheduler`, served
across restarts from the :class:`~repro.server.store.ResultStore`, exposed
over HTTP by :class:`~repro.server.http.PlanServer` (``repro serve``), and
spoken to by :class:`~repro.server.client.PlanClient` (``repro submit``).

The stack is built to survive the failures it will meet at scale: the
scheduler self-heals around crashed pool workers (rebuild + re-dispatch +
group bisection), per-request deadlines and admission control bound tail
latency and memory, the client retries idempotent requests with jittered
backoff (:mod:`repro.server.resilience` owns the shared failure taxonomy
and :class:`~repro.server.resilience.RetryPolicy`), and every failure path
is drivable deterministically via :mod:`repro.server.faults`
(``repro serve --chaos <spec>``).

Quick start::

    $ python -m repro serve --port 8099 --store results/plan_store.jsonl &
    $ echo '{"schema_version": 1, "workload": {"model": "gpt3-6.7b"}}' \\
        | python -m repro submit - --port 8099
"""

from repro.server.client import PlanClient, PlanServerError
from repro.server.faults import (
    FaultInjector,
    FaultSpecError,
    InjectedStoreWriteError,
    InjectedWorkerCrash,
)
from repro.server.http import PlanServer
from repro.server.portfolio import (
    PointOutcome,
    PortfolioManager,
    build_sweep_manifest,
    run_portfolio_local,
    sweep_portfolio,
)
from repro.server.resilience import (
    Failure,
    RetryPolicy,
    classify_exception,
    is_retryable_exception,
    is_retryable_payload,
)
from repro.server.scheduler import PlanRequestError, PlanScheduler, error_payload
from repro.server.store import (
    BACKENDS,
    ResultStore,
    StoreError,
    compact_store,
    migrate_store,
    resolve_backend,
    store_stats,
)

__all__ = [
    "BACKENDS",
    "Failure",
    "FaultInjector",
    "FaultSpecError",
    "InjectedStoreWriteError",
    "InjectedWorkerCrash",
    "PlanClient",
    "PlanRequestError",
    "PlanScheduler",
    "PlanServer",
    "PlanServerError",
    "PointOutcome",
    "PortfolioManager",
    "ResultStore",
    "RetryPolicy",
    "StoreError",
    "build_sweep_manifest",
    "classify_exception",
    "compact_store",
    "error_payload",
    "is_retryable_exception",
    "is_retryable_payload",
    "migrate_store",
    "resolve_backend",
    "run_portfolio_local",
    "store_stats",
    "sweep_portfolio",
]
