"""The plan server: batched, cached, concurrent Scenario serving.

A long-lived front end over the Scenario API — requests are deduplicated
and micro-batched by :class:`~repro.server.scheduler.PlanScheduler`, served
across restarts from the :class:`~repro.server.store.ResultStore`, exposed
over HTTP by :class:`~repro.server.http.PlanServer` (``repro serve``), and
spoken to by :class:`~repro.server.client.PlanClient` (``repro submit``).

Quick start::

    $ python -m repro serve --port 8099 --store results/plan_store.jsonl &
    $ echo '{"schema_version": 1, "workload": {"model": "gpt3-6.7b"}}' \\
        | python -m repro submit - --port 8099
"""

from repro.server.client import PlanClient, PlanServerError
from repro.server.http import PlanServer
from repro.server.portfolio import (
    PointOutcome,
    PortfolioManager,
    build_sweep_manifest,
    run_portfolio_local,
    sweep_portfolio,
)
from repro.server.scheduler import PlanRequestError, PlanScheduler, error_payload
from repro.server.store import ResultStore

__all__ = [
    "PlanClient",
    "PlanRequestError",
    "PlanScheduler",
    "PlanServer",
    "PlanServerError",
    "PointOutcome",
    "PortfolioManager",
    "ResultStore",
    "build_sweep_manifest",
    "error_payload",
    "run_portfolio_local",
    "sweep_portfolio",
]
