"""Failure taxonomy and retry/backoff policy of the plan-server stack.

Every failure the serving layers can produce is classified into exactly one
of two families:

* **terminal** — deterministic request failures: the same request will fail
  the same way forever (malformed document, no feasible configuration, a
  wrong-typed field, a poison scenario that crashes its worker every time).
  Clients must not retry; the error payload carries ``"retryable": false``.
* **retryable** — transient infrastructure failures: a crashed pool worker,
  a saturated admission queue (503 + ``Retry-After``), a dropped
  connection, a store write hiccup. Requests are idempotent by
  :meth:`Scenario.cache_key <repro.api.scenario.Scenario.cache_key>`, so a
  retry is always safe; payloads carry ``"retryable": true``.

The classification is shared by every layer: the scheduler uses it to
decide whether to re-dispatch a failed group (and when to bisect it to
isolate a poison scenario), :class:`~repro.server.client.PlanClient` to
decide whether to back off and retry, and the runner orchestrator to decide
whether a failed cell deserves a second attempt.

:class:`RetryPolicy` is the one backoff object all of them share:
exponential delays with full decorrelated jitter, capped, and deterministic
under an injected ``rng`` (the chaos tests pin the jitter bounds).
"""

from __future__ import annotations

import random
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

#: Error-payload ``kind`` values that mark a transient, safely retryable
#: failure (requests are idempotent by cache_key). Everything else is
#: terminal unless the payload itself says ``"retryable": true``.
RETRYABLE_KINDS = frozenset({
    "unavailable",        # server shutting down
    "overloaded",         # admission control shed the request (503)
    "deadline_expired",   # per-request deadline passed (504)
    "worker_crashed",     # pool worker died before exhausting retries
    "store_write_failed",  # result-store append failed (result still served)
})

#: Exception types that mark transient infrastructure failures. Note that
#: ``TimeoutError``/``ConnectionError`` are ``OSError`` subclasses — the
#: tuple spells them out for documentation value.
RETRYABLE_EXCEPTIONS = (
    BrokenExecutor,      # the worker pool died under the request
    ConnectionError,
    TimeoutError,
    OSError,
)

#: Exception types that are always terminal even though they may look
#: transport-ish: request-driven validation and evaluation failures.
TERMINAL_EXCEPTIONS = (ValueError, TypeError, KeyError)


@dataclass(frozen=True)
class Failure:
    """One classified failure: its payload ``kind`` and retry semantics."""

    kind: str
    retryable: bool
    status: int


def classify_exception(error: BaseException) -> Failure:
    """Map a raised exception onto the failure taxonomy.

    An exception may pre-classify itself with a boolean ``retryable``
    attribute (the injected chaos faults do); otherwise terminal
    request-driven types (``ValueError``/``TypeError``/``KeyError``) are
    checked before the broad ``OSError`` family, so e.g. a
    ``ScenarioError`` is terminal even though errno-flavoured subclasses
    exist in both trees.
    """
    marked = getattr(error, "retryable", None)
    if isinstance(marked, bool):
        retryable = marked
    elif isinstance(error, TERMINAL_EXCEPTIONS):
        retryable = False
    else:
        retryable = isinstance(error, RETRYABLE_EXCEPTIONS)
    if retryable:
        kind = ("worker_crashed" if isinstance(error, BrokenExecutor)
                else type(error).__name__)
        return Failure(kind=kind, retryable=True, status=500)
    return Failure(kind=type(error).__name__, retryable=False, status=422)


def is_retryable_exception(error: BaseException) -> bool:
    """Whether a raised exception marks a transient (retry-safe) failure."""
    return classify_exception(error).retryable


def is_retryable_payload(payload: Mapping[str, object]) -> bool:
    """Whether a structured ``{"error": {...}}`` payload is retry-safe.

    The payload's own ``retryable`` flag wins when present; otherwise the
    ``kind`` is looked up in :data:`RETRYABLE_KINDS`.
    """
    error = payload.get("error")
    if not isinstance(error, Mapping):
        return False
    marked = error.get("retryable")
    if isinstance(marked, bool):
        return marked
    return error.get("type") in RETRYABLE_KINDS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``max_attempts`` counts *total* tries (1 means no retries). Delay for
    the ``n``-th failed attempt (1-based) is ``base_delay *
    multiplier**(n-1)`` capped at ``max_delay``, then spread uniformly over
    ``[raw * (1 - jitter), raw * (1 + jitter)]`` — jittered so a thundering
    herd of shed clients does not re-arrive in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retrying after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter == 0 or raw == 0:
            return raw
        draw = (rng.random() if rng is not None else random.random())
        return raw * (1 - self.jitter + 2 * self.jitter * draw)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON snapshot (folded into ``GET /metrics``)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }
