"""Stdlib-only HTTP front end of the plan server (``repro serve``).

:class:`PlanServer` speaks a deliberately small JSON-over-HTTP/1.1 wire
format on top of ``asyncio.start_server`` — no web framework, the repo's
only runtime dependency stays ``numpy``:

* ``POST /v1/plan`` — body is one scenario document; responds with the
  serialized :class:`~repro.api.service.PlanResult` payload (the exact
  ``repro plan`` output). The ``X-Repro-Source`` response header reports
  which path served it (``store`` / ``inflight`` / ``evaluated``).
* ``POST /v1/plan/batch`` — body is a JSON array of scenario documents (or
  ``{"scenarios": [...]}``); responds ``{"results": [...]}`` in request
  order, invalid items as inline ``{"error": {...}}`` payloads.
* ``POST /v1/portfolio`` — body is a portfolio document
  (:class:`~repro.api.portfolio.Portfolio`); expands it, launches the
  sweep over the scheduler, and responds immediately with the job summary
  (``{"job": "sweep-1", "status": "running", ...}``).
* ``GET /v1/portfolio`` — summaries of every known sweep job.
* ``GET /v1/portfolio/<job>`` — incremental progress of one sweep
  (``completed`` / ``unique`` counters); once ``status`` is ``"done"`` the
  response carries the ordered ``results`` / ``sources`` /
  ``wall_seconds`` / ``params`` arrays.
* ``GET /healthz`` — liveness/readiness probe.
* ``GET /metrics`` — the scheduler's counter document (requests, dedup,
  store hits/misses, plan-cache hits/misses, latency, portfolio jobs).
  ``GET /metrics?format=prometheus`` serves the same data in the
  Prometheus text exposition format (version 0.0.4) with native
  ``_bucket``/``_sum``/``_count`` histogram series aggregated across the
  worker pool.

Malformed requests get structured ``{"error": {...}}`` bodies with 400-class
statuses, never tracebacks. Load-shed requests (admission control) get a
503 with a ``Retry-After`` header; deadline-expired ones a 504 — both with
``"retryable"`` set in the error payload so clients know whether backing
off helps (see :mod:`repro.server.resilience`). Connections are one-request
(``Connection: close``): plan evaluation dwarfs connection setup, and it
keeps the protocol loop trivially correct.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple, Union

from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.server.portfolio import PortfolioManager
from repro.server.scheduler import PlanRequestError, PlanScheduler, error_payload

#: Hard cap on request bodies (a scenario document is < 1 KiB).
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """An unparsable HTTP request (maps to a structured 400)."""


class RawBody:
    """A non-JSON response body with its own content type.

    Routes return one of these instead of a JSON payload when the wire
    format is not JSON — e.g. the Prometheus text exposition of
    ``GET /metrics?format=prometheus``.
    """

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


class PlanServer:
    """Async HTTP server wrapping one :class:`PlanScheduler`.

    Args:
        scheduler: the scheduler to serve (started by :meth:`start` if
            needed; :meth:`close` closes it).
        host: bind address.
        port: bind port; ``0`` picks an ephemeral one, readable from
            :attr:`port` after :meth:`start`.
    """

    def __init__(self, scheduler: PlanScheduler, host: str = "127.0.0.1",
                 port: int = 8099) -> None:
        self.scheduler = scheduler
        self.portfolios = PortfolioManager(scheduler)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    # Lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        """Start the scheduler and begin listening (resolves :attr:`port`)."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled."""
        if self._server is None:
            raise RuntimeError("PlanServer.start() was never awaited")
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain in-flight requests, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Running sweeps settle first: their requests feed the scheduler,
        # which must still be alive to drain them.
        await self.portfolios.close()
        await self.scheduler.close()

    async def __aenter__(self) -> "PlanServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # Protocol --------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        chaos = self.scheduler.chaos
        if chaos is not None and chaos.on_http_request():
            # flaky-http chaos: drop the connection unanswered, exactly
            # like a flaky network would — the client's retry/backoff
            # path is what this exercises.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        try:
            try:
                request = await self._read_request(reader)
            except _BadRequest as error:
                await self._respond(writer, 400,
                                    error_payload(str(error), kind="protocol"))
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:  # client closed without sending anything
                return
            method, target, body = request
            try:
                status, payload, headers = await self._route(
                    method, target, body)
            except Exception as error:
                # Last resort: an unexpected bug must still answer with a
                # structured 500, not a silently dropped connection.
                status, headers = 500, None
                payload = error_payload(f"internal server error: {error}",
                                        kind=type(error).__name__,
                                        status=500)
            await self._respond(writer, status, payload, headers)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest("malformed Content-Length header") \
                        from None
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body must be 0..{MAX_BODY_BYTES} bytes")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, target, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Union[Dict[str, object], RawBody],
                       headers: Optional[Dict[str, str]] = None) -> None:
        if isinstance(payload, RawBody):
            body = payload.body
            content_type = payload.content_type
        else:
            content_type = "application/json"
            try:
                body = json.dumps(payload, sort_keys=True,
                                  allow_nan=False).encode("utf-8")
            except (TypeError, ValueError) as error:
                # A payload that is not strict JSON (e.g. a stray inf) must
                # not take the connection down with it.
                status = 500
                body = json.dumps(
                    error_payload(f"unserializable response: {error}",
                                  kind="internal", status=500),
                    sort_keys=True).encode("utf-8")
        reason = _STATUS_TEXT.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # Routing ---------------------------------------------------------------------

    async def _route(
            self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, object], RawBody],
               Optional[Dict[str, str]]]:
        target, _, query = target.partition("?")
        if target == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, {"status": "ok"}, None
        if target == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            stats = self.scheduler.stats()
            stats["portfolios"] = self.portfolios.stats()
            if _query_params(query).get("format") == "prometheus":
                text = render_prometheus(
                    stats,
                    self.scheduler.merged_registry().histogram_snapshots())
                return 200, RawBody(text.encode("utf-8"),
                                    PROMETHEUS_CONTENT_TYPE), None
            return 200, stats, None
        if target == "/v1/portfolio":
            if method == "POST":
                return await self._route_portfolio_start(body)
            if method == "GET":
                return 200, self.portfolios.jobs(), None
            return self._method_not_allowed("POST, GET")
        if target.startswith("/v1/portfolio/"):
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._route_portfolio_status(
                target[len("/v1/portfolio/"):])
        if target == "/v1/plan":
            if method != "POST":
                return self._method_not_allowed("POST")
            return await self._route_plan(body)
        if target == "/v1/plan/batch":
            if method != "POST":
                return self._method_not_allowed("POST")
            return await self._route_plan_batch(body)
        return 404, error_payload(f"no route for {target!r}",
                                  kind="not_found", status=404), None

    @staticmethod
    def _error_response(
            error: PlanRequestError
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        """A PlanRequestError as a response triple (Retry-After on sheds)."""
        headers = None
        if error.retry_after is not None:
            headers = {"Retry-After": str(max(1, int(error.retry_after)))}
        return error.status, error.payload, headers

    @staticmethod
    def _method_not_allowed(
            allowed: str) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        payload = error_payload(f"method not allowed; use {allowed}",
                                kind="method_not_allowed", status=405)
        return 405, payload, {"Allow": allowed}

    async def _route_plan(
            self, body: bytes
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        document, problem = _parse_json(body)
        if problem is not None:
            return 400, problem, None
        if not isinstance(document, dict):
            return 400, error_payload(
                "scenario document must be a JSON object; POST arrays to "
                "/v1/plan/batch"), None
        try:
            payload, source = await self.scheduler.submit_doc_traced(document)
        except PlanRequestError as error:
            return self._error_response(error)
        headers = {"X-Repro-Source": source}
        if "error" in payload:
            return payload["error"].get("status", 422), payload, headers
        return 200, payload, headers

    async def _route_portfolio_start(
            self, body: bytes
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        document, problem = _parse_json(body)
        if problem is not None:
            return 400, problem, None
        try:
            summary = self.portfolios.start_job(document)
        except PlanRequestError as error:
            return error.status, error.payload, None
        return 200, summary, None

    def _route_portfolio_status(
            self, job_id: str
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        try:
            return 200, self.portfolios.get(job_id), None
        except PlanRequestError as error:
            return error.status, error.payload, None

    async def _route_plan_batch(
            self, body: bytes
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        document, problem = _parse_json(body)
        if problem is not None:
            return 400, problem, None
        if isinstance(document, dict) and set(document) == {"scenarios"}:
            document = document["scenarios"]
        if not isinstance(document, list):
            return 400, error_payload(
                "batch body must be a JSON array of scenario documents "
                "(or {\"scenarios\": [...]})"), None
        try:
            results = await self.scheduler.submit_batch(document)
        except PlanRequestError as error:
            return self._error_response(error)
        errors = sum(1 for result in results if "error" in result)
        headers = {"X-Repro-Errors": str(errors)}
        return 200, {"results": results, "errors": errors}, headers


def _query_params(query: str) -> Dict[str, str]:
    """A query string as a flat dict (last value wins, no decoding needed
    for the single ASCII parameter the server understands)."""
    params: Dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        name, _, value = pair.partition("=")
        params[name] = value
    return params


def _parse_json(
        body: bytes) -> Tuple[object, Optional[Dict[str, object]]]:
    """Decode a request body; the second element is a 400 error payload."""
    try:
        return json.loads(body.decode("utf-8")), None
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        return None, error_payload(f"invalid JSON body: {error}",
                                   kind="protocol")
