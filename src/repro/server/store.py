"""Disk-backed result store of the plan server, keyed by scenario hash.

A :class:`ResultStore` maps a :meth:`Scenario.cache_key
<repro.api.scenario.Scenario.cache_key>` to the serialized
:class:`~repro.api.service.PlanResult` payload that scenario evaluated to.
It is the server's cross-restart memory: the scheduler consults it before
queueing work, so an identical request submitted after a restart is served
without re-running the solver.

The on-disk format is append-only JSON lines — one
``{"key": <sha256>, "payload": {...}}`` document per line — chosen over a
binary index because it is human-greppable, crash-tolerant (a torn final
line is skipped on load, every earlier record survives), and trivially
mergeable across hosts with ``cat``. The whole file is indexed into memory
on open (payloads are small flat dicts); the last record for a key wins, so
re-putting a key is an append, not a rewrite.

Corrupt lines (torn writes, non-record documents) are *counted*, not
silently skipped: ``stats()`` reports ``corrupt_lines`` and a warning is
emitted on load, so a store quietly losing records is visible in
``GET /metrics``. ``durable=True`` additionally fsyncs every append, so a
crash mid-write can tear at most the line being written — never an
already-acknowledged record.
"""

from __future__ import annotations

import copy
import json
import os
import warnings
from typing import Dict, Optional

from repro.obs.metrics import CounterBundle
from repro.obs.tracing import span

#: Result-store counter names reported by :meth:`ResultStore.stats`.
STORE_COUNTERS = ("hits", "misses", "writes", "corrupt_lines")


class ResultStore:
    """Persistent ``scenario cache key -> result payload`` map with counters.

    Args:
        path: JSON-lines file backing the store. ``None`` keeps the store
            in memory only (same interface, no persistence) — the mode the
            offline ``repro plan`` batch path and most tests use.
        durable: fsync after every appended record. Slower per write, but
            an acknowledged record then survives a host crash, not just a
            process crash.

    Attributes:
        hits: ``get`` calls that found a payload.
        misses: ``get`` calls that found nothing.
        writes: ``put`` calls (each is one appended line when disk-backed).
        corrupt_lines: non-empty backing-file lines that were not intact
            records at load time (torn writes, foreign documents).
    """

    def __init__(self, path: Optional[str] = None,
                 durable: bool = False) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.durable = durable
        self.counters = CounterBundle(
            **{name: 0 for name in STORE_COUNTERS})
        self._payloads: Dict[str, Dict[str, object]] = {}
        self._handle = None
        if self.path is not None:
            with span("store.load", path=self.path):
                self._load()
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    # The documented counter attributes stay plain reads/writes; the bundle
    # behind them is the shared snapshot()/merge() convention.
    @property
    def hits(self) -> int:
        return self.counters.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.counters.hits = value

    @property
    def misses(self) -> int:
        return self.counters.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.counters.misses = value

    @property
    def writes(self) -> int:
        return self.counters.writes

    @writes.setter
    def writes(self, value: int) -> None:
        self.counters.writes = value

    @property
    def corrupt_lines(self) -> int:
        return self.counters.corrupt_lines

    @corrupt_lines.setter
    def corrupt_lines(self, value: int) -> None:
        self.counters.corrupt_lines = value

    def _load(self) -> None:
        """Index every intact record of the backing file (last key wins)."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A torn trailing line from a crashed writer; every
                        # complete record before it is still served.
                        self.corrupt_lines += 1
                        continue
                    if (isinstance(record, dict)
                            and isinstance(record.get("key"), str)
                            and isinstance(record.get("payload"), dict)):
                        self._payloads[record["key"]] = record["payload"]
                    else:
                        self.corrupt_lines += 1
        except FileNotFoundError:
            pass
        if self.corrupt_lines:
            warnings.warn(
                f"result store {self.path}: skipped {self.corrupt_lines} "
                f"corrupt line(s) on load (torn writes or foreign "
                f"documents); intact records are still served",
                RuntimeWarning, stacklevel=3)

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or ``None`` (counts hit/miss)."""
        payload = self._payloads.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        # Callers get a private copy: a mutated response must not corrupt
        # what later requests are served.
        return copy.deepcopy(payload)

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Store (and, when disk-backed, durably append) one payload."""
        payload = copy.deepcopy(payload)
        self._payloads[key] = payload
        self.writes += 1
        if self._handle is not None:
            record = json.dumps({"key": key, "payload": payload},
                                sort_keys=True, allow_nan=False)
            self._handle.write(record + "\n")
            self._handle.flush()
            if self.durable:
                os.fsync(self._handle.fileno())

    def stats(self) -> Dict[str, object]:
        """Plain-JSON counter snapshot for ``GET /metrics``."""
        return {
            **self.counters.snapshot(),
            "entries": len(self._payloads),
            "persistent": self.path is not None,
        }

    def close(self) -> None:
        """Flush and release the backing file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
