"""Disk-backed result store of the plan server, keyed by scenario hash.

A :class:`ResultStore` maps a :meth:`Scenario.cache_key
<repro.api.scenario.Scenario.cache_key>` to the serialized
:class:`~repro.api.service.PlanResult` payload that scenario evaluated to.
It is the server's cross-restart memory: the scheduler consults it before
queueing work, so an identical request submitted after a restart is served
without re-running the solver.

Persistence is pluggable behind one interface (selected by file extension,
or explicitly via ``backend=`` / ``repro serve --store-backend``):

``jsonl`` (default)
    Append-only JSON lines — one ``{"key": <sha256>, "payload": {...}}``
    document per line, bit-compatible with every store written before the
    backend layer existed. Human-greppable, crash-tolerant (a torn final
    line is skipped on load, every earlier record survives), and trivially
    mergeable across hosts with ``cat``. The whole file is indexed into
    memory on open; the last record for a key wins, so a re-put is an
    append — superseded records stay on disk as *dead records* until
    :meth:`ResultStore.compact` (or the automatic compaction-on-close once
    ``dead_records`` crosses the threshold) rewrites the file last-wins.

``sqlite``
    An indexed SQLite database (WAL journal, one keyed table, upsert on
    re-put). Opening is O(1) — no full-file indexing — so a server
    restarting over a multi-million-entry store is ready immediately, and
    re-puts never grow the file unboundedly. Selected automatically for
    ``.sqlite`` / ``.sqlite3`` / ``.db`` paths.

Payloads are cached in their canonical serialized form and every ``get``
hands back a freshly decoded copy, so a caller mutating a served payload
can never corrupt what later requests receive — without the per-hit
``copy.deepcopy`` the serving path used to pay.

Corrupt JSON lines (torn writes, non-record documents) are *counted*, not
silently skipped: ``stats()`` reports ``corrupt_lines`` and a structured
warning is logged on the ``repro.server.store`` logger (captured by
``--log-json`` like every other subsystem), so a store quietly losing
records is visible in ``GET /metrics`` and in shipped logs.
``durable=True`` makes an acknowledged record survive a host crash:
fsync-per-append on the JSON-lines backend, ``synchronous=FULL`` on the
SQLite backend.

``repro store stats|compact|migrate`` drives the maintenance entry points
(:func:`store_stats`, :func:`compact_store`, :func:`migrate_store`) from
the command line; migration is verified key by key before it reports
success.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
from typing import Dict, Iterator, Optional

from repro.obs.metrics import CounterBundle
from repro.obs.tracing import span

logger = logging.getLogger("repro.server.store")

#: Result-store counter names reported by :meth:`ResultStore.stats`.
STORE_COUNTERS = ("hits", "misses", "writes", "corrupt_lines")

#: Registered persistence backends (the ``--store-backend`` choices).
BACKENDS = ("jsonl", "sqlite")

#: Path extensions that auto-select the SQLite backend.
SQLITE_EXTENSIONS = (".sqlite", ".sqlite3", ".db")

#: Dead-record count beyond which a JSON-lines store compacts on close.
DEFAULT_COMPACT_THRESHOLD = 256


class StoreError(OSError):
    """A backing-store failure (corrupt database, failed write, bad
    migration). An :class:`OSError` so the scheduler's failed-write
    containment (``store_write_failures``) covers every backend."""


def resolve_backend(path: Optional[str],
                    backend: Optional[str] = None) -> str:
    """The backend name for ``path`` (explicit ``backend`` wins).

    ``"auto"``/``None`` selects by extension: :data:`SQLITE_EXTENSIONS`
    mean ``sqlite``, anything else keeps the JSON-lines default (existing
    stores predate the backend layer and must keep opening unchanged).

    Raises:
        ValueError: on an unknown backend name.
    """
    if backend in (None, "auto"):
        if path is not None and \
                os.path.splitext(os.fspath(path))[1].lower() \
                in SQLITE_EXTENSIONS:
            return "sqlite"
        return "jsonl"
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown store backend {backend!r}; "
                         f"known backends: {known} (or 'auto')")
    return backend


def _canonical(payload: Dict[str, object]) -> str:
    """The canonical serialized form every backend stores and serves."""
    return json.dumps(payload, sort_keys=True, allow_nan=False)


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)


# Backends -----------------------------------------------------------------------


class _MemoryBackend:
    """No persistence: the ``ResultStore(None)`` mode tests and the
    offline ``repro plan`` batch path use."""

    name = "memory"

    def __init__(self) -> None:
        self._records: Dict[str, str] = {}
        self.corrupt_lines = 0
        self.dead_records = 0

    def get(self, key: str) -> Optional[str]:
        return self._records.get(key)

    def put(self, key: str, text: str) -> None:
        self._records[key] = text

    def keys(self):
        return self._records.keys()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def compact(self) -> int:
        return 0

    def close(self) -> None:
        pass


class _JsonLinesBackend:
    """The seed format: append-only JSON lines, fully indexed on open."""

    name = "jsonl"

    def __init__(self, path: str, durable: bool = False) -> None:
        self.path = os.fspath(path)
        self.durable = durable
        self._records: Dict[str, str] = {}
        self.corrupt_lines = 0
        self.dead_records = 0
        self._load()
        _ensure_parent(self.path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        """Index every intact record of the backing file (last key wins)."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A torn trailing line from a crashed writer; every
                        # complete record before it is still served.
                        self.corrupt_lines += 1
                        continue
                    if (isinstance(record, dict)
                            and isinstance(record.get("key"), str)
                            and isinstance(record.get("payload"), dict)):
                        if record["key"] in self._records:
                            self.dead_records += 1
                        self._records[record["key"]] = _canonical(
                            record["payload"])
                    else:
                        self.corrupt_lines += 1
        except FileNotFoundError:
            pass
        if self.corrupt_lines:
            logger.warning(
                "result store %s: skipped %d corrupt line(s) on load "
                "(torn writes or foreign documents); intact records are "
                "still served", self.path, self.corrupt_lines,
                extra={"store_path": self.path,
                       "corrupt_lines": self.corrupt_lines})

    @staticmethod
    def _record_line(key: str, text: str) -> str:
        # Byte-identical to json.dumps({"key": ..., "payload": ...},
        # sort_keys=True) given the canonical payload text — the format
        # every pre-backend store was written in.
        return f'{{"key": {json.dumps(key)}, "payload": {text}}}\n'

    def get(self, key: str) -> Optional[str]:
        return self._records.get(key)

    def put(self, key: str, text: str) -> None:
        if key in self._records:
            self.dead_records += 1
        self._records[key] = text
        self._handle.write(self._record_line(key, text))
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    def keys(self):
        return self._records.keys()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def compact(self) -> int:
        """Rewrite the file last-wins (atomic); returns records dropped.

        Dead records and corrupt lines are both rewritten away; the live
        ``key -> payload`` mapping is preserved exactly.
        """
        dropped = self.dead_records + self.corrupt_lines
        tmp_path = self.path + ".compact.tmp"
        self._handle.flush()
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            for key, text in self._records.items():
                tmp.write(self._record_line(key, text))
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, self.path)
        self._handle.close()
        self._handle = open(self.path, "a", encoding="utf-8")
        self.dead_records = 0
        self.corrupt_lines = 0
        return dropped

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _SqliteBackend:
    """Indexed SQLite persistence: WAL journal, keyed table, upserts.

    Opening is O(1) (no full-file indexing) and a re-put replaces the row
    in place, so neither restarts nor re-puts grow the file without bound.
    """

    name = "sqlite"

    def __init__(self, path: str, durable: bool = False) -> None:
        self.path = os.fspath(path)
        self.durable = durable
        _ensure_parent(self.path)
        self.corrupt_lines = 0
        self.dead_records = 0
        try:
            # check_same_thread=False: the store is owned by one scheduler
            # but test harnesses open/close it across a thread boundary.
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous="
                               + ("FULL" if durable else "NORMAL"))
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS plans ("
                "key TEXT PRIMARY KEY, payload TEXT NOT NULL)")
            self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open SQLite result store {self.path}: "
                f"{error}") from error

    def get(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT payload FROM plans WHERE key = ?", (key,)).fetchone()
        return row[0] if row is not None else None

    def put(self, key: str, text: str) -> None:
        try:
            self._conn.execute(
                "INSERT INTO plans (key, payload) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET payload = excluded.payload",
                (key, text))
            self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(
                f"SQLite result store {self.path}: write failed: "
                f"{error}") from error

    def keys(self) -> Iterator[str]:
        for (key,) in self._conn.execute("SELECT key FROM plans"):
            yield key

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM plans").fetchone()[0]

    def __contains__(self, key: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM plans WHERE key = ?", (key,)).fetchone() \
            is not None

    def compact(self) -> int:
        """Checkpoint the WAL back into the main file and VACUUM it."""
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.execute("VACUUM")
        self._conn.commit()
        return 0

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None


def _open_backend(path: Optional[str], backend: Optional[str],
                  durable: bool):
    name = resolve_backend(path, backend)
    if path is None:
        return _MemoryBackend()
    if name == "sqlite":
        return _SqliteBackend(path, durable=durable)
    return _JsonLinesBackend(path, durable=durable)


# The store ----------------------------------------------------------------------


class ResultStore:
    """Persistent ``scenario cache key -> result payload`` map with counters.

    Args:
        path: backing file. ``None`` keeps the store in memory only (same
            interface, no persistence) — the mode the offline ``repro
            plan`` batch path and most tests use.
        durable: survive a *host* crash, not just a process crash: fsync
            after every JSON-lines append / ``synchronous=FULL`` on SQLite.
        backend: ``"jsonl"``, ``"sqlite"``, or ``None``/``"auto"`` to
            select by extension (see :func:`resolve_backend`).
        compact_threshold: dead-record count beyond which a JSON-lines
            store is compacted automatically on :meth:`close`; ``None``
            disables auto-compaction.

    Attributes:
        hits: ``get`` calls that found a payload.
        misses: ``get`` calls that found nothing.
        writes: ``put`` calls (each is one appended line / upsert when
            disk-backed).
        corrupt_lines: non-empty backing-file lines that were not intact
            records at load time (torn writes, foreign documents).
    """

    def __init__(self, path: Optional[str] = None,
                 durable: bool = False,
                 backend: Optional[str] = None,
                 compact_threshold: Optional[int] =
                 DEFAULT_COMPACT_THRESHOLD) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.durable = durable
        self.compact_threshold = compact_threshold
        self.counters = CounterBundle(
            **{name: 0 for name in STORE_COUNTERS})
        with span("store.load", path=self.path or "memory"):
            self._backend = _open_backend(self.path, backend, durable)
        self.backend = self._backend.name
        self.corrupt_lines = self._backend.corrupt_lines

    # The documented counter attributes stay plain reads/writes; the bundle
    # behind them is the shared snapshot()/merge() convention.
    @property
    def hits(self) -> int:
        return self.counters.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.counters.hits = value

    @property
    def misses(self) -> int:
        return self.counters.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.counters.misses = value

    @property
    def writes(self) -> int:
        return self.counters.writes

    @writes.setter
    def writes(self, value: int) -> None:
        self.counters.writes = value

    @property
    def corrupt_lines(self) -> int:
        return self.counters.corrupt_lines

    @corrupt_lines.setter
    def corrupt_lines(self, value: int) -> None:
        self.counters.corrupt_lines = value

    @property
    def dead_records(self) -> int:
        """Superseded on-disk records awaiting compaction (JSON lines)."""
        return self._backend.dead_records

    def __len__(self) -> int:
        return len(self._backend)

    def __contains__(self, key: str) -> bool:
        return key in self._backend

    def keys(self):
        """The stored cache keys (iteration order is backend-defined)."""
        return self._backend.keys()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or ``None`` (counts hit/miss).

        Callers get a freshly decoded copy of the canonical serialized
        form: mutating a served payload can never corrupt what later
        requests receive, and the serving path never pays a deepcopy.
        """
        text = self._backend.get(key)
        if text is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(text)

    def get_serialized(self, key: str) -> Optional[str]:
        """The canonical serialized payload for ``key`` (no counters):
        the migration/verification path compares these byte for byte."""
        return self._backend.get(key)

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Store (and, when disk-backed, durably persist) one payload."""
        self._backend.put(key, _canonical(payload))
        self.writes += 1

    def compact(self) -> int:
        """Drop dead/corrupt records from the backing file.

        JSON lines: atomically rewrite the file last-wins. SQLite:
        checkpoint the WAL and ``VACUUM``. Returns the number of dead
        records removed.
        """
        with span("store.compact", path=self.path or "memory"):
            return self._backend.compact()

    def stats(self) -> Dict[str, object]:
        """Plain-JSON counter snapshot for ``GET /metrics``."""
        return {
            **self.counters.snapshot(),
            "entries": len(self._backend),
            "persistent": self.path is not None,
            "backend": self.backend,
            "dead_records": self._backend.dead_records,
        }

    def close(self) -> None:
        """Flush and release the backing file (idempotent).

        A JSON-lines store whose ``dead_records`` crossed
        ``compact_threshold`` is compacted first, so unbounded growth
        across restart/re-put/retry churn heals itself at shutdown.
        """
        if (self.compact_threshold is not None
                and self._backend.dead_records >= self.compact_threshold):
            dropped = self.compact()
            logger.info(
                "result store %s: auto-compacted on close (%d dead "
                "record(s) dropped)", self.path, dropped,
                extra={"store_path": self.path, "dead_records": dropped})
        self._backend.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# Maintenance entry points (``repro store ...``) ---------------------------------


def store_stats(path: str, backend: Optional[str] = None) -> Dict[str, object]:
    """Offline ``stats()`` of a store file plus its on-disk size."""
    with ResultStore(path, backend=backend,
                     compact_threshold=None) as store:
        document = store.stats()
    document["path"] = os.fspath(path)
    document["file_bytes"] = (os.path.getsize(path)
                              if os.path.exists(path) else 0)
    for counter in ("hits", "misses", "writes"):
        document.pop(counter, None)  # meaningless for an offline open
    return document


def compact_store(path: str,
                  backend: Optional[str] = None) -> Dict[str, object]:
    """Compact a store file in place; returns a before/after summary."""
    bytes_before = os.path.getsize(path) if os.path.exists(path) else 0
    with ResultStore(path, backend=backend,
                     compact_threshold=None) as store:
        dead_before = store.dead_records
        corrupt_before = store.corrupt_lines
        dropped = store.compact()
        entries = len(store)
        backend_name = store.backend
    return {
        "path": os.fspath(path),
        "backend": backend_name,
        "entries": entries,
        "dead_records_before": dead_before,
        "corrupt_lines_before": corrupt_before,
        "records_dropped": dropped,
        "bytes_before": bytes_before,
        "bytes_after": os.path.getsize(path),
    }


def migrate_store(source: str, destination: str,
                  source_backend: Optional[str] = None,
                  destination_backend: Optional[str] = None,
                  durable: bool = False) -> Dict[str, object]:
    """Convert a store between backends, verified key by key.

    Every key of ``source`` is copied into ``destination`` (an existing
    destination is upserted into, so migration is idempotent), then read
    back and compared in canonical serialized form. Returns a summary once
    every key verified.

    Raises:
        StoreError: when any key fails read-back verification.
        ValueError: when source and destination are the same file.
    """
    src_path = os.fspath(source)
    dst_path = os.fspath(destination)
    if os.path.abspath(src_path) == os.path.abspath(dst_path):
        raise ValueError(
            f"migration source and destination are the same file: "
            f"{src_path}; compaction is `repro store compact`")
    with ResultStore(src_path, backend=source_backend,
                     compact_threshold=None) as src:
        with ResultStore(dst_path, backend=destination_backend,
                         durable=durable, compact_threshold=None) as dst:
            copied = 0
            for key in src.keys():
                dst._backend.put(key, src.get_serialized(key))
                copied += 1
            # Key-by-key read-back: the migrated store must serve exactly
            # the payloads the source did before this reports success.
            for key in src.keys():
                if dst.get_serialized(key) != src.get_serialized(key):
                    raise StoreError(
                        f"migration verification failed for key {key!r}: "
                        f"{dst_path} does not serve the source payload")
            summary = {
                "source": src_path,
                "source_backend": src.backend,
                "destination": dst_path,
                "destination_backend": dst.backend,
                "entries": copied,
                "verified": copied,
            }
    return summary
