"""Deterministic fault injection for the plan-server stack (``--chaos``).

The resilience layer is only trustworthy if its failure paths actually run,
so this module makes every failure the server is built to survive
*injectable on demand*: ``repro serve --chaos <spec>`` (or the
``REPRO_CHAOS`` environment variable) arms a :class:`FaultInjector` that
the scheduler, the result store, and the HTTP front end consult at their
natural failure points. The chaos tests and the CI smoke drive real
recovery code — pool rebuilds, group bisection, client backoff — instead
of mocking it.

A spec is a comma-separated list of ``name[:arg[:arg]]`` rules:

==========================  =====================================================
``worker-crash[:N]``        kill the evaluating worker the first ``N`` times
                            (default once; ``once`` is an alias for ``1``).
                            In a process-pool worker this is a hard
                            ``os._exit`` — the parent sees a real
                            ``BrokenProcessPool``; in-process it raises
                            :class:`InjectedWorkerCrash`.
``poison:SUBSTR``           crash the worker *every* time it evaluates a
                            scenario whose canonical JSON contains
                            ``SUBSTR`` — the poison scenario the
                            scheduler's bisection must isolate.
``slow-eval:SECONDS[:N]``   sleep before each of the first ``N``
                            evaluations (default: every one) — drives
                            deadline expiry.
``store-write-fail[:N]``    the next ``N`` result-store writes raise
                            :class:`InjectedStoreWriteError` (default 1).
``flaky-http[:N]``          drop the next ``N`` HTTP connections without a
                            response (default 1) — drives client retries.
==========================  =====================================================

Counted rules are claimed through atomically-created token files in a
state directory, so the count holds globally across every worker process
— including workers of a pool the scheduler *rebuilds* after a crash
(which re-arm from the same spec but find the tokens already taken).
Unlimited rules (``poison``, uncounted ``slow-eval``) need no tokens.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

#: Registered fault names -> (site, one-line description).
FAULTS: Dict[str, Tuple[str, str]] = {
    "worker-crash": ("worker", "kill the evaluating worker (default once)"),
    "poison": ("worker", "crash the worker on scenarios matching a substring"),
    "slow-eval": ("worker", "sleep before evaluations (drives deadlines)"),
    "store-write-fail": ("store", "fail result-store writes (default once)"),
    "flaky-http": ("http", "drop HTTP connections without a response"),
}

#: Set by the pool-worker initializer: a crash there is a hard exit (the
#: parent must see a genuine BrokenProcessPool), in-process it is an
#: exception the scheduler classifies as retryable.
_IN_POOL_WORKER = False


def mark_pool_worker() -> None:
    """Record that this process is a pool worker (crashes become exits)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


class FaultSpecError(ValueError):
    """A malformed ``--chaos`` spec string."""


class InjectedWorkerCrash(RuntimeError):
    """An in-process stand-in for a worker process dying mid-group."""

    #: Pre-classification consumed by ``resilience.classify_exception``.
    retryable = True


class InjectedStoreWriteError(OSError):
    """An injected result-store write failure."""

    retryable = True


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule of a chaos spec."""

    name: str
    site: str
    count: Optional[int] = None   # firings allowed; None = unlimited
    seconds: float = 0.0          # slow-eval delay
    match: str = ""               # poison substring


def _parse_count(name: str, text: str) -> int:
    if text == "once":
        return 1
    try:
        count = int(text)
    except ValueError:
        raise FaultSpecError(
            f"chaos rule {name!r}: count must be an integer or 'once', "
            f"got {text!r}") from None
    if count < 1:
        raise FaultSpecError(f"chaos rule {name!r}: count must be >= 1")
    return count


def parse_spec(spec: str) -> List[FaultRule]:
    """Parse a ``--chaos`` spec string into rules.

    Raises:
        FaultSpecError: on unknown names or malformed arguments.
    """
    rules: List[FaultRule] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        name, args = pieces[0], pieces[1:]
        if name not in FAULTS:
            known = ", ".join(sorted(FAULTS))
            raise FaultSpecError(
                f"unknown chaos fault {name!r}; known faults: {known}")
        site = FAULTS[name][0]
        if name in ("worker-crash", "store-write-fail", "flaky-http"):
            if len(args) > 1:
                raise FaultSpecError(
                    f"chaos rule {name!r} takes at most one count argument")
            count = _parse_count(name, args[0]) if args else 1
            rules.append(FaultRule(name=name, site=site, count=count))
        elif name == "poison":
            if len(args) != 1 or not args[0]:
                raise FaultSpecError(
                    "chaos rule 'poison' needs a substring argument, e.g. "
                    "poison:llama2-7b")
            rules.append(FaultRule(name=name, site=site, match=args[0]))
        elif name == "slow-eval":
            if not args or len(args) > 2:
                raise FaultSpecError(
                    "chaos rule 'slow-eval' needs SECONDS and an optional "
                    "count, e.g. slow-eval:0.25 or slow-eval:0.25:2")
            try:
                seconds = float(args[0])
            except ValueError:
                raise FaultSpecError(
                    f"chaos rule 'slow-eval': seconds must be a number, "
                    f"got {args[0]!r}") from None
            if seconds < 0:
                raise FaultSpecError(
                    "chaos rule 'slow-eval': seconds must be >= 0")
            count = _parse_count(name, args[1]) if len(args) == 2 else None
            rules.append(FaultRule(name=name, site=site, count=count,
                                   seconds=seconds))
    if not rules:
        raise FaultSpecError(f"empty chaos spec {spec!r}")
    return rules


class FaultInjector:
    """An armed chaos spec, consulted by the serving layers at fault sites.

    The injector is reconstructed inside every pool worker from
    ``(spec, state_dir)`` (both picklable), so counted rules share one
    global budget through token files in ``state_dir`` no matter which
    process claims them.
    """

    def __init__(self, spec: str,
                 state_dir: Optional[str] = None) -> None:
        self.rules = parse_spec(spec)
        self.spec = spec
        needs_tokens = any(rule.count is not None for rule in self.rules)
        if state_dir is None and needs_tokens:
            state_dir = tempfile.mkdtemp(prefix="repro-chaos-")
        self.state_dir = os.fspath(state_dir) if state_dir else None
        if self.state_dir:
            os.makedirs(self.state_dir, exist_ok=True)
        self.fired: Dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: Optional[str],
                  state_dir: Optional[str] = None) -> Optional["FaultInjector"]:
        """An injector for ``spec``, or ``None`` for an empty/absent one."""
        if spec is None or not spec.strip():
            return None
        return cls(spec, state_dir=state_dir)

    # Claiming ---------------------------------------------------------------------

    def _claim(self, rule: FaultRule) -> bool:
        """Try to claim one firing of ``rule`` (globally for counted rules)."""
        if rule.count is None:
            self.fired[rule.name] = self.fired.get(rule.name, 0) + 1
            return True
        for slot in range(rule.count):
            token = os.path.join(self.state_dir,
                                 f"{rule.name}.{slot}.token")
            try:
                os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue
            self.fired[rule.name] = self.fired.get(rule.name, 0) + 1
            return True
        return False

    def _crash(self, reason: str) -> None:
        if _IN_POOL_WORKER:
            # A hard exit, not an exception: the parent must observe a
            # genuine BrokenProcessPool, exactly like a segfaulted worker.
            os._exit(17)
        raise InjectedWorkerCrash(f"chaos: {reason}")

    # Fault sites ------------------------------------------------------------------

    def on_worker_evaluate(self, doc: Mapping[str, object]) -> None:
        """Worker-side hook, called once per scenario before evaluating it."""
        doc_json = None
        for rule in self.rules:
            if rule.name == "slow-eval" and self._claim(rule):
                time.sleep(rule.seconds)
            elif rule.name == "worker-crash" and self._claim(rule):
                self._crash("injected worker crash")
            elif rule.name == "poison":
                if doc_json is None:
                    doc_json = json.dumps(doc, sort_keys=True, default=str)
                if rule.match in doc_json:
                    self.fired[rule.name] = self.fired.get(rule.name, 0) + 1
                    self._crash(f"poison scenario matching {rule.match!r}")

    def on_store_write(self) -> None:
        """Store-side hook, called before each result-store append.

        Raises:
            InjectedStoreWriteError: when a ``store-write-fail`` firing is
                claimed.
        """
        for rule in self.rules:
            if rule.name == "store-write-fail" and self._claim(rule):
                raise InjectedStoreWriteError(
                    "chaos: injected store write failure")

    def on_http_request(self) -> bool:
        """HTTP-side hook; ``True`` means drop this connection unanswered."""
        return any(rule.name == "flaky-http" and self._claim(rule)
                   for rule in self.rules)

    # Telemetry --------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Plain-JSON snapshot for ``GET /metrics``.

        ``fired`` counts are per-process (pool workers fire in their own
        processes), so the parent's numbers cover parent-side sites plus
        in-process workers; token files hold the cross-process truth.
        """
        return {
            "spec": self.spec,
            "rules": [rule.name for rule in self.rules],
            "fired": dict(self.fired),
        }
