"""Synthetic load generation against a live plan server (``repro loadtest``).

The harness replays N plan requests over C concurrent
:class:`~repro.server.client.PlanClient` connections and reports the
latency distribution (p50/p95/p99), the cache-hit rate, and the server's
own shed/retry counters scraped from ``GET /metrics`` — the numbers the
ROADMAP's production-serving SLOs are written in.

The synthetic workload is shaped by one knob, ``dedup_ratio``: the fraction
of requests that repeat an earlier scenario. ``0.0`` makes every request
unique (a cold-store stress of the evaluation and write paths), ``0.95``
models the interactive planning workload the paper's wafer-scale scenario
implies (most requests re-ask a recently planned configuration, so the
store and in-flight dedup should absorb them). Uniqueness is minted by
varying ``solver.seed`` — cache-key-relevant but evaluation-inert for the
pinned-spec scenario used, so the measured spread is serving-path cost, not
solver noise.

Scope: a harness for smoke tests and `repro bench`-adjacent tracking, not a
general traffic model — requests are issued round-robin over the unique
documents, so arrival order is deterministic given (requests, dedup_ratio,
concurrency).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List

from repro.api.scenario import SCHEMA_VERSION

#: Quantiles reported by :func:`run_loadtest` (fractions of 1).
REPORT_QUANTILES = (0.50, 0.95, 0.99)


def _percentile(values: List[float], quantile: float) -> float:
    """Linearly interpolated percentile of ``values`` (must be non-empty)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = quantile * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def synthetic_documents(unique: int) -> List[Dict[str, object]]:
    """``unique`` distinct cheap scenario documents (distinct cache keys).

    All pin the same tiny fixed-spec plan (no search), differing only in
    ``solver.seed`` — a cache-key axis the fixed-spec evaluation ignores —
    so every unique document costs the server the same small amount.
    """
    return [
        {
            "schema_version": SCHEMA_VERSION,
            "workload": {"model": "gpt3-6.7b", "num_layers": 2,
                         "batch_size": 8, "seq_length": 512},
            "hardware": {},
            "solver": {"scheme": "temp", "engine": "tcme",
                       "fixed_spec": {"dp": 4, "tp": 8}, "seed": index},
        }
        for index in range(unique)
    ]


def run_loadtest(host: str = "127.0.0.1",
                 port: int = 8099,
                 requests: int = 200,
                 dedup_ratio: float = 0.95,
                 concurrency: int = 8,
                 timeout: float = 30.0) -> Dict[str, object]:
    """Replay ``requests`` synthetic plans against a live server.

    Args:
        host/port: the server to drive (must already be serving).
        requests: total plan requests to issue.
        dedup_ratio: fraction of requests that repeat an earlier scenario
            (``unique = max(1, round(requests * (1 - dedup_ratio)))``).
        concurrency: worker threads, each with its own client connection.
        timeout: per-request client timeout in seconds.

    Returns:
        A plain-JSON report: request/unique/concurrency echo, wall-clock
        ``duration_seconds`` and ``throughput_rps``, ``latency`` quantiles
        in seconds, per-source response counts (``store`` / ``inflight`` /
        ``evaluated``), the derived ``cache_hit_rate``, an ``errors`` list
        (first few messages) plus count, and the server-side ``/metrics``
        counters that matter for SLOs (shed, retries, evaluations, store).

    Raises:
        ValueError: on a nonsensical parameterisation.
    """
    from repro.server.client import PlanClient, PlanServerError
    from repro.server.resilience import RetryPolicy

    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not 0.0 <= dedup_ratio <= 1.0:
        raise ValueError(
            f"dedup-ratio must be in [0, 1], got {dedup_ratio}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")

    unique = max(1, round(requests * (1.0 - dedup_ratio)))
    documents = synthetic_documents(unique)

    # Shared work queue: request i plans document i % unique, claimed by
    # whichever worker is free — deterministic content, real concurrency.
    next_index = 0
    index_lock = threading.Lock()
    latencies: List[float] = []
    sources: Dict[str, int] = {}
    errors: List[str] = []
    record_lock = threading.Lock()

    def worker() -> None:
        nonlocal next_index
        client = PlanClient(
            host=host, port=port, timeout=timeout,
            retry=RetryPolicy(max_attempts=3, base_delay=0.05))
        while True:
            with index_lock:
                if next_index >= requests:
                    return
                index = next_index
                next_index += 1
            document = documents[index % unique]
            start = time.perf_counter()
            try:
                client.plan(document)
            except (PlanServerError, OSError) as error:
                with record_lock:
                    errors.append(f"request {index}: {error}")
                continue
            elapsed = time.perf_counter() - start
            source = client.last_source or "unknown"
            with record_lock:
                latencies.append(elapsed)
                sources[source] = sources.get(source, 0) + 1

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(min(concurrency, requests))]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start

    completed = len(latencies)
    cached = sources.get("store", 0) + sources.get("inflight", 0)
    latency: Dict[str, object] = {"count": completed}
    if completed:
        latency.update({
            f"p{int(quantile * 100)}":
                round(_percentile(latencies, quantile), 6)
            for quantile in REPORT_QUANTILES
        })
        latency["mean"] = round(sum(latencies) / completed, 6)
        latency["max"] = round(max(latencies), 6)

    report: Dict[str, object] = {
        "server": f"{host}:{port}",
        "requests": requests,
        "unique_scenarios": unique,
        "dedup_ratio": dedup_ratio,
        "concurrency": len(threads),
        "duration_seconds": round(duration, 6),
        "throughput_rps": round(completed / duration, 3) if duration else 0.0,
        "completed": completed,
        "latency": latency,
        "sources": dict(sorted(sources.items())),
        "cache_hit_rate": round(cached / requests, 6),
        "error_count": len(errors),
        "errors": errors[:5],
    }

    # Server-side view: the SLO counters /metrics already exposes.
    try:
        client = PlanClient(host=host, port=port, timeout=timeout)
        metrics = client.metrics()
        scheduler = metrics.get("scheduler", {})
        report["server_metrics"] = {
            "requests": scheduler.get("requests"),
            "shed": scheduler.get("shed"),
            "deadline_expired": scheduler.get("deadline_expired"),
            "evaluations": scheduler.get("evaluations"),
            "retries": scheduler.get("retries"),
            "store": metrics.get("store"),
        }
    except (PlanServerError, OSError) as error:
        report["server_metrics"] = {"error": str(error)}
    return report


def render_report(report: Dict[str, object]) -> str:
    """The human-readable summary ``repro loadtest`` prints."""
    latency = report.get("latency", {})
    lines = [
        f"loadtest against {report['server']}: "
        f"{report['completed']}/{report['requests']} requests in "
        f"{report['duration_seconds']:.3f}s "
        f"({report['throughput_rps']:.1f} req/s, "
        f"concurrency {report['concurrency']}, "
        f"{report['unique_scenarios']} unique scenario(s))",
    ]
    if latency.get("count"):
        lines.append(
            "latency: "
            + "  ".join(f"{name}={latency[name] * 1000.0:.2f}ms"
                        for name in ("p50", "p95", "p99", "mean", "max")))
    sources = report.get("sources", {})
    if sources:
        lines.append("sources: " + "  ".join(
            f"{name}={count}" for name, count in sources.items()))
    lines.append(f"cache-hit rate: {report['cache_hit_rate']:.3f}")
    if report.get("error_count"):
        lines.append(f"errors: {report['error_count']} "
                     f"(first: {report['errors'][0]})")
    server_metrics = report.get("server_metrics", {})
    if "error" not in server_metrics:
        store = server_metrics.get("store") or {}
        lines.append(
            f"server: shed={server_metrics.get('shed')}  "
            f"evaluations={server_metrics.get('evaluations')}  "
            f"retries={server_metrics.get('retries')}  "
            f"store_backend={store.get('backend', '-')}  "
            f"store_entries={store.get('entries', '-')}")
    else:
        lines.append(f"server metrics unavailable: "
                     f"{server_metrics['error']}")
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str) -> None:
    """Persist a loadtest report as JSON (the CI smoke asserts on it)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
