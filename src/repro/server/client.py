"""Blocking stdlib client of the plan server's wire format.

:class:`PlanClient` is what ``repro submit`` (and the CI server smoke step)
uses: plain ``http.client`` requests against the four endpoints of
:mod:`repro.server.http`, raising :class:`PlanServerError` with the
structured error payload on non-2xx responses.

The client is resilient by default: plan requests are idempotent by
:meth:`Scenario.cache_key <repro.api.scenario.Scenario.cache_key>`, so a
dropped connection or a load-shed 503 is retried under a shared
:class:`~repro.server.resilience.RetryPolicy` — exponential backoff with
jitter, honouring the server's ``Retry-After`` header. Request timeouts are
*not* retried (a slow server is not a flaky one; the caller set the
budget), and ``retry=RetryPolicy(max_attempts=1)`` disables retries
entirely.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Dict, List, Optional, Union

from repro.api.portfolio import Portfolio
from repro.api.scenario import Scenario
from repro.server.resilience import RetryPolicy

#: Default client policy: a handful of jittered retries spanning ~1s.
DEFAULT_CLIENT_RETRY = RetryPolicy(max_attempts=4, base_delay=0.05,
                                   max_delay=1.0)

#: A request: either an already-built Scenario or its raw document.
ScenarioLike = Union[Scenario, Dict[str, object]]

#: A sweep request: either an already-built Portfolio or its raw document.
PortfolioLike = Union[Portfolio, Dict[str, object]]


class PlanServerError(RuntimeError):
    """A non-2xx response; carries the server's structured error payload."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        detail = payload.get("error", payload) if isinstance(payload, dict) \
            else payload
        super().__init__(f"plan server returned {status}: {detail}")
        self.status = status
        self.payload = payload


class PlanClient:
    """One plan-server endpoint (host, port) to submit scenarios to.

    Attributes:
        last_source: which path served the most recent :meth:`plan` call
            (``"store"`` / ``"inflight"`` / ``"evaluated"``), from the
            ``X-Repro-Source`` response header.
        retries_performed: total retried requests over the client's
            lifetime (connection failures + 503 sheds).
        last_attempts: how many attempts the most recent request took.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8099,
                 timeout: float = 120.0,
                 retry: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        self.rng = rng
        self.last_source: Optional[str] = None
        self.retries_performed = 0
        self.last_attempts = 0

    # Endpoints -------------------------------------------------------------------

    def plan(self, scenario: ScenarioLike) -> Dict[str, object]:
        """``POST /v1/plan``: one scenario -> one result payload."""
        status, headers, payload = self._request(
            "POST", "/v1/plan", _document(scenario))
        self.last_source = headers.get("x-repro-source")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def plan_batch(
            self, scenarios: List[ScenarioLike]) -> List[Dict[str, object]]:
        """``POST /v1/plan/batch``: ordered payloads, errors inline."""
        status, _, payload = self._request(
            "POST", "/v1/plan/batch",
            [_document(scenario) for scenario in scenarios])
        if status != 200:
            raise PlanServerError(status, payload)
        return payload["results"]

    def portfolio_start(
            self, portfolio: PortfolioLike) -> Dict[str, object]:
        """``POST /v1/portfolio``: launch one sweep; returns the job summary."""
        document = (portfolio.to_dict() if isinstance(portfolio, Portfolio)
                    else portfolio)
        status, _, payload = self._request("POST", "/v1/portfolio", document)
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def portfolio_status(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/portfolio/<job>``: one sweep's progress (and results)."""
        status, _, payload = self._request("GET", f"/v1/portfolio/{job_id}")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def portfolio_jobs(self) -> Dict[str, object]:
        """``GET /v1/portfolio``: summaries of every known sweep job."""
        status, _, payload = self._request("GET", "/v1/portfolio")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def sweep(
        self,
        portfolio: PortfolioLike,
        poll_interval: float = 0.1,
        timeout: float = 600.0,
        progress=None,
    ) -> Dict[str, object]:
        """Launch a sweep and poll it to completion.

        Args:
            portfolio: the family to sweep.
            poll_interval: seconds between ``portfolio_status`` polls.
            timeout: overall deadline in seconds.
            progress: optional callback receiving each polled status
                document (incremental ``completed`` / ``unique`` counters).

        Returns:
            The final status document (``results`` / ``sources`` /
            ``wall_seconds`` / ``params`` arrays in point order).

        Raises:
            PlanServerError: when the server rejects the portfolio or the
                job fails.
            TimeoutError: when the deadline passes first.
        """
        status = self.portfolio_start(portfolio)
        deadline = time.monotonic() + timeout
        while status.get("status") == "running":
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"portfolio job {status.get('job')} did not finish "
                    f"within {timeout}s")
            time.sleep(poll_interval)
            status = self.portfolio_status(status["job"])
            if progress is not None:
                progress(status)
        if status.get("status") != "done":
            raise PlanServerError(500, {"error": {
                "type": "portfolio_failed",
                "message": status.get("error", "portfolio job failed"),
                "status": 500}})
        return status

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz`` (never retried: :meth:`wait_ready` owns the
        polling cadence, and a liveness probe must report liveness)."""
        status, _, payload = self._request("GET", "/healthz",
                                           retryable=False)
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``: the scheduler's counter document."""
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.1) -> bool:
        """Poll ``/healthz`` until the server answers (or time runs out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.healthz()
                return True
            except (OSError, PlanServerError):
                if time.monotonic() >= deadline:
                    return False
                time.sleep(interval)

    # Transport -------------------------------------------------------------------

    def _request(self, method: str, path: str, body: object = None,
                 retryable: bool = True):
        """One request, retried with backoff on transient failures.

        Retried: connection-level ``OSError`` (refused, reset, dropped
        mid-response) and 503 responses (load shed / shutting down),
        sleeping the jittered policy delay — or the server's ``Retry-After``
        when it asks for longer. Not retried: timeouts (the caller's
        budget) and every other status (terminal by the taxonomy).
        """
        last_error: Optional[OSError] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            self.last_attempts = attempt
            final = attempt == self.retry.max_attempts or not retryable
            try:
                status, headers, payload = self._request_once(
                    method, path, body)
            except TimeoutError:
                raise
            except OSError as error:
                if final:
                    raise
                last_error = error
                self._backoff(attempt)
                continue
            if status == 503 and not final:
                self._backoff(attempt, headers.get("retry-after"))
                continue
            return status, headers, payload
        raise last_error  # unreachable: the final attempt raised/returned

    def _backoff(self, attempt: int,
                 retry_after: Optional[str] = None) -> None:
        delay = self.retry.delay(attempt, rng=self.rng)
        if retry_after is not None:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        self.retries_performed += 1
        time.sleep(delay)

    def _request_once(self, method: str, path: str, body: object = None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            data = None
            headers = {}
            if body is not None:
                data = json.dumps(body, allow_nan=False).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except socket.timeout as error:
                raise TimeoutError(
                    f"plan server at {self.host}:{self.port} timed out "
                    f"after {self.timeout}s") from error
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": {"type": "protocol",
                                     "message": "non-JSON response body",
                                     "status": response.status}}
            headers_out = {name.lower(): value
                           for name, value in response.getheaders()}
            return response.status, headers_out, payload
        finally:
            connection.close()


def _document(scenario: ScenarioLike) -> Dict[str, object]:
    """A scenario (object or raw document) as its wire document."""
    if isinstance(scenario, Scenario):
        return scenario.to_dict()
    return scenario
