"""Blocking stdlib client of the plan server's wire format.

:class:`PlanClient` is what ``repro submit`` (and the CI server smoke step)
uses: plain ``http.client`` requests against the four endpoints of
:mod:`repro.server.http`, raising :class:`PlanServerError` with the
structured error payload on non-2xx responses.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Union

from repro.api.scenario import Scenario

#: A request: either an already-built Scenario or its raw document.
ScenarioLike = Union[Scenario, Dict[str, object]]


class PlanServerError(RuntimeError):
    """A non-2xx response; carries the server's structured error payload."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        detail = payload.get("error", payload) if isinstance(payload, dict) \
            else payload
        super().__init__(f"plan server returned {status}: {detail}")
        self.status = status
        self.payload = payload


class PlanClient:
    """One plan-server endpoint (host, port) to submit scenarios to.

    Attributes:
        last_source: which path served the most recent :meth:`plan` call
            (``"store"`` / ``"inflight"`` / ``"evaluated"``), from the
            ``X-Repro-Source`` response header.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8099,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.last_source: Optional[str] = None

    # Endpoints -------------------------------------------------------------------

    def plan(self, scenario: ScenarioLike) -> Dict[str, object]:
        """``POST /v1/plan``: one scenario -> one result payload."""
        status, headers, payload = self._request(
            "POST", "/v1/plan", _document(scenario))
        self.last_source = headers.get("x-repro-source")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def plan_batch(
            self, scenarios: List[ScenarioLike]) -> List[Dict[str, object]]:
        """``POST /v1/plan/batch``: ordered payloads, errors inline."""
        status, _, payload = self._request(
            "POST", "/v1/plan/batch",
            [_document(scenario) for scenario in scenarios])
        if status != 200:
            raise PlanServerError(status, payload)
        return payload["results"]

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``."""
        status, _, payload = self._request("GET", "/healthz")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``: the scheduler's counter document."""
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise PlanServerError(status, payload)
        return payload

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.1) -> bool:
        """Poll ``/healthz`` until the server answers (or time runs out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.healthz()
                return True
            except (OSError, PlanServerError):
                if time.monotonic() >= deadline:
                    return False
                time.sleep(interval)

    # Transport -------------------------------------------------------------------

    def _request(self, method: str, path: str, body: object = None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            data = None
            headers = {}
            if body is not None:
                data = json.dumps(body, allow_nan=False).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except socket.timeout as error:
                raise TimeoutError(
                    f"plan server at {self.host}:{self.port} timed out "
                    f"after {self.timeout}s") from error
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": {"type": "protocol",
                                     "message": "non-JSON response body",
                                     "status": response.status}}
            headers_out = {name.lower(): value
                           for name, value in response.getheaders()}
            return response.status, headers_out, payload
        finally:
            connection.close()


def _document(scenario: ScenarioLike) -> Dict[str, object]:
    """A scenario (object or raw document) as its wire document."""
    if isinstance(scenario, Scenario):
        return scenario.to_dict()
    return scenario
