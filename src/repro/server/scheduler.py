"""The async micro-batching scheduler of the plan server.

:class:`PlanScheduler` is the layer between a front end (the HTTP server,
the CLI batch path) and the evaluation workers. One request travels::

    submit(scenario)
      -> cache_key()                 # canonical identity of the request
      -> ResultStore.get(key)        # served across restarts without solving
      -> in-flight dedup map         # identical concurrent requests share
                                     # one evaluation (one future, N awaiters)
      -> micro-batch queue           # requests arriving within batch_window
                                     # are grouped before dispatch
      -> hardware grouping           # same HardwareSpec -> one worker task,
                                     # so the group shares the worker's
                                     # resolved wafer and CostTables
      -> worker pool                 # jobs=1: one in-process PlanService
                                     # (single worker thread); jobs>1: a
                                     # persistent ProcessPoolExecutor, one
                                     # PlanService per worker — the PR 2
                                     # orchestrator's shared-PlanCache
                                     # pattern, kept warm across requests

Evaluation is deterministic and the plan cache purely memoises, so a served
payload is bit-identical to ``PlanService().evaluate(scenario).to_dict()``
no matter which path produced it (pinned in ``tests/server/``).

Malformed documents raise :class:`PlanRequestError`, whose ``payload`` is a
structured ``{"error": {...}}`` document — front ends turn it into a 400,
never a traceback. Evaluation failures (e.g. no feasible configuration)
come back as the same error-payload shape and are *not* stored, so they
don't poison the cross-restart cache.
"""

from __future__ import annotations

import asyncio
import copy
import functools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.scenario import Scenario, ScenarioError
from repro.api.service import PlanService
from repro.server.store import ResultStore

#: Where a served payload came from (the trace of ``submit_traced``).
SOURCES = ("store", "inflight", "evaluated")


def error_payload(message: str, kind: str = "error",
                  status: int = 400) -> Dict[str, object]:
    """The structured error document every front end speaks."""
    return {"error": {"type": kind, "message": message, "status": status}}


class PlanRequestError(ValueError):
    """A request that cannot be evaluated (bad document, server closing).

    ``payload`` is the JSON error document to return to the caller;
    ``status`` the HTTP-style status class it maps to.
    """

    def __init__(self, message: str, kind: str = "ScenarioError",
                 status: int = 400) -> None:
        super().__init__(message)
        self.kind = kind
        self.status = status

    @property
    def payload(self) -> Dict[str, object]:
        return error_payload(str(self), kind=self.kind, status=self.status)


# Worker-side evaluation ---------------------------------------------------------


def _evaluate_doc(service: PlanService,
                  doc: Mapping[str, object]) -> Dict[str, object]:
    """One scenario document -> result payload (or structured error)."""
    try:
        scenario = Scenario.from_dict(doc)
        return service.evaluate(scenario).to_dict()
    except Exception as error:
        # Contain any per-document failure here: one bad request must come
        # back as its own structured error, never poison the co-batched
        # requests of its group (which a raising evaluate_group would).
        message = error.args[0] if error.args else error
        return error_payload(str(message), kind=type(error).__name__,
                             status=422)


def evaluate_group(service: PlanService,
                   docs: List[Dict[str, object]]) -> Tuple[
                       List[Dict[str, object]], Dict[str, object]]:
    """Evaluate one hardware-compatible group on one service.

    Returns the per-document payloads plus a worker telemetry snapshot
    (pid + plan-cache counters) the scheduler folds into ``stats()``.
    """
    payloads = [_evaluate_doc(service, doc) for doc in docs]
    telemetry = {"pid": os.getpid(),
                 "plan_cache": service.plan_cache.stats()}
    return payloads, telemetry


#: Per-process service of pool workers (the PR 2 orchestrator pattern: one
#: shared PlanCache per worker, warm across every group the worker runs).
_WORKER_SERVICE: Optional[PlanService] = None


def _init_pool_worker() -> None:
    """Pool initializer: one persistent PlanService per worker process."""
    global _WORKER_SERVICE
    _WORKER_SERVICE = PlanService()


def _evaluate_group_in_worker(
        docs: List[Dict[str, object]]) -> Tuple[
            List[Dict[str, object]], Dict[str, object]]:
    """Top-level (picklable) pool task: evaluate one group."""
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        _WORKER_SERVICE = PlanService()
    return evaluate_group(_WORKER_SERVICE, docs)


# Scheduler ----------------------------------------------------------------------


class PlanScheduler:
    """Batched, deduplicated, cached scenario serving over a worker pool.

    Args:
        service: the shared in-process :class:`PlanService` (``jobs=1``
            only; defaults to a fresh one). With ``jobs > 1`` each pool
            worker owns its own service instead.
        store: optional :class:`ResultStore` consulted before queueing and
            fed after every successful evaluation. The scheduler owns it
            (``close()`` closes it).
        jobs: ``1`` evaluates in-process on a single worker thread;
            ``N > 1`` fans groups out to a persistent process pool.
        batch_window: seconds the batcher waits for more requests after the
            first one of a batch arrives.
        max_batch: requests per micro-batch cap.
    """

    def __init__(
        self,
        service: Optional[PlanService] = None,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        batch_window: float = 0.005,
        max_batch: int = 16,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if service is not None and jobs != 1:
            raise ValueError(
                "a shared service only applies to jobs=1 (in-process) "
                "scheduling; pool workers build their own")
        self.jobs = jobs
        self.batch_window = float(batch_window)
        self.max_batch = max_batch
        self.store = store
        self.service = (service if service is not None else PlanService()) \
            if jobs == 1 else None
        self.counters: Dict[str, int] = {
            "requests": 0,
            "deduped": 0,
            "evaluations": 0,
            "errors": 0,
            "batches": 0,
            "groups": 0,
        }
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_max = 0.0
        self._inflight: Dict[str, asyncio.Future] = {}
        self._worker_stats: Dict[int, Dict[str, int]] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._dispatch_tasks: set = set()
        self._executor = None
        self._group_fn = None
        self._started = False
        self._closing = False

    # Lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        """Create the queue, the worker pool, and the batcher task."""
        if self._started:
            return
        self._queue = asyncio.Queue()
        if self.jobs == 1:
            # One worker thread serialises evaluation: PlanService is not
            # thread-safe and a single in-process service is the point —
            # every request shares its PlanCache and resolved wafers.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="plan-worker")
            self._group_fn = functools.partial(evaluate_group, self.service)
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_init_pool_worker)
            self._group_fn = _evaluate_group_in_worker
        self._batcher = asyncio.create_task(self._batch_loop())
        self._started = True
        self._closing = False

    async def drain(self) -> None:
        """Wait until every queued and in-flight request has resolved."""
        while (self._queue is not None
               and (not self._queue.empty() or self._dispatch_tasks
                    or self._inflight)):
            tasks = list(self._dispatch_tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:
                # Requests are sitting in the queue or the batcher's open
                # window; give it a window's time to dispatch them.
                await asyncio.sleep(max(self.batch_window, 0.001))

    async def close(self) -> None:
        """Drain, then stop the batcher and the worker pool (idempotent)."""
        if not self._started:
            return
        self._closing = True
        await self.drain()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.store is not None:
            self.store.close()
        self._started = False

    async def __aenter__(self) -> "PlanScheduler":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # Submission ------------------------------------------------------------------

    async def submit(self, scenario: Scenario) -> Dict[str, object]:
        """Serve one scenario; see :meth:`submit_traced`."""
        payload, _ = await self.submit_traced(scenario)
        return payload

    async def submit_traced(
            self, scenario: Scenario) -> Tuple[Dict[str, object], str]:
        """Serve one scenario and report which path served it.

        Returns:
            ``(payload, source)`` with ``source`` one of :data:`SOURCES`:
            ``"store"`` (cross-restart cache), ``"inflight"`` (deduplicated
            onto an identical concurrent request), or ``"evaluated"``.

        Raises:
            PlanRequestError: when the scheduler is shutting down.
            RuntimeError: when the scheduler was never started.
        """
        if not self._started or self._queue is None:
            raise RuntimeError("PlanScheduler.start() was never awaited")
        if self._closing:
            raise PlanRequestError("plan server is shutting down",
                                   kind="unavailable", status=503)
        start = time.perf_counter()
        self.counters["requests"] += 1
        key = scenario.cache_key()
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self._record_latency(start)
                return stored, "store"
        future = self._inflight.get(key)
        if future is not None:
            self.counters["deduped"] += 1
            # shield(): one awaiter being cancelled must not cancel the
            # shared evaluation every other awaiter is waiting on.
            payload = copy.deepcopy(await asyncio.shield(future))
            self._record_latency(start)
            return payload, "inflight"
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._queue.put_nowait((key, scenario))
        payload = copy.deepcopy(await asyncio.shield(future))
        self._record_latency(start)
        return payload, "evaluated"

    async def submit_doc(self, doc: object) -> Dict[str, object]:
        """Serve one raw scenario document; see :meth:`submit_doc_traced`."""
        payload, _ = await self.submit_doc_traced(doc)
        return payload

    async def submit_doc_traced(
            self, doc: object) -> Tuple[Dict[str, object], str]:
        """Parse one raw document, then :meth:`submit_traced` it.

        Raises:
            PlanRequestError: on a malformed document (structured 400-style
                ``payload``, never a traceback).
        """
        try:
            scenario = Scenario.from_dict(doc)
        except ScenarioError as error:
            raise PlanRequestError(str(error)) from None
        return await self.submit_traced(scenario)

    async def submit_batch(
            self, docs: List[object]) -> List[Dict[str, object]]:
        """Serve a batch of raw documents concurrently, preserving order.

        Invalid items become inline ``{"error": {...}}`` payloads instead
        of failing the batch; an empty batch is a no-op returning ``[]``.
        """
        if not docs:
            return []

        async def _one(doc: object) -> Dict[str, object]:
            try:
                return await self.submit_doc(doc)
            except PlanRequestError as request_error:
                return request_error.payload

        return list(await asyncio.gather(*(_one(doc) for doc in docs)))

    # Batching and dispatch -------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Collect micro-batches from the queue and dispatch them."""
        while True:
            batch = [await self._queue.get()]
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            self.counters["batches"] += 1
            # Dispatch concurrently: the batcher goes straight back to
            # collecting while the pool evaluates this batch.
            task = asyncio.create_task(self._dispatch(batch))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(
            self, batch: List[Tuple[str, Scenario]]) -> None:
        """Group one batch by hardware spec and fan the groups out."""
        groups: Dict[str, List[Tuple[str, Scenario]]] = {}
        for key, scenario in batch:
            hardware_key = json.dumps(scenario.to_dict()["hardware"],
                                      sort_keys=True)
            groups.setdefault(hardware_key, []).append((key, scenario))
        self.counters["groups"] += len(groups)
        await asyncio.gather(*(self._run_group(group)
                               for group in groups.values()))

    async def _run_group(
            self, group: List[Tuple[str, Scenario]]) -> None:
        """Evaluate one hardware-compatible group on one pool worker."""
        docs = [scenario.to_dict() for _, scenario in group]
        loop = asyncio.get_running_loop()
        try:
            payloads, telemetry = await loop.run_in_executor(
                self._executor, self._group_fn, docs)
        except Exception as error:  # pool/worker failure, not a bad request
            failure = error_payload(f"evaluation worker failed: {error}",
                                    kind=type(error).__name__, status=500)
            payloads = [copy.deepcopy(failure) for _ in group]
            telemetry = None
        if telemetry is not None:
            self._worker_stats[telemetry["pid"]] = telemetry["plan_cache"]
        for (key, _), payload in zip(group, payloads):
            if "error" in payload:
                self.counters["errors"] += 1
            else:
                self.counters["evaluations"] += 1
                if self.store is not None:
                    self.store.put(key, payload)
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(payload)

    # Telemetry -------------------------------------------------------------------

    def _record_latency(self, start: float) -> None:
        elapsed = time.perf_counter() - start
        self._latency_count += 1
        self._latency_total += elapsed
        self._latency_max = max(self._latency_max, elapsed)

    def stats(self) -> Dict[str, object]:
        """Plain-JSON counter snapshot (the ``GET /metrics`` document)."""
        if self.service is not None:
            plan_cache = self.service.plan_cache.stats()
        else:
            # Pool mode: fold the latest per-worker snapshots (piggybacked
            # on every group result) into one aggregate.
            plan_cache = {"hits": 0, "misses": 0, "entries": 0,
                          "max_entries": 0}
            for snapshot in self._worker_stats.values():
                for counter in plan_cache:
                    plan_cache[counter] += snapshot[counter]
        return {
            "scheduler": {
                **self.counters,
                "jobs": self.jobs,
                "max_batch": self.max_batch,
                "batch_window_seconds": self.batch_window,
                "inflight": len(self._inflight),
            },
            "store": ({"enabled": True, **self.store.stats()}
                      if self.store is not None else {"enabled": False}),
            "plan_cache": plan_cache,
            "latency": {
                "count": self._latency_count,
                "total_seconds": self._latency_total,
                "max_seconds": self._latency_max,
                "mean_seconds": (self._latency_total / self._latency_count
                                 if self._latency_count else 0.0),
            },
        }
