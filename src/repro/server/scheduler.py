"""The async micro-batching scheduler of the plan server.

:class:`PlanScheduler` is the layer between a front end (the HTTP server,
the CLI batch path) and the evaluation workers. One request travels::

    submit(scenario)
      -> cache_key()                 # canonical identity of the request
      -> ResultStore.get(key)        # served across restarts without solving
      -> in-flight dedup map         # identical concurrent requests share
                                     # one evaluation (one future, N awaiters)
      -> admission control           # beyond max_queue unique in-flight
                                     # requests, new work is shed with a
                                     # structured 503 + Retry-After
      -> micro-batch queue           # requests arriving within batch_window
                                     # are grouped before dispatch
      -> hardware grouping           # same HardwareSpec -> one worker task,
                                     # so the group shares the worker's
                                     # resolved wafer and CostTables
      -> worker pool                 # jobs=1: one in-process PlanService
                                     # (single worker thread); jobs>1: a
                                     # persistent ProcessPoolExecutor, one
                                     # PlanService per worker — the PR 2
                                     # orchestrator's shared-PlanCache
                                     # pattern, kept warm across requests

Evaluation is deterministic and the plan cache purely memoises, so a served
payload is bit-identical to ``PlanService().evaluate(scenario).to_dict()``
no matter which path produced it (pinned in ``tests/server/``).

The scheduler is self-healing: a crashed pool worker (a genuine
``BrokenProcessPool``) triggers a pool rebuild and a re-dispatch of the
failed group under the shared :class:`~repro.server.resilience.RetryPolicy`;
a group that keeps failing is *bisected* so one poison scenario ends up
alone, gets a terminal typed error (kind ``worker_crashed``, its
``cache_key`` inlined), and its batch-mates still succeed. A per-request
``deadline`` turns a hung evaluation into a structured ``deadline_expired``
error instead of a hung future. All of it is countable in ``stats()``
(``retries`` / ``shed`` / ``deadline_expired`` / ``pool_rebuilds``) and
drivable deterministically via an armed
:class:`~repro.server.faults.FaultInjector`.

Malformed documents raise :class:`PlanRequestError`, whose ``payload`` is a
structured ``{"error": {...}}`` document — front ends turn it into a 400,
never a traceback. Evaluation failures (e.g. no feasible configuration)
come back as the same error-payload shape and are *not* stored, so they
don't poison the cross-restart cache.
"""

from __future__ import annotations

import asyncio
import copy
import functools
import json
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.api.scenario import Scenario, ScenarioError
from repro.api.service import PlanService
from repro.obs.metrics import COUNT_BUCKETS, CounterBundle, MetricsRegistry
from repro.obs.tracing import configure_tracing, get_tracer, span, tracing_enabled
from repro.server.faults import FaultInjector, mark_pool_worker
from repro.server.resilience import RetryPolicy, classify_exception
from repro.server.store import ResultStore

#: Where a served payload came from (the trace of ``submit_traced``).
SOURCES = ("store", "inflight", "evaluated")

#: Group re-dispatch policy: cheap, bounded — a pool rebuild per attempt is
#: already expensive, and a group still failing after this gets bisected.
DEFAULT_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.25)


def error_payload(message: str, kind: str = "error",
                  status: int = 400,
                  retryable: Optional[bool] = None,
                  cache_key: Optional[str] = None) -> Dict[str, object]:
    """The structured error document every front end speaks.

    ``retryable`` and ``cache_key`` are only present when given: the
    taxonomy flag tells clients whether backing off and retrying can help,
    the key tells batch clients *which* scenario actually failed.
    """
    error: Dict[str, object] = {"type": kind, "message": message,
                                "status": status}
    if retryable is not None:
        error["retryable"] = retryable
    if cache_key is not None:
        error["cache_key"] = cache_key
    return {"error": error}


class PlanRequestError(ValueError):
    """A request that cannot be evaluated (bad document, server closing).

    ``payload`` is the JSON error document to return to the caller;
    ``status`` the HTTP-style status class it maps to; ``retry_after``
    (seconds) is set on load-shed responses and becomes the ``Retry-After``
    header.
    """

    def __init__(self, message: str, kind: str = "ScenarioError",
                 status: int = 400, retryable: Optional[bool] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.status = status
        self.retryable = retryable
        self.retry_after = retry_after

    @property
    def payload(self) -> Dict[str, object]:
        return error_payload(str(self), kind=self.kind, status=self.status,
                             retryable=self.retryable)


# Worker-side evaluation ---------------------------------------------------------


def _evaluate_doc(service: PlanService,
                  doc: Mapping[str, object]) -> Dict[str, object]:
    """One scenario document -> result payload (or structured error)."""
    try:
        scenario = Scenario.from_dict(doc)
        return service.evaluate(scenario).to_dict()
    except Exception as error:
        # Contain any per-document failure here: one bad request must come
        # back as its own structured error, never poison the co-batched
        # requests of its group (which a raising evaluate_group would).
        message = error.args[0] if error.args else error
        return error_payload(str(message), kind=type(error).__name__,
                             status=422,
                             retryable=classify_exception(error).retryable)


def evaluate_group(service: PlanService,
                   docs: List[Dict[str, object]],
                   trace_context: Optional[Dict[str, str]] = None,
                   chaos: Optional[FaultInjector] = None,
                   drain_spans: bool = False) -> Tuple[
                       List[Dict[str, object]], Dict[str, object]]:
    """Evaluate one hardware-compatible group on one service.

    Returns the per-document payloads plus a worker telemetry snapshot
    (pid, plan-cache counters, the service's metrics-registry snapshot,
    and — in pool workers, where ``drain_spans`` is set — the buffered
    trace spans) the scheduler folds into ``stats()`` and its trace sink.
    ``trace_context`` parents the worker's spans under the scheduler's
    dispatch span across the thread/process boundary. The chaos hook
    fires *outside* the per-document containment, so an injected worker
    crash escapes like a real one would.
    """
    tracer = get_tracer()
    payloads = []
    with tracer.span_under(trace_context, "scheduler.evaluate_group",
                           scenarios=len(docs)):
        for doc in docs:
            if chaos is not None:
                chaos.on_worker_evaluate(doc)
            payloads.append(_evaluate_doc(service, doc))
    telemetry = {"pid": os.getpid(),
                 "plan_cache": service.plan_cache.stats(),
                 "metrics": service.registry.snapshot(),
                 "spans": tracer.drain() if drain_spans else []}
    return payloads, telemetry


#: Per-process service of pool workers (the PR 2 orchestrator pattern: one
#: shared PlanCache per worker, warm across every group the worker runs).
_WORKER_SERVICE: Optional[PlanService] = None

#: Per-process chaos injector of pool workers (re-armed from the spec the
#: initializer received; counted rules share token files with the parent).
_WORKER_CHAOS: Optional[FaultInjector] = None


def _init_pool_worker(chaos_spec: Optional[str] = None,
                      chaos_state_dir: Optional[str] = None,
                      trace: bool = False) -> None:
    """Pool initializer: one persistent PlanService (and chaos) per worker.

    ``trace`` arms *buffered* tracing in the worker: spans are collected in
    memory and shipped back inside group telemetry — workers never contend
    on the parent's trace file.
    """
    global _WORKER_SERVICE, _WORKER_CHAOS
    _WORKER_SERVICE = PlanService()
    _WORKER_CHAOS = None
    if trace:
        configure_tracing(buffered=True)
    if chaos_spec:
        mark_pool_worker()
        _WORKER_CHAOS = FaultInjector.from_spec(chaos_spec,
                                                state_dir=chaos_state_dir)


def _evaluate_group_in_worker(
        docs: List[Dict[str, object]],
        trace_context: Optional[Dict[str, str]] = None) -> Tuple[
            List[Dict[str, object]], Dict[str, object]]:
    """Top-level (picklable) pool task: evaluate one group."""
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        _WORKER_SERVICE = PlanService()
    return evaluate_group(_WORKER_SERVICE, docs, trace_context,
                          chaos=_WORKER_CHAOS, drain_spans=True)


# Scheduler ----------------------------------------------------------------------


class PlanScheduler:
    """Batched, deduplicated, cached scenario serving over a worker pool.

    Args:
        service: the shared in-process :class:`PlanService` (``jobs=1``
            only; defaults to a fresh one). With ``jobs > 1`` each pool
            worker owns its own service instead.
        store: optional :class:`ResultStore` consulted before queueing and
            fed after every successful evaluation. The scheduler owns it
            (``close()`` closes it). A failed store write is survived (the
            result is still served) and counted.
        jobs: ``1`` evaluates in-process on a single worker thread;
            ``N > 1`` fans groups out to a persistent process pool.
        batch_window: seconds the batcher waits for more requests after the
            first one of a batch arrives.
        max_batch: requests per micro-batch cap.
        deadline: optional per-request deadline in seconds; an expired
            request gets a structured ``deadline_expired`` error (504)
            instead of a hung future.
        max_queue: optional admission bound on unique in-flight requests;
            beyond it new work is shed with ``overloaded`` (503 +
            ``Retry-After``). Store hits and deduplicated requests are
            never shed — they cost no evaluation.
        retry: group re-dispatch policy after worker failures (defaults to
            :data:`DEFAULT_RETRY`).
        chaos: a :class:`~repro.server.faults.FaultInjector` (or its spec
            string) arming deterministic fault injection.
        registry: the :class:`~repro.obs.metrics.MetricsRegistry` the
            scheduler's histograms live in (defaults to a private one, so
            schedulers never share latency distributions by accident).
    """

    def __init__(
        self,
        service: Optional[PlanService] = None,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        batch_window: float = 0.005,
        max_batch: int = 16,
        deadline: Optional[float] = None,
        max_queue: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[Union[str, FaultInjector]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if service is not None and jobs != 1:
            raise ValueError(
                "a shared service only applies to jobs=1 (in-process) "
                "scheduling; pool workers build their own")
        self.jobs = jobs
        self.batch_window = float(batch_window)
        self.max_batch = max_batch
        self.deadline = deadline
        self.max_queue = max_queue
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.chaos = (FaultInjector.from_spec(chaos)
                      if isinstance(chaos, str) else chaos)
        self.store = store
        self.service = (service if service is not None else PlanService()) \
            if jobs == 1 else None
        self.counters = CounterBundle(
            requests=0,
            deduped=0,
            evaluations=0,
            errors=0,
            batches=0,
            groups=0,
            retries=0,
            shed=0,
            deadline_expired=0,
            pool_rebuilds=0,
            store_write_failures=0,
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._latency_hist = self.registry.histogram(
            "scheduler.request_latency_seconds",
            help="end-to-end submit latency (store hits included)")
        self._queue_wait_hist = self.registry.histogram(
            "scheduler.queue_wait_seconds",
            help="time a request sat in the micro-batch queue")
        self._assembly_hist = self.registry.histogram(
            "scheduler.batch_assembly_seconds",
            help="time spent collecting one micro-batch")
        self._dispatch_hist = self.registry.histogram(
            "scheduler.dispatch_seconds",
            help="worker-pool evaluation time per group (retries included)")
        self._batch_size_hist = self.registry.histogram(
            "scheduler.batch_size", buckets=COUNT_BUCKETS,
            help="requests per dispatched micro-batch")
        self._store_write_hist = self.registry.histogram(
            "scheduler.store_write_seconds",
            help="result-store append latency")
        self._inflight: Dict[str, asyncio.Future] = {}
        self._worker_stats: Dict[int, Dict[str, int]] = {}
        self._worker_metrics: Dict[int, Dict[str, object]] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._dispatch_tasks: set = set()
        self._executor = None
        self._group_fn = None
        self._pool_generation = 0
        self._rebuild_lock: Optional[asyncio.Lock] = None
        self._started = False
        self._closing = False

    # Lifecycle -------------------------------------------------------------------

    def _make_executor(self):
        """A fresh worker pool (also the rebuild path after a crash)."""
        if self.jobs == 1:
            # One worker thread serialises evaluation: PlanService is not
            # thread-safe and a single in-process service is the point —
            # every request shares its PlanCache and resolved wafers.
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="plan-worker")
        initargs = (
            self.chaos.spec if self.chaos is not None else None,
            self.chaos.state_dir if self.chaos is not None else None,
            tracing_enabled(),
        )
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_init_pool_worker,
            initargs=initargs)

    async def start(self) -> None:
        """Create the queue, the worker pool, and the batcher task."""
        if self._started:
            return
        self._queue = asyncio.Queue()
        self._executor = self._make_executor()
        self._rebuild_lock = asyncio.Lock()
        if self.jobs == 1:
            self._group_fn = functools.partial(evaluate_group, self.service,
                                               chaos=self.chaos)
        else:
            self._group_fn = _evaluate_group_in_worker
        self._batcher = asyncio.create_task(self._batch_loop())
        self._started = True
        self._closing = False

    async def drain(self) -> None:
        """Wait until every queued and in-flight request has resolved."""
        while (self._queue is not None
               and (not self._queue.empty() or self._dispatch_tasks
                    or self._inflight)):
            tasks = list(self._dispatch_tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:
                # Requests are sitting in the queue or the batcher's open
                # window; give it a window's time to dispatch them.
                await asyncio.sleep(max(self.batch_window, 0.001))

    async def close(self) -> None:
        """Drain, then stop the batcher and the worker pool (idempotent)."""
        if not self._started:
            return
        self._closing = True
        await self.drain()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.store is not None:
            self.store.close()
        self._started = False

    async def __aenter__(self) -> "PlanScheduler":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # Submission ------------------------------------------------------------------

    async def submit(self, scenario: Scenario) -> Dict[str, object]:
        """Serve one scenario; see :meth:`submit_traced`."""
        payload, _ = await self.submit_traced(scenario)
        return payload

    async def submit_traced(
            self, scenario: Scenario) -> Tuple[Dict[str, object], str]:
        """Serve one scenario and report which path served it.

        Returns:
            ``(payload, source)`` with ``source`` one of :data:`SOURCES`:
            ``"store"`` (cross-restart cache), ``"inflight"`` (deduplicated
            onto an identical concurrent request), or ``"evaluated"``.

        Raises:
            PlanRequestError: when the scheduler is shutting down, the
                admission queue is saturated (503, ``Retry-After``), or the
                per-request deadline expired (504).
            RuntimeError: when the scheduler was never started.
        """
        if not self._started or self._queue is None:
            raise RuntimeError("PlanScheduler.start() was never awaited")
        if self._closing:
            raise PlanRequestError("plan server is shutting down",
                                   kind="unavailable", status=503,
                                   retryable=True, retry_after=1.0)
        start = time.perf_counter()
        self.counters["requests"] += 1
        key = scenario.cache_key()
        with span("scheduler.request", cache_key=key) as request_span:
            if self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    self._record_latency(start)
                    return stored, "store"
            future = self._inflight.get(key)
            if future is not None:
                self.counters["deduped"] += 1
                payload = copy.deepcopy(await self._await_result(future))
                self._record_latency(start)
                return payload, "inflight"
            # Admission control: only *new* evaluations are shed — store
            # hits and dedup joins above cost nothing and always get
            # through.
            if (self.max_queue is not None
                    and len(self._inflight) >= self.max_queue):
                self.counters["shed"] += 1
                raise PlanRequestError(
                    f"plan server is saturated ({len(self._inflight)} "
                    f"requests in flight, max_queue={self.max_queue}); "
                    f"retry with backoff", kind="overloaded", status=503,
                    retryable=True, retry_after=1.0)
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            context = None
            if request_span.span_id:
                context = {"trace_id": request_span.trace_id,
                           "span_id": request_span.span_id}
            self._queue.put_nowait(
                (key, scenario, time.perf_counter(), context))
            payload = copy.deepcopy(await self._await_result(future))
            self._record_latency(start)
            return payload, "evaluated"

    async def _await_result(self, future: asyncio.Future) -> Dict[str, object]:
        """Await one shared evaluation, under the per-request deadline.

        shield(): one awaiter being cancelled (or timing out) must not
        cancel the shared evaluation every other awaiter is waiting on —
        the evaluation completes and feeds the store either way.
        """
        if self.deadline is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future),
                                          self.deadline)
        except asyncio.TimeoutError:
            self.counters["deadline_expired"] += 1
            raise PlanRequestError(
                f"request exceeded the per-request deadline of "
                f"{self.deadline}s", kind="deadline_expired", status=504,
                retryable=True) from None

    async def submit_doc(self, doc: object) -> Dict[str, object]:
        """Serve one raw scenario document; see :meth:`submit_doc_traced`."""
        payload, _ = await self.submit_doc_traced(doc)
        return payload

    async def submit_doc_traced(
            self, doc: object) -> Tuple[Dict[str, object], str]:
        """Parse one raw document, then :meth:`submit_traced` it.

        Raises:
            PlanRequestError: on a malformed document (structured 400-style
                ``payload``, never a traceback).
        """
        try:
            scenario = Scenario.from_dict(doc)
        except ScenarioError as error:
            raise PlanRequestError(str(error)) from None
        return await self.submit_traced(scenario)

    async def submit_batch(
            self, docs: List[object]) -> List[Dict[str, object]]:
        """Serve a batch of raw documents concurrently, preserving order.

        Invalid items become inline ``{"error": {...}}`` payloads instead
        of failing the batch; an empty batch is a no-op returning ``[]``.
        """
        if not docs:
            return []

        async def _one(doc: object) -> Dict[str, object]:
            try:
                return await self.submit_doc(doc)
            except PlanRequestError as request_error:
                return request_error.payload

        return list(await asyncio.gather(*(_one(doc) for doc in docs)))

    # Batching and dispatch -------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Collect micro-batches from the queue and dispatch them."""
        while True:
            batch = [await self._queue.get()]
            assembly_start = time.perf_counter()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            self.counters["batches"] += 1
            assembly = time.perf_counter() - assembly_start
            self._assembly_hist.observe(assembly)
            self._batch_size_hist.observe(len(batch))
            tracer = get_tracer()
            if tracer.enabled:
                tracer.record_span("scheduler.batch", assembly,
                                   context=batch[0][3], size=len(batch))
            # Dispatch concurrently: the batcher goes straight back to
            # collecting while the pool evaluates this batch.
            task = asyncio.create_task(self._dispatch(batch))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(self, batch: List[Tuple]) -> None:
        """Group one batch by hardware spec and fan the groups out."""
        now = time.perf_counter()
        tracer = get_tracer()
        for key, _, enqueued, context in batch:
            wait = now - enqueued
            self._queue_wait_hist.observe(wait)
            if tracer.enabled:
                tracer.record_span("scheduler.queue_wait", wait,
                                   context=context, cache_key=key)
        groups: Dict[str, List[Tuple]] = {}
        for item in batch:
            hardware_key = json.dumps(item[1].to_dict()["hardware"],
                                      sort_keys=True)
            groups.setdefault(hardware_key, []).append(item)
        self.counters["groups"] += len(groups)
        await asyncio.gather(*(self._run_group(group)
                               for group in groups.values()))

    async def _rebuild_pool(self, observed_generation: int) -> None:
        """Replace a broken executor (once per generation, lock-guarded).

        Concurrent groups all observing the same broken pool race here;
        only the first rebuilds — the rest see the bumped generation and
        retry on the already-fresh pool.
        """
        async with self._rebuild_lock:
            if self._pool_generation != observed_generation:
                return
            broken = self._executor
            self._executor = self._make_executor()
            self._pool_generation += 1
            self.counters["pool_rebuilds"] += 1
            if broken is not None:
                # wait=False: the pool is already broken; reaping its dead
                # processes must not block the event loop.
                broken.shutdown(wait=False)

    async def _evaluate_with_retry(
            self, group: List[Tuple]) -> List[Dict[str, object]]:
        """Evaluate one group, self-healing around worker failures.

        Retryable failures (a crashed worker, a broken pool) re-dispatch
        the whole group under :attr:`retry`; a group that keeps failing is
        bisected so each half retries independently — the recursion
        terminates with the poison scenario alone in a singleton group,
        which gets a terminal ``worker_crashed`` error payload carrying its
        ``cache_key``, while every other request still evaluates normally.
        """
        docs = [scenario.to_dict() for _, scenario, _, _ in group]
        loop = asyncio.get_running_loop()
        tracer = get_tracer()
        attempts = 0
        # The dispatch runs in the batch-loop task, not a request's; parent
        # it under the first grouped request's serialized span context.
        with tracer.span_under(group[0][3], "scheduler.dispatch",
                               scenarios=len(docs)) as dispatch_span:
            context = None
            if dispatch_span.span_id:
                context = {"trace_id": dispatch_span.trace_id,
                           "span_id": dispatch_span.span_id}
            dispatch_start = time.perf_counter()
            while True:
                generation = self._pool_generation
                try:
                    payloads, telemetry = await loop.run_in_executor(
                        self._executor, self._group_fn, docs, context)
                except Exception as error:
                    failure = classify_exception(error)
                    if isinstance(error, BrokenExecutor):
                        await self._rebuild_pool(generation)
                    attempts += 1
                    if (failure.retryable
                            and attempts < self.retry.max_attempts):
                        self.counters["retries"] += 1
                        await asyncio.sleep(self.retry.delay(attempts))
                        continue
                    if failure.retryable and len(group) > 1:
                        # Bisect: isolate the poison scenario so its
                        # batch-mates still succeed.
                        mid = len(group) // 2
                        left = await self._evaluate_with_retry(group[:mid])
                        right = await self._evaluate_with_retry(group[mid:])
                        return left + right
                    retries_note = (f" after {attempts} attempts"
                                    if failure.retryable else "")
                    return [error_payload(
                        f"evaluation worker failed{retries_note}: {error}",
                        kind=("worker_crashed" if failure.retryable
                              else failure.kind),
                        status=500, retryable=False, cache_key=key)
                        for key, _, _, _ in group]
                self._dispatch_hist.observe(
                    time.perf_counter() - dispatch_start)
                if telemetry is not None:
                    self._absorb_telemetry(telemetry, tracer)
                return payloads

    def _absorb_telemetry(self, telemetry: Dict[str, object],
                          tracer) -> None:
        """Fold one worker telemetry document into scheduler-side state.

        Worker counters are cumulative per process, so the *last* snapshot
        per pid is kept (merged at :meth:`stats` time); buffered worker
        spans are re-emitted into this process's trace sink.
        """
        pid = telemetry["pid"]
        self._worker_stats[pid] = telemetry["plan_cache"]
        if telemetry.get("metrics") is not None:
            self._worker_metrics[pid] = telemetry["metrics"]
        if tracer.enabled:
            for record in telemetry.get("spans") or ():
                tracer.emit(record)

    async def _run_group(self, group: List[Tuple]) -> None:
        """Evaluate one hardware-compatible group on one pool worker."""
        payloads = await self._evaluate_with_retry(group)
        for (key, _, _, _), payload in zip(group, payloads):
            if "error" in payload:
                # Every per-scenario error names its request: batch-mates
                # sharing a group-wide failure stay distinguishable.
                payload["error"].setdefault("cache_key", key)
                self.counters["errors"] += 1
            else:
                self.counters["evaluations"] += 1
                self._store_put(key, payload)
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(payload)

    def _store_put(self, key: str, payload: Dict[str, object]) -> None:
        """Persist one payload, surviving (and counting) write failures.

        The store is an optimisation, not the source of truth: a failed
        append must not fail the request whose result it was caching.
        """
        if self.store is None:
            return
        start = time.perf_counter()
        try:
            with span("scheduler.store_write", cache_key=key):
                if self.chaos is not None:
                    self.chaos.on_store_write()
                self.store.put(key, payload)
        except OSError:
            self.counters["store_write_failures"] += 1
        finally:
            self._store_write_hist.observe(time.perf_counter() - start)

    # Telemetry -------------------------------------------------------------------

    def _record_latency(self, start: float) -> None:
        self._latency_hist.observe(time.perf_counter() - start)

    def merged_registry(self) -> MetricsRegistry:
        """The scheduler's registry folded with the latest worker snapshots.

        Worker registries are cumulative per process, so only the last
        snapshot per pid contributes; the merge happens into a *fresh*
        registry so repeated calls never double-count.
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(self.registry.snapshot())
        for snapshot in self._worker_metrics.values():
            merged.merge_snapshot(snapshot)
        return merged

    def stats(self) -> Dict[str, object]:
        """Plain-JSON counter snapshot (the ``GET /metrics`` document)."""
        if self.service is not None:
            plan_cache = self.service.plan_cache.stats()
        else:
            # Pool mode: fold the latest per-worker snapshots (piggybacked
            # on every group result) into one aggregate.
            plan_cache = {"hits": 0, "misses": 0, "entries": 0,
                          "max_entries": 0}
            for snapshot in self._worker_stats.values():
                for counter in plan_cache:
                    plan_cache[counter] += snapshot[counter]
        return {
            "scheduler": {
                **self.counters,
                "jobs": self.jobs,
                "max_batch": self.max_batch,
                "batch_window_seconds": self.batch_window,
                "deadline_seconds": self.deadline,
                "max_queue": self.max_queue,
                "retry_policy": self.retry.to_dict(),
                "inflight": len(self._inflight),
            },
            "store": ({"enabled": True, **self.store.stats()}
                      if self.store is not None else {"enabled": False}),
            "plan_cache": plan_cache,
            "chaos": ({"enabled": True, **self.chaos.stats()}
                      if self.chaos is not None else {"enabled": False}),
            # The pre-registry scalar keys stay bit-compatible (pinned in
            # tests/server); the percentile keys are the histogram's gain.
            "latency": {
                "count": self._latency_hist.count,
                "total_seconds": self._latency_hist.sum,
                "max_seconds": self._latency_hist.max,
                "mean_seconds": self._latency_hist.mean,
                "p50_seconds": self._latency_hist.percentile(0.50),
                "p95_seconds": self._latency_hist.percentile(0.95),
                "p99_seconds": self._latency_hist.percentile(0.99),
            },
            "timings": self.merged_registry().histogram_summaries(),
        }
