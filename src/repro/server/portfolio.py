"""The portfolio sweep engine: scenario families through the plan scheduler.

This is the batch backbone of the plan server. A
:class:`~repro.api.portfolio.Portfolio` expands into ordered points; the
engine de-duplicates them via :meth:`Scenario.cache_key
<repro.api.scenario.Scenario.cache_key>` and streams the unique scenarios
through an existing :class:`~repro.server.scheduler.PlanScheduler` — so the
in-flight dedup map, the hardware-spec grouping, the warm worker pool, and
the cross-restart :class:`~repro.server.store.ResultStore` are all reused
for free. Every point gets its own :class:`PointOutcome` (duplicates share
the payload of one evaluation).

Three front ends drive it:

* :func:`run_portfolio_local` — ``repro sweep <name>`` without a server:
  spins up a private scheduler for the sweep's lifetime.
* :class:`PortfolioManager` — ``POST /v1/portfolio`` on the HTTP server:
  one polled job per submitted portfolio, with incremental progress
  counters while the sweep runs.
* :func:`build_sweep_manifest` — turns the outcomes into a
  ``results/<figure>.json`` manifest compatible with
  :mod:`repro.runner.manifest` (validated by ``repro check`` and pinned
  row-identical to the orchestrator path for registered portfolios).
"""

from __future__ import annotations

import asyncio
import copy
import time
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Mapping, Optional

from repro import __version__
from repro.api.portfolio import Portfolio, PortfolioError, PortfolioPoint
from repro.obs.tracing import span
from repro.server.resilience import RetryPolicy
from repro.server.scheduler import PlanRequestError, PlanScheduler

#: Default cap on points one portfolio may expand to (server guard).
MAX_POINTS = 4096

#: Finished jobs kept for polling before the oldest are evicted.
MAX_FINISHED_JOBS = 64

#: Default shed-retry policy of sweeps: a sweep is a batch producer, so it
#: backs off patiently when admission control pushes back.
SWEEP_RETRY = RetryPolicy(max_attempts=6, base_delay=0.05, max_delay=1.0)


@dataclass
class PointOutcome:
    """Served result of one portfolio point.

    ``source`` is the scheduler trace (``store`` / ``inflight`` /
    ``evaluated``) of the point's unique scenario, ``"duplicate"`` when the
    point shared another point's evaluation, or ``"failed"`` when the
    request could not be served at all (payload is then a structured
    ``{"error": ...}`` document).
    """

    index: int
    params: Dict[str, object]
    payload: Dict[str, object]
    source: str
    wall_seconds: float
    key: str


async def sweep_portfolio(
    scheduler: PlanScheduler,
    portfolio: Portfolio,
    points: Optional[List[PortfolioPoint]] = None,
    on_unique: Optional[Callable[[int, int, PointOutcome], None]] = None,
    max_points: Optional[int] = MAX_POINTS,
    retry: Optional[RetryPolicy] = None,
    max_concurrency: Optional[int] = None,
) -> List[PointOutcome]:
    """Serve every point of ``portfolio`` through ``scheduler``.

    Args:
        scheduler: a started :class:`PlanScheduler` (owned by the caller).
        portfolio: the family to sweep.
        points: pre-expanded points (skips re-expansion when the caller
            already validated them).
        on_unique: optional callback invoked after each *unique* scenario
            resolves, with ``(completed_unique, total_unique, outcome)`` —
            the incremental-progress hook of the HTTP job and the CLI.
        max_points: expansion cap (``None`` disables it).
        retry: backoff policy for points shed by admission control
            (defaults to :data:`SWEEP_RETRY`); a point still shed after it
            is exhausted becomes a ``"failed"`` outcome.
        max_concurrency: optional cap on simultaneously submitted unique
            points — the sweep's own backpressure valve. Defaults to the
            scheduler's ``max_queue`` when one is set, so a sweep never
            floods its own admission controller.

    Returns:
        One :class:`PointOutcome` per point, in point order. Per-scenario
        failures come back as structured error payloads; only a scheduler
        shutdown or an exhausted shed-retry mid-sweep surfaces as error
        payloads with source ``"failed"``. The call itself does not raise
        for bad scenarios.
    """
    if points is None:
        points = portfolio.expand(max_points=max_points)
    if retry is None:
        retry = SWEEP_RETRY
    if max_concurrency is None:
        max_concurrency = scheduler.max_queue
    gate = (asyncio.Semaphore(max_concurrency)
            if max_concurrency is not None else None)
    unique: Dict[str, List[PortfolioPoint]] = {}
    for point in points:
        unique.setdefault(point.cache_key(), []).append(point)
    total = len(unique)
    completed = 0

    async def _submit(scenario) -> tuple:
        attempt = 0
        while True:
            try:
                return await scheduler.submit_traced(scenario)
            except PlanRequestError as error:
                # Shed points back off and re-enter; everything else
                # (shutdown, deadline) is final for this point.
                attempt += 1
                if (error.kind != "overloaded"
                        or attempt >= retry.max_attempts):
                    return error.payload, "failed"
                await asyncio.sleep(retry.delay(attempt))

    async def _serve(key: str) -> Dict[str, object]:
        nonlocal completed
        first = unique[key][0]
        start = time.perf_counter()
        with span("sweep.point", cache_key=key, fanout=len(unique[key])):
            if gate is not None:
                async with gate:
                    payload, source = await _submit(first.scenario)
            else:
                payload, source = await _submit(first.scenario)
        wall = time.perf_counter() - start
        outcome = PointOutcome(
            index=first.index, params=first.params, payload=payload,
            source=source, wall_seconds=wall, key=key)
        completed += 1
        if on_unique is not None:
            on_unique(completed, total, outcome)
        return {"payload": payload, "source": source, "wall": wall}

    served = dict(zip(unique, await asyncio.gather(
        *(_serve(key) for key in unique))))

    outcomes: List[PointOutcome] = []
    seen_keys: set = set()
    for point in points:
        key = point.cache_key()
        result = served[key]
        duplicate = key in seen_keys
        seen_keys.add(key)
        outcomes.append(PointOutcome(
            index=point.index,
            params=point.params,
            payload=copy.deepcopy(result["payload"]),
            source="duplicate" if duplicate else result["source"],
            # A duplicate point cost nothing: its evaluation's wall time is
            # accounted to the first point sharing the key, so manifest
            # cell timings stay comparable to the orchestrator's.
            wall_seconds=0.0 if duplicate else result["wall"],
            key=key,
        ))
    return outcomes


def run_portfolio_local(
    portfolio: Portfolio,
    jobs: int = 1,
    store=None,
    batch_window: float = 0.005,
    max_batch: int = 16,
    points: Optional[List[PortfolioPoint]] = None,
    on_unique: Optional[Callable[[int, int, PointOutcome], None]] = None,
    max_points: Optional[int] = MAX_POINTS,
    batched: Optional[bool] = None,
) -> List[PointOutcome]:
    """Sweep ``portfolio`` on a private scheduler (the offline CLI path).

    ``jobs``/``store``/``batch_window``/``max_batch`` configure the
    short-lived :class:`PlanScheduler` exactly like ``repro serve`` would;
    ``points`` skips re-expansion when the caller already holds them.

    ``batched`` selects the in-process
    :class:`~repro.costmodel.portfolio.BatchedPlanService`, which shares
    route tables, simulation reports, and solver cost tables across the
    portfolio's points (bit-identical results, substantially faster on
    overlapping sweeps like fig13). It defaults to on for ``jobs == 1`` —
    the scheduler only accepts an injected service in-process — and off
    otherwise; requesting ``batched=True`` with ``jobs > 1`` raises.
    """
    if points is None:
        points = portfolio.expand(max_points=max_points)
    if batched is None:
        batched = jobs == 1
    if batched and jobs != 1:
        raise ValueError("batched sweeps run in-process; use jobs=1")
    service = None
    if batched:
        from repro.costmodel.portfolio import BatchedPlanService

        service = BatchedPlanService()

    async def _run() -> List[PointOutcome]:
        async with PlanScheduler(store=store, jobs=jobs,
                                 batch_window=batch_window,
                                 max_batch=max_batch,
                                 service=service) as scheduler:
            return await sweep_portfolio(
                scheduler, portfolio, points=points, on_unique=on_unique,
                max_points=max_points)

    return asyncio.run(_run())


# Manifest building ---------------------------------------------------------------


def default_row(params: Mapping[str, object],
                payload: Mapping[str, object]) -> Dict[str, object]:
    """Ad-hoc row mapper: the whole result payload (minus param collisions).

    Used when a portfolio mirrors no registered figure: the row is the
    point's params merged with every :class:`PlanResult` field.
    """
    return {key: value for key, value in payload.items()
            if key not in params}


def _default_schema(portfolio: Portfolio) -> List[str]:
    """Row columns of an ad-hoc sweep manifest (params + PlanResult)."""
    from repro.api.service import PlanResult

    param_names = [axis.name for axis in portfolio.axes if axis.record]
    return param_names + [
        result_field.name for result_field in fields(PlanResult)
        if result_field.name not in param_names]


def build_sweep_manifest(
    portfolio: Portfolio,
    outcomes: List[PointOutcome],
    reduced: bool = False,
    jobs: int = 1,
    total_seconds: float = 0.0,
    mode: str = "local",
    experiment=None,
    row_builder: Optional[Callable[[Mapping, Mapping],
                                   Dict[str, object]]] = None,
) -> Dict[str, object]:
    """The sweep's ``results/<figure>.json`` manifest document.

    For a registered portfolio (``experiment`` given), the manifest borrows
    the figure's identity and schema and its rows are pinned row-identical
    to ``repro run <figure>``; otherwise the identity is the portfolio's own
    and the schema is params + the :class:`PlanResult` fields.

    Error payloads become failed cells (``error`` set, no row) — the same
    accounting :mod:`repro.runner.orchestrator` gives a raising cell, so
    :func:`repro.runner.manifest.validate_manifest` surfaces them.
    """
    from repro.runner.manifest import MANIFEST_VERSION, finite

    if row_builder is None:
        row_builder = default_row
    cells: List[Dict[str, object]] = []
    rows: List[Dict[str, object]] = []
    source_counts: Dict[str, int] = {}
    for outcome in outcomes:
        source_counts[outcome.source] = \
            source_counts.get(outcome.source, 0) + 1
        error = None
        cell_rows: List[Dict[str, object]] = []
        if "error" in outcome.payload:
            error = str(outcome.payload["error"].get("message",
                                                     outcome.payload["error"]))
        else:
            cell_rows.append(finite({**outcome.params,
                                     **row_builder(outcome.params,
                                                   outcome.payload)}))
        cells.append({
            "params": dict(outcome.params),
            "wall_seconds": round(outcome.wall_seconds, 6),
            "num_rows": len(cell_rows),
            "oom_rows": sum(1 for row in cell_rows if row.get("oom")),
            "error": error,
        })
        rows.extend(cell_rows)

    if experiment is not None:
        identity = {
            "figure": experiment.figure,
            "paper": experiment.paper,
            "title": experiment.title,
            "module": experiment.module,
        }
        schema = list(experiment.schema)
    else:
        identity = {
            "figure": portfolio.name,
            "paper": "portfolio",
            "title": portfolio.description or portfolio.describe(),
            "module": "repro.api.portfolio",
        }
        schema = _default_schema(portfolio)

    cell_seconds = [cell["wall_seconds"] for cell in cells]
    return {
        "version": MANIFEST_VERSION,
        "repro_version": __version__,
        **identity,
        "reduced": reduced,
        "jobs": jobs,
        "grid": [dict(outcome.params) for outcome in outcomes],
        "schema": schema,
        "cells": cells,
        "rows": rows,
        "timings": {
            "total_seconds": round(total_seconds, 6),
            "max_cell_seconds": (round(max(cell_seconds), 6)
                                 if cell_seconds else 0.0),
            "mean_cell_seconds": (
                round(sum(cell_seconds) / len(cell_seconds), 6)
                if cell_seconds else 0.0),
        },
        "sweep": {
            "portfolio": portfolio.name,
            "expansion": portfolio.expansion,
            "mode": mode,
            "points": len(outcomes),
            "unique": len({outcome.key for outcome in outcomes}),
            "sources": source_counts,
        },
    }


# HTTP job management -------------------------------------------------------------


class PortfolioJob:
    """One polled portfolio sweep running on the server."""

    def __init__(self, job_id: str, portfolio: Portfolio,
                 points: List[PortfolioPoint]) -> None:
        self.id = job_id
        self.portfolio = portfolio
        self.points = points
        self.unique = len({point.cache_key() for point in points})
        self.completed = 0
        self.status = "running"
        self.error: Optional[str] = None
        self.outcomes: Optional[List[PointOutcome]] = None
        self.started = time.perf_counter()
        self.elapsed_seconds = 0.0
        self.task: Optional[asyncio.Task] = None

    def on_unique(self, completed: int, total: int,
                  outcome: PointOutcome) -> None:
        self.completed = completed

    def finish(self, outcomes: List[PointOutcome]) -> None:
        self.outcomes = outcomes
        self.status = "done"
        self.elapsed_seconds = time.perf_counter() - self.started

    def fail(self, message: str) -> None:
        self.error = message
        self.status = "failed"
        self.elapsed_seconds = time.perf_counter() - self.started

    def summary(self) -> Dict[str, object]:
        """The progress document (one poll's worth of state)."""
        elapsed = (self.elapsed_seconds if self.status != "running"
                   else time.perf_counter() - self.started)
        document: Dict[str, object] = {
            "job": self.id,
            "portfolio": self.portfolio.name,
            "status": self.status,
            "points": len(self.points),
            "unique": self.unique,
            "completed": self.completed,
            "elapsed_seconds": round(elapsed, 6),
        }
        if self.error is not None:
            document["error"] = self.error
        return document

    def status_document(self) -> Dict[str, object]:
        """The full poll response (results attached once done)."""
        document = self.summary()
        if self.outcomes is not None:
            document["params"] = [dict(outcome.params)
                                  for outcome in self.outcomes]
            document["results"] = [copy.deepcopy(outcome.payload)
                                   for outcome in self.outcomes]
            document["sources"] = [outcome.source
                                   for outcome in self.outcomes]
            document["wall_seconds"] = [round(outcome.wall_seconds, 6)
                                        for outcome in self.outcomes]
            document["errors"] = sum(1 for outcome in self.outcomes
                                     if "error" in outcome.payload)
        return document


class PortfolioManager:
    """The ``/v1/portfolio`` job table of one :class:`PlanServer`.

    Jobs run as asyncio tasks over the server's shared scheduler; finished
    jobs stay pollable until :data:`MAX_FINISHED_JOBS` newer ones evict
    them. ``close()`` waits for running sweeps (their requests are already
    in the scheduler, which drains on close anyway).
    """

    def __init__(self, scheduler: PlanScheduler,
                 max_points: int = MAX_POINTS,
                 max_finished_jobs: int = MAX_FINISHED_JOBS) -> None:
        self.scheduler = scheduler
        self.max_points = max_points
        self.max_finished_jobs = max_finished_jobs
        self._jobs: Dict[str, PortfolioJob] = {}
        self._next_id = 1

    def start_job(self, document: object) -> Dict[str, object]:
        """Parse, expand, and launch one portfolio sweep.

        Raises:
            PlanRequestError: on a malformed document or an over-cap
                expansion (structured 400 payload, never a traceback).
        """
        try:
            portfolio = Portfolio.from_dict(document)
            points = portfolio.expand(max_points=self.max_points)
        except PortfolioError as error:
            raise PlanRequestError(str(error),
                                   kind="PortfolioError") from None
        job_id = f"sweep-{self._next_id}"
        self._next_id += 1
        job = PortfolioJob(job_id, portfolio, points)
        self._jobs[job_id] = job
        job.task = asyncio.create_task(self._run(job))
        self._evict_finished()
        return job.summary()

    async def _run(self, job: PortfolioJob) -> None:
        try:
            outcomes = await sweep_portfolio(
                self.scheduler, job.portfolio, points=job.points,
                on_unique=job.on_unique, max_points=None)
            job.finish(outcomes)
        except Exception as error:  # defensive: a bug must not hang pollers
            job.fail(f"{type(error).__name__}: {error}")

    def get(self, job_id: str) -> Dict[str, object]:
        """The poll response of one job.

        Raises:
            PlanRequestError: (404) for an unknown or evicted job id.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise PlanRequestError(f"no portfolio job {job_id!r}",
                                   kind="not_found", status=404)
        return job.status_document()

    def jobs(self) -> Dict[str, object]:
        """Summaries of every known job (the ``GET /v1/portfolio`` body)."""
        return {"jobs": [job.summary() for job in self._jobs.values()]}

    def stats(self) -> Dict[str, object]:
        """Counter snapshot folded into ``GET /metrics``."""
        by_status: Dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {"jobs": len(self._jobs), **by_status}

    def _evict_finished(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.status != "running"]
        excess = len(finished) - self.max_finished_jobs
        for job_id in finished[:max(excess, 0)]:
            del self._jobs[job_id]

    async def close(self) -> None:
        """Wait for every running sweep to settle (idempotent)."""
        tasks = [job.task for job in self._jobs.values()
                 if job.task is not None and not job.task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
