"""Fault injection for the fault-tolerance study (Fig. 20).

The paper sweeps two fault axes:

* **link faults** — a fraction of D2D links become unusable; throughput shows
  a cliff around a 35% link-fault rate because the mesh loses the contiguous
  rings TATP depends on,
* **core faults** — a fraction of compute cores inside dies fail; throughput
  degrades gracefully because TATP re-balances tensor partitions to match the
  per-die compute that remains.

:class:`FaultModel` captures both as deterministic, seedable samples so the
experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Set, Tuple


class FaultType(Enum):
    """Kind of hardware fault injected into the wafer."""

    LINK = "link"
    CORE = "core"
    DIE = "die"


@dataclass
class FaultModel:
    """A concrete set of injected faults.

    Attributes:
        failed_links: directed (src, dst) die pairs whose D2D link is dead.
            Both directions should normally be listed (use
            :meth:`FaultModel.sample_link_faults` to build them symmetrically).
        core_faults: fraction of failed compute cores per die id, in [0, 1].
        dead_dies: dies that are removed from the mapping entirely.
        degraded_links: per-link bandwidth derating fractions in [0, 1].
    """

    failed_links: Set[Tuple[int, int]] = field(default_factory=set)
    core_faults: Dict[int, float] = field(default_factory=dict)
    dead_dies: Set[int] = field(default_factory=set)
    degraded_links: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def core_fault_fraction(self, die_id: int) -> float:
        """Fraction of cores lost on ``die_id`` (0.0 when healthy)."""
        return min(max(self.core_faults.get(die_id, 0.0), 0.0), 1.0)

    def link_fault_fraction(self, link: Tuple[int, int]) -> float:
        """Bandwidth derating fraction for a directed link (0.0 when healthy)."""
        if link in self.failed_links:
            return 1.0
        return min(max(self.degraded_links.get(link, 0.0), 0.0), 1.0)

    @property
    def has_faults(self) -> bool:
        """Whether this model injects any fault at all."""
        return bool(
            self.failed_links or self.core_faults or self.dead_dies
            or self.degraded_links
        )

    # Samplers -------------------------------------------------------------------

    @classmethod
    def sample_link_faults(
        cls,
        rows: int,
        cols: int,
        fault_rate: float,
        seed: int = 0,
    ) -> "FaultModel":
        """Sample a link-fault model where ``fault_rate`` of links are dead.

        Links are sampled as undirected pairs and both directions fail
        together, matching how a physical D2D lane failure behaves.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        rng = random.Random(seed)
        undirected = _enumerate_undirected_links(rows, cols)
        num_failed = int(round(fault_rate * len(undirected)))
        failed_pairs = rng.sample(undirected, num_failed) if num_failed else []
        failed: Set[Tuple[int, int]] = set()
        for a, b in failed_pairs:
            failed.add((a, b))
            failed.add((b, a))
        return cls(failed_links=failed)

    @classmethod
    def sample_core_faults(
        cls,
        num_dies: int,
        fault_rate: float,
        seed: int = 0,
        spread: float = 0.5,
    ) -> "FaultModel":
        """Sample a core-fault model with mean per-die fault rate ``fault_rate``.

        Each die draws its own fraction around the mean so the re-balancing
        logic has something non-uniform to adapt to.

        Args:
            num_dies: number of dies on the wafer.
            fault_rate: average fraction of cores lost per die.
            seed: RNG seed for reproducibility.
            spread: relative spread of the per-die fraction around the mean.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        rng = random.Random(seed)
        core_faults: Dict[int, float] = {}
        for die in range(num_dies):
            if fault_rate == 0.0:
                continue
            low = fault_rate * (1.0 - spread)
            high = min(1.0, fault_rate * (1.0 + spread))
            core_faults[die] = rng.uniform(low, high)
        return cls(core_faults=core_faults)

    @classmethod
    def sample_die_faults(
        cls, num_dies: int, fault_rate: float, seed: int = 0
    ) -> "FaultModel":
        """Sample a model where whole dies are removed from the wafer."""
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        rng = random.Random(seed)
        num_dead = int(round(fault_rate * num_dies))
        dead = set(rng.sample(range(num_dies), num_dead)) if num_dead else set()
        return cls(dead_dies=dead)

    def merged_with(self, other: "FaultModel") -> "FaultModel":
        """Combine two fault models (union of faults, max of fractions)."""
        core_faults = dict(self.core_faults)
        for die, fraction in other.core_faults.items():
            core_faults[die] = max(core_faults.get(die, 0.0), fraction)
        degraded = dict(self.degraded_links)
        for link, fraction in other.degraded_links.items():
            degraded[link] = max(degraded.get(link, 0.0), fraction)
        return FaultModel(
            failed_links=set(self.failed_links) | set(other.failed_links),
            core_faults=core_faults,
            dead_dies=set(self.dead_dies) | set(other.dead_dies),
            degraded_links=degraded,
        )


def _enumerate_undirected_links(rows: int, cols: int) -> List[Tuple[int, int]]:
    """All undirected nearest-neighbour links of a rows x cols mesh."""
    links: List[Tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols):
            src = row * cols + col
            if col + 1 < cols:
                links.append((src, src + 1))
            if row + 1 < rows:
                links.append((src, src + cols))
    return links


def classify_faults(model: FaultModel) -> Dict[FaultType, int]:
    """Step 1 of the paper's fault-tolerance flow: localize and classify.

    Returns a count of faults per :class:`FaultType`, which the framework uses
    to decide whether to re-balance partitions (core faults), re-route
    communication (link faults), or shrink the mapping (die faults).
    """
    return {
        FaultType.LINK: len({tuple(sorted(link)) for link in model.failed_links}),
        FaultType.CORE: sum(1 for f in model.core_faults.values() if f > 0.0),
        FaultType.DIE: len(model.dead_dies),
    }
