"""Hardware models for wafer-scale chips (WSCs) and comparator systems.

This subpackage models the physical substrate the TEMP framework targets:

* :mod:`repro.hardware.config` — dataclasses mirroring Table I of the paper
  (die area, SRAM/HBM capacity, D2D bandwidth/latency/energy, compute power).
* :mod:`repro.hardware.topologies` — the topology zoo: registered
  interconnect fabric families (the paper's 2D mesh by default, plus torus,
  stacked 3D mesh, hierarchical chiplet, express-channel mesh) sharing one
  ``Topology`` protocol for links, routing, and ring enumeration
  (:mod:`repro.hardware.topology` remains as a deprecated import shim).
* :mod:`repro.hardware.wafer` — the :class:`WaferScaleChip` system object that
  ties a configuration to a topology and exposes per-die resources.
* :mod:`repro.hardware.multiwafer` — multi-wafer systems connected by
  inter-wafer links (used by the Fig. 19 scalability study).
* :mod:`repro.hardware.gpu_cluster` — a switch-based GPU cluster comparator
  (A100-class) used by the Fig. 15 comparison.
* :mod:`repro.hardware.faults` — link/core fault injection used by the
  fault-tolerance study (Fig. 20).
"""

from repro.hardware.config import (
    ComputeDieConfig,
    GPUClusterConfig,
    GPUDeviceConfig,
    HBMConfig,
    LinkConfig,
    WaferConfig,
    default_wafer_config,
)
from repro.hardware.topologies import (
    Link,
    MeshTopology,
    Topology,
    build_topology,
    die_coord,
    die_id,
    topology_names,
)
from repro.hardware.wafer import Die, WaferScaleChip
from repro.hardware.multiwafer import MultiWaferSystem
from repro.hardware.gpu_cluster import GPUCluster
from repro.hardware.faults import FaultModel, FaultType

__all__ = [
    "ComputeDieConfig",
    "GPUClusterConfig",
    "GPUDeviceConfig",
    "HBMConfig",
    "LinkConfig",
    "WaferConfig",
    "default_wafer_config",
    "Link",
    "MeshTopology",
    "Topology",
    "build_topology",
    "topology_names",
    "die_id",
    "die_coord",
    "Die",
    "WaferScaleChip",
    "MultiWaferSystem",
    "GPUCluster",
    "FaultModel",
    "FaultType",
]
