"""Switch-based GPU cluster comparator (Fig. 15).

The paper compares a 32-die WSC against a 4-node x 8-GPU A100 cluster whose
aggregate FP16 peak matches the wafer. The key architectural difference is the
interconnect: GPUs inside a node talk over NVLink/NVSwitch (all-to-all, so any
logical ring is physically realisable with uniform latency), while traffic
between nodes crosses a slower InfiniBand fabric.

The cluster model exposes the same latency primitives as the wafer (per-pair
transfer time, collective time estimates) so the simulator can evaluate a
Megatron-style strategy on either substrate.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.config import GPUClusterConfig


class GPUCluster:
    """A multi-node GPU cluster with switch-based intra-node interconnect."""

    def __init__(self, config: Optional[GPUClusterConfig] = None) -> None:
        self.config = config or GPUClusterConfig()

    @property
    def num_devices(self) -> int:
        """Total number of GPUs."""
        return self.config.num_devices

    def node_of(self, device: int) -> int:
        """Node index hosting ``device``."""
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range")
        return device // self.config.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        """Whether two devices share a node (and hence NVLink)."""
        return self.node_of(a) == self.node_of(b)

    def pair_bandwidth(self, a: int, b: int) -> float:
        """Point-to-point bandwidth between two devices, in bytes/s."""
        if a == b:
            return self.config.device.memory_bandwidth
        if self.same_node(a, b):
            return self.config.device.nvlink_bandwidth
        return self.config.internode_bandwidth

    def pair_latency(self, a: int, b: int) -> float:
        """Point-to-point latency between two devices, in seconds."""
        if a == b:
            return 0.0
        if self.same_node(a, b):
            return self.config.device.nvlink_latency
        return self.config.internode_latency

    def transfer_time(self, a: int, b: int, num_bytes: float) -> float:
        """Time to move ``num_bytes`` from device ``a`` to device ``b``."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        if a == b:
            return 0.0
        return self.pair_latency(a, b) + num_bytes / self.pair_bandwidth(a, b)

    # Collective estimates --------------------------------------------------------

    def ring_allreduce_time(self, group_size: int, num_bytes: float) -> float:
        """Bandwidth-optimal ring all-reduce over ``group_size`` devices.

        GPU clusters can always form a logical ring thanks to the switch, so
        the classic 2(p-1)/p volume formula applies; the ring is assumed to be
        arranged to keep as many hops as possible inside nodes.
        """
        if group_size <= 1:
            return 0.0
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        per_node = self.config.gpus_per_node
        crossings = max(1, group_size // per_node) if group_size > per_node else 0
        bottleneck = (
            self.config.internode_bandwidth if crossings
            else self.config.device.nvlink_bandwidth
        )
        latency = (
            self.config.internode_latency if crossings
            else self.config.device.nvlink_latency
        )
        steps = 2 * (group_size - 1)
        volume = 2.0 * (group_size - 1) / group_size * num_bytes
        return steps * latency + volume / bottleneck

    def allgather_time(self, group_size: int, num_bytes_per_rank: float) -> float:
        """Ring all-gather over ``group_size`` devices."""
        if group_size <= 1:
            return 0.0
        per_node = self.config.gpus_per_node
        crosses_nodes = group_size > per_node
        bottleneck = (
            self.config.internode_bandwidth if crosses_nodes
            else self.config.device.nvlink_bandwidth
        )
        latency = (
            self.config.internode_latency if crosses_nodes
            else self.config.device.nvlink_latency
        )
        steps = group_size - 1
        volume = (group_size - 1) * num_bytes_per_rank
        return steps * latency + volume / bottleneck

    def reduce_scatter_time(self, group_size: int, num_bytes: float) -> float:
        """Ring reduce-scatter over ``group_size`` devices."""
        if group_size <= 1:
            return 0.0
        return self.allgather_time(group_size, num_bytes / max(group_size, 1))

    def p2p_time(self, num_bytes: float, cross_node: bool = False) -> float:
        """Point-to-point transfer time for pipeline-style traffic."""
        bandwidth = (
            self.config.internode_bandwidth if cross_node
            else self.config.device.nvlink_bandwidth
        )
        latency = (
            self.config.internode_latency if cross_node
            else self.config.device.nvlink_latency
        )
        return latency + num_bytes / bandwidth

    def describe(self) -> dict:
        """Summary of the headline cluster parameters."""
        return {
            "devices": self.num_devices,
            "peak_pflops": self.config.total_peak_flops / 1e15,
            "nvlink_gbps": self.config.device.nvlink_bandwidth / (1024 ** 3),
            "internode_gbps": self.config.internode_bandwidth / (1024 ** 3),
        }
