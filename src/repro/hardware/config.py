"""Hardware configuration dataclasses.

The numbers mirror Table I of the paper ("Wafer Scale Chip Configuration
Parameters") and the die/wafer geometry of Fig. 3:

* a wafer integrates a 4x8 (evaluation) or 6x8 (Fig. 3) array of compute dies,
* each logic die occupies ~500 mm^2, holds 80 MB of SRAM, runs at 2 GHz, and
  delivers 1800 TFLOPS at 2 TFLOPS/W,
* each die attaches HBM stacks totalling 72 GB at 1 TB/s, 100 ns, 6.0 pJ/bit,
* die-to-die (D2D) links provide 4 TB/s at 200 ns and 5.0 pJ/bit and are only
  available between physically adjacent dies (2D mesh).

All bandwidth values are stored in **bytes per second**, latencies in
**seconds**, energies in **joules per byte**, and capacities in **bytes**, so
that the simulation layer never has to guess units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

# Unit helpers ---------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

GHZ = 1.0e9
NS = 1.0e-9
US = 1.0e-6
MS = 1.0e-3

TFLOPS = 1.0e12
PJ = 1.0e-12

#: Bits per byte, used when converting pJ/bit energy figures to J/byte.
BITS_PER_BYTE = 8


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of a die-to-die (D2D) interconnect link.

    Table I quotes 4 TB/s of D2D interconnect per die; a die on the mesh has
    up to four neighbours, so each directed neighbour link sustains 1 TB/s.
    ``bandwidth`` here is the **per-direction, per-neighbour** figure the
    routing and contention models consume; ``per_die_bandwidth`` recovers the
    Table I aggregate.

    Attributes:
        bandwidth: sustained bandwidth of one directed neighbour link in
            bytes/second.
        latency: fixed per-transfer latency in seconds (serialization excluded).
        energy_per_byte: energy cost in joules per byte transferred.
        max_reach_mm: maximum physical reach before signal-integrity limits
            force forward error correction; the paper cites 50 mm.
        fec_latency: extra latency in seconds when a link exceeds
            ``max_reach_mm`` and needs FEC (the paper cites 210 ns).
        links_per_die: neighbour links contributing to the per-die aggregate.
    """

    bandwidth: float = 1 * TB
    latency: float = 200 * NS
    energy_per_byte: float = 5.0 * PJ * BITS_PER_BYTE
    max_reach_mm: float = 50.0
    fec_latency: float = 210 * NS
    links_per_die: int = 4

    @property
    def per_die_bandwidth(self) -> float:
        """Aggregate D2D bandwidth per die (the 4 TB/s of Table I)."""
        return self.bandwidth * self.links_per_die

    def transfer_time(self, num_bytes: float) -> float:
        """Latency plus serialization time for ``num_bytes`` on this link."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.latency + num_bytes / self.bandwidth


@dataclass(frozen=True)
class HBMConfig:
    """Configuration of the HBM stack(s) attached to one compute die."""

    capacity: float = 72 * GB
    bandwidth: float = 1 * TB
    latency: float = 100 * NS
    energy_per_byte: float = 6.0 * PJ * BITS_PER_BYTE
    die_area_mm2: float = 210.0

    def access_time(self, num_bytes: float) -> float:
        """Latency plus streaming time for ``num_bytes`` of HBM traffic."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.latency + num_bytes / self.bandwidth


@dataclass(frozen=True)
class ComputeDieConfig:
    """Configuration of one logic (compute) die on the wafer."""

    area_mm2: float = 500.0
    width_mm: float = 33.25
    height_mm: float = 24.99
    sram_capacity: float = 80 * MB
    frequency: float = 2.0 * GHZ
    peak_flops: float = 1800 * TFLOPS
    flops_per_watt: float = 2 * TFLOPS
    core_array: tuple = (8, 8)
    hbm: HBMConfig = field(default_factory=HBMConfig)

    @property
    def num_cores(self) -> int:
        """Number of compute cores on the die (8x8 array in Fig. 3)."""
        return self.core_array[0] * self.core_array[1]

    @property
    def peak_power(self) -> float:
        """Peak compute power draw in watts."""
        return self.peak_flops / self.flops_per_watt

    def effective_flops(self, utilization: float = 1.0) -> float:
        """Peak FLOPS scaled by a utilization factor in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return self.peak_flops * utilization


@dataclass(frozen=True)
class WaferConfig:
    """Top-level configuration of a wafer-scale chip.

    The evaluation section of the paper uses a 4x8 array of dies; Fig. 3 shows
    a 6x8 array on a 215 mm x 215 mm wafer. Both are expressible here.
    """

    rows: int = 4
    cols: int = 8
    die: ComputeDieConfig = field(default_factory=ComputeDieConfig)
    d2d: LinkConfig = field(default_factory=LinkConfig)
    wafer_side_mm: float = 215.0
    io_bandwidth: float = 4 * TB
    inter_wafer_bandwidth: float = 9 * TB
    inter_wafer_latency: float = 1 * US

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(
                f"Wafer die grid must be positive, got {self.rows}x{self.cols}"
            )

    @property
    def num_dies(self) -> int:
        """Total number of compute dies on the wafer."""
        return self.rows * self.cols

    @property
    def total_hbm_capacity(self) -> float:
        """Aggregate HBM capacity across all dies, in bytes."""
        return self.num_dies * self.die.hbm.capacity

    @property
    def total_peak_flops(self) -> float:
        """Aggregate peak compute throughput across all dies."""
        return self.num_dies * self.die.peak_flops

    @property
    def total_sram_capacity(self) -> float:
        """Aggregate SRAM capacity across all dies, in bytes."""
        return self.num_dies * self.die.sram_capacity

    def with_grid(self, rows: int, cols: int) -> "WaferConfig":
        """Return a copy of this configuration with a different die grid."""
        return replace(self, rows=rows, cols=cols)


@dataclass(frozen=True)
class GPUDeviceConfig:
    """Configuration of one GPU in the comparator cluster (A100-class)."""

    peak_flops: float = 312 * TFLOPS
    memory_capacity: float = 80 * GB
    memory_bandwidth: float = 2.0 * TB
    nvlink_bandwidth: float = 600 * GB
    nvlink_latency: float = 2 * US
    power_watts: float = 400.0
    energy_per_byte_link: float = 20.0 * PJ * BITS_PER_BYTE


@dataclass(frozen=True)
class GPUClusterConfig:
    """Configuration of a multi-node GPU cluster (Fig. 15 comparator).

    The paper configures 4 nodes x 8 A100 GPUs so that the aggregate FP16 peak
    matches a 32-die WSC; intra-node traffic uses NVLink/NVSwitch and
    inter-node traffic uses InfiniBand.
    """

    num_nodes: int = 4
    gpus_per_node: int = 8
    device: GPUDeviceConfig = field(default_factory=GPUDeviceConfig)
    internode_bandwidth: float = 200 * GB
    internode_latency: float = 5 * US

    @property
    def num_devices(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.num_nodes * self.gpus_per_node

    @property
    def total_peak_flops(self) -> float:
        """Aggregate peak FLOPS of the cluster."""
        return self.num_devices * self.device.peak_flops


def default_wafer_config(
    rows: int = 4,
    cols: int = 8,
    d2d_bandwidth: Optional[float] = None,
    hbm_capacity: Optional[float] = None,
) -> WaferConfig:
    """Build the evaluation wafer configuration of the paper (Table I).

    Args:
        rows: number of die rows (the paper evaluates a 4x8 wafer).
        cols: number of die columns.
        d2d_bandwidth: optional override of the D2D bandwidth in bytes/s.
        hbm_capacity: optional override of the per-die HBM capacity in bytes.

    Returns:
        A fully-populated :class:`WaferConfig`.
    """
    d2d = LinkConfig()
    if d2d_bandwidth is not None:
        d2d = replace(d2d, bandwidth=d2d_bandwidth)
    die = ComputeDieConfig()
    if hbm_capacity is not None:
        die = replace(die, hbm=replace(die.hbm, capacity=hbm_capacity))
    return WaferConfig(rows=rows, cols=cols, die=die, d2d=d2d)
