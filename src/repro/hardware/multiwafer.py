"""Multi-wafer systems for the scalability study (Fig. 19).

The paper scales GPT-3 175B onto 2 wafers, Grok-1 341B and Llama3 405B onto 4
wafers, and a 504B GPT-3 variant onto 6 wafers. Wafers are connected by ample
inter-wafer links (~9 TB/s per the Dojo-style numbers cited in the paper) and
pipeline parallelism is used across wafers while intra-wafer parallelism uses
the strategies explored by the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hardware.config import WaferConfig, default_wafer_config
from repro.hardware.wafer import WaferScaleChip


@dataclass(frozen=True)
class InterWaferLink:
    """A link between two adjacent wafers in the multi-wafer chain."""

    src_wafer: int
    dst_wafer: int
    bandwidth: float
    latency: float

    def transfer_time(self, num_bytes: float) -> float:
        """Latency plus serialization for an inter-wafer transfer."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.latency + num_bytes / self.bandwidth


class MultiWaferSystem:
    """A chain of identical wafers connected by inter-wafer links.

    Pipeline stages are laid out along the chain: stage *i* occupies wafer
    ``i * num_wafers / pp_degree`` onwards. Activation transfers between
    consecutive pipeline stages that live on different wafers pay the
    inter-wafer link cost; stages on the same wafer use regular D2D paths.

    Args:
        num_wafers: number of wafers in the system.
        wafer_config: configuration shared by every wafer.
    """

    def __init__(
        self,
        num_wafers: int,
        wafer_config: Optional[WaferConfig] = None,
    ) -> None:
        if num_wafers <= 0:
            raise ValueError(f"num_wafers must be positive, got {num_wafers}")
        self.num_wafers = num_wafers
        self.wafer_config = wafer_config or default_wafer_config()
        self.wafers: List[WaferScaleChip] = [
            WaferScaleChip(self.wafer_config) for _ in range(num_wafers)
        ]
        self.links: List[InterWaferLink] = [
            InterWaferLink(
                src_wafer=index,
                dst_wafer=index + 1,
                bandwidth=self.wafer_config.inter_wafer_bandwidth,
                latency=self.wafer_config.inter_wafer_latency,
            )
            for index in range(num_wafers - 1)
        ]

    @property
    def total_dies(self) -> int:
        """Total number of dies across all wafers."""
        return sum(wafer.config.num_dies for wafer in self.wafers)

    @property
    def total_peak_flops(self) -> float:
        """Aggregate peak FLOPS of the whole system."""
        return sum(wafer.aggregate_peak_flops() for wafer in self.wafers)

    @property
    def total_hbm_capacity(self) -> float:
        """Aggregate HBM capacity of the whole system, in bytes."""
        return sum(wafer.aggregate_hbm_capacity() for wafer in self.wafers)

    def wafer_of_stage(self, stage: int, pp_degree: int) -> int:
        """Which wafer hosts pipeline stage ``stage`` of ``pp_degree`` stages.

        Stages are distributed as evenly as possible along the wafer chain.
        """
        if pp_degree <= 0:
            raise ValueError(f"pp_degree must be positive, got {pp_degree}")
        if not 0 <= stage < pp_degree:
            raise ValueError(f"stage {stage} out of range for pp_degree {pp_degree}")
        if pp_degree >= self.num_wafers:
            stages_per_wafer = pp_degree / self.num_wafers
            return min(int(stage / stages_per_wafer), self.num_wafers - 1)
        wafers_per_stage = self.num_wafers / pp_degree
        return min(int(stage * wafers_per_stage), self.num_wafers - 1)

    def stage_boundary_crosses_wafer(self, stage: int, pp_degree: int) -> bool:
        """Whether the stage->stage+1 activation transfer crosses wafers."""
        if stage + 1 >= pp_degree:
            return False
        return self.wafer_of_stage(stage, pp_degree) != self.wafer_of_stage(
            stage + 1, pp_degree
        )

    def inter_stage_transfer_time(
        self, stage: int, pp_degree: int, num_bytes: float
    ) -> float:
        """Time to ship ``num_bytes`` from ``stage`` to ``stage + 1``.

        Uses the inter-wafer link when the stages live on different wafers,
        otherwise a single intra-wafer D2D hop.
        """
        if self.stage_boundary_crosses_wafer(stage, pp_degree):
            src = self.wafer_of_stage(stage, pp_degree)
            link = self.links[min(src, len(self.links) - 1)]
            return link.transfer_time(num_bytes)
        return self.wafer_config.d2d.transfer_time(num_bytes)

    def dies_per_stage(self, pp_degree: int) -> int:
        """Number of dies available to each pipeline stage."""
        if pp_degree <= 0:
            raise ValueError(f"pp_degree must be positive, got {pp_degree}")
        return max(1, self.total_dies // pp_degree)

    def describe(self) -> dict:
        """Summary of the headline system parameters."""
        return {
            "num_wafers": self.num_wafers,
            "total_dies": self.total_dies,
            "peak_pflops": self.total_peak_flops / 1e15,
            "hbm_capacity_tb": self.total_hbm_capacity / (1024 ** 4),
            "inter_wafer_bandwidth_tbps":
                self.wafer_config.inter_wafer_bandwidth / (1024 ** 4),
        }
