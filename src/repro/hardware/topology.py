"""Deprecated location of the die-fabric model.

.. deprecated::
    The topology model moved into the :mod:`repro.hardware.topologies`
    package (the "topology zoo"): :class:`MeshTopology` is now one
    registered fabric family among several, all sharing the
    :class:`~repro.hardware.topologies.base.Topology` base protocol
    (links, routing, hop costs, contiguous-ring enumeration,
    :class:`~repro.hardware.topologies.base.RouteTables` memoisation).

    This module remains as a thin import shim so existing code and
    pickles keep working — ``repro.hardware.topology.MeshTopology`` is
    the same class object as
    ``repro.hardware.topologies.mesh.MeshTopology``. New code should
    import from :mod:`repro.hardware.topologies` (or
    :mod:`repro.hardware`) instead.
"""

from __future__ import annotations

from repro.hardware.topologies import (  # noqa: F401
    Coord,
    Link,
    MeshTopology,
    RouteTables,
    Topology,
    die_coord,
    die_id,
)

__all__ = [
    "Coord",
    "Link",
    "MeshTopology",
    "RouteTables",
    "Topology",
    "die_coord",
    "die_id",
]
