"""2D-mesh die topology for wafer-scale chips.

The wafer arranges compute dies in a ``rows x cols`` grid. Physical D2D links
only exist between horizontally or vertically adjacent dies — the paper's
central physical constraint: signal integrity on the interposer precludes
long-distance or diagonal links, so any logical communication pattern must be
realised as sequences of one-hop transfers on this mesh.

The topology exposes:

* link enumeration and lookup (directed links, one per direction),
* XY dimension-ordered routing plus alternative (YX / detour) routing used by
  the traffic-conscious optimizer,
* hop-distance queries,
* contiguous-ring enumeration (which die groups can form a physical ring,
  i.e. a boustrophedon/rectangular cycle of adjacent dies), used by TATP's
  logical orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Coord = Tuple[int, int]


class RouteTables:
    """Memoised pure routing decisions of one :class:`MeshTopology`.

    A topology's health state is frozen at construction, so the expensive
    pure functions the mapping layer calls per task — ring/chain orderings
    of die groups, dimension-ordered route paths, ring hop factors — always
    return the same value for the same arguments on the same topology
    instance. The tables cache exactly those return values, so a cache hit
    is bit-identical to a recomputation by construction.

    The tables are opt-in (``MeshTopology.enable_route_tables``): the
    default evaluation path stays memo-free, which is what the
    batched-vs-per-point parity tests compare against. One batch layer
    (:class:`repro.costmodel.portfolio.PortfolioTables`) enables them on
    the wafer shared by a portfolio sweep, where the same groups and
    src/dst pairs recur across every candidate spec of every point.

    Attributes:
        hits: lookups served from the tables.
        misses: lookups that ran the underlying computation.
    """

    __slots__ = ("rings", "paths", "ring_hops", "hits", "misses")

    def __init__(self) -> None:
        self.rings: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], bool]] = {}
        self.paths: Dict[Tuple[int, int, bool], Tuple["Link", ...]] = {}
        self.ring_hops: Dict[Tuple[Tuple[int, ...], bool], int] = {}
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: ``hits``, ``misses``, ``entries``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.rings) + len(self.paths) + len(self.ring_hops),
        }


def die_id(row: int, col: int, cols: int) -> int:
    """Convert a (row, col) coordinate to a flat die id (row-major)."""
    return row * cols + col


def die_coord(die: int, cols: int) -> Coord:
    """Convert a flat die id back to its (row, col) coordinate."""
    return divmod(die, cols)


@dataclass(frozen=True)
class Link:
    """A directed D2D link between two adjacent dies.

    Attributes:
        src: source die id.
        dst: destination die id.
    """

    src: int
    dst: int

    def reversed(self) -> "Link":
        """Return the link in the opposite direction."""
        return Link(self.dst, self.src)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.src}->{self.dst})"


class MeshTopology:
    """A 2D mesh of dies with nearest-neighbour directed links.

    Args:
        rows: number of die rows.
        cols: number of die columns.
        failed_links: optional iterable of (src, dst) pairs to mark as failed;
            both directions are removed for each pair.
        failed_dies: optional iterable of die ids that are entirely faulty.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        failed_links: Optional[Iterable[Tuple[int, int]]] = None,
        failed_dies: Optional[Iterable[int]] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"Mesh dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._failed_dies = set(failed_dies or ())
        self._failed_links = set()
        for src, dst in failed_links or ():
            self._failed_links.add((src, dst))
            self._failed_links.add((dst, src))
        self._links = self._build_links()
        self._adjacency = self._build_adjacency()
        #: Optional routing memo (see :class:`RouteTables`); ``None`` keeps
        #: every routing call memo-free.
        self.route_tables: Optional[RouteTables] = None

    # Construction helpers ---------------------------------------------------

    def _build_links(self) -> Dict[Tuple[int, int], Link]:
        links: Dict[Tuple[int, int], Link] = {}
        for row in range(self.rows):
            for col in range(self.cols):
                src = die_id(row, col, self.cols)
                if src in self._failed_dies:
                    continue
                for drow, dcol in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                    nrow, ncol = row + drow, col + dcol
                    if not (0 <= nrow < self.rows and 0 <= ncol < self.cols):
                        continue
                    dst = die_id(nrow, ncol, self.cols)
                    if dst in self._failed_dies:
                        continue
                    if (src, dst) in self._failed_links:
                        continue
                    links[(src, dst)] = Link(src, dst)
        return links

    def _build_adjacency(self) -> Dict[int, List[int]]:
        adjacency: Dict[int, List[int]] = {die: [] for die in self.dies()}
        for src, dst in self._links:
            adjacency[src].append(dst)
        for neighbours in adjacency.values():
            neighbours.sort()
        return adjacency

    def enable_route_tables(self) -> RouteTables:
        """Attach (or return the existing) :class:`RouteTables` memo.

        Safe because the mesh's health state is immutable after
        construction; idempotent so several sharers converge on one memo.
        """
        if self.route_tables is None:
            self.route_tables = RouteTables()
        return self.route_tables

    # Basic queries ----------------------------------------------------------

    @property
    def num_dies(self) -> int:
        """Number of healthy dies on the mesh."""
        return self.rows * self.cols - len(self._failed_dies)

    def dies(self) -> List[int]:
        """Return the ids of all healthy dies, in row-major order."""
        return [
            die
            for die in range(self.rows * self.cols)
            if die not in self._failed_dies
        ]

    def is_healthy(self, die: int) -> bool:
        """Whether ``die`` exists on the mesh and is not marked faulty."""
        return 0 <= die < self.rows * self.cols and die not in self._failed_dies

    def coord(self, die: int) -> Coord:
        """Return the (row, col) coordinate of ``die``."""
        if not 0 <= die < self.rows * self.cols:
            raise ValueError(f"die {die} out of range for {self.rows}x{self.cols} mesh")
        return die_coord(die, self.cols)

    def die_at(self, row: int, col: int) -> int:
        """Return the die id at coordinate (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(
                f"coordinate ({row}, {col}) out of range for "
                f"{self.rows}x{self.cols} mesh"
            )
        return die_id(row, col, self.cols)

    def links(self) -> List[Link]:
        """Return all healthy directed links."""
        return list(self._links.values())

    def link(self, src: int, dst: int) -> Link:
        """Return the directed link from ``src`` to ``dst``.

        Raises:
            KeyError: if the dies are not adjacent or the link has failed.
        """
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no healthy link between die {src} and die {dst}") from None

    def has_link(self, src: int, dst: int) -> bool:
        """Whether a healthy directed link exists from ``src`` to ``dst``."""
        return (src, dst) in self._links

    def neighbours(self, die: int) -> List[int]:
        """Return the healthy dies directly reachable from ``die``."""
        return list(self._adjacency.get(die, ()))

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan hop distance between two dies on the full grid."""
        (r1, c1), (r2, c2) = self.coord(src), self.coord(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether dies ``a`` and ``b`` are physical neighbours."""
        return self.hop_distance(a, b) == 1

    # Routing ----------------------------------------------------------------

    def xy_route(self, src: int, dst: int) -> List[Link]:
        """Dimension-ordered route: move along columns (X) first, then rows (Y).

        Returns the list of directed links traversed; an empty list when
        ``src == dst``.
        """
        return self._dimension_ordered_route(src, dst, x_first=True)

    def yx_route(self, src: int, dst: int) -> List[Link]:
        """Dimension-ordered route moving along rows (Y) first, then columns."""
        return self._dimension_ordered_route(src, dst, x_first=False)

    def _dimension_ordered_route(
        self, src: int, dst: int, x_first: bool
    ) -> List[Link]:
        if not self.is_healthy(src) or not self.is_healthy(dst):
            raise ValueError(f"cannot route between unhealthy dies {src} and {dst}")
        path: List[Link] = []
        row, col = self.coord(src)
        drow, dcol = self.coord(dst)

        def step_col() -> None:
            nonlocal col
            while col != dcol:
                ncol = col + (1 if dcol > col else -1)
                path.append(self._require_link(
                    die_id(row, col, self.cols), die_id(row, ncol, self.cols)))
                col = ncol

        def step_row() -> None:
            nonlocal row
            while row != drow:
                nrow = row + (1 if drow > row else -1)
                path.append(self._require_link(
                    die_id(row, col, self.cols), die_id(nrow, col, self.cols)))
                row = nrow

        if x_first:
            step_col()
            step_row()
        else:
            step_row()
            step_col()
        return path

    def _require_link(self, src: int, dst: int) -> Link:
        if (src, dst) not in self._links:
            raise KeyError(
                f"route requires link {src}->{dst} which is missing or failed"
            )
        return self._links[(src, dst)]

    def shortest_path(
        self, src: int, dst: int, avoid_links: Optional[Sequence[Link]] = None
    ) -> Optional[List[Link]]:
        """Breadth-first shortest path that can avoid a set of links.

        Used by the traffic-conscious optimizer to find detours around
        congested or failed links. Returns ``None`` when no path exists.
        """
        if src == dst:
            return []
        avoid = {(link.src, link.dst) for link in (avoid_links or ())}
        frontier = [src]
        predecessors: Dict[int, Tuple[int, Link]] = {}
        visited = {src}
        while frontier:
            next_frontier: List[int] = []
            for die in frontier:
                for neighbour in self.neighbours(die):
                    if neighbour in visited:
                        continue
                    if (die, neighbour) in avoid:
                        continue
                    visited.add(neighbour)
                    predecessors[neighbour] = (die, self._links[(die, neighbour)])
                    if neighbour == dst:
                        return self._reconstruct(predecessors, src, dst)
                    next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    @staticmethod
    def _reconstruct(
        predecessors: Dict[int, Tuple[int, Link]], src: int, dst: int
    ) -> List[Link]:
        path: List[Link] = []
        node = dst
        while node != src:
            prev, link = predecessors[node]
            path.append(link)
            node = prev
        path.reverse()
        return path

    # Ring enumeration (used by TATP) -----------------------------------------

    def contiguous_ring(self, dies: Sequence[int]) -> Optional[List[int]]:
        """Order ``dies`` into a physical ring of adjacent dies, if one exists.

        A physical ring is a Hamiltonian cycle on the induced subgraph where
        consecutive dies (and the last/first pair) are mesh neighbours. Groups
        of two adjacent dies are treated as a degenerate ring (ping-pong).

        Returns the ring ordering or ``None`` if the group cannot form one.
        """
        group = list(dict.fromkeys(dies))
        if len(group) != len(dies):
            raise ValueError("die group contains duplicates")
        for die in group:
            if not self.is_healthy(die):
                return None
        if len(group) == 1:
            return group
        if len(group) == 2:
            return group if self.are_adjacent(group[0], group[1]) else None
        # Rings on a mesh need an even number of members (bipartite graph).
        if len(group) % 2 == 1:
            return None
        rectangle = self._rectangular_ring(group)
        if rectangle is not None:
            return rectangle
        return self._hamiltonian_cycle(group)

    def _rectangular_ring(self, group: Sequence[int]) -> Optional[List[int]]:
        """Fast path: a full r x c rectangle of dies always admits a ring."""
        coords = sorted(self.coord(die) for die in group)
        rows = sorted({row for row, _ in coords})
        cols = sorted({col for _, col in coords})
        if rows != list(range(rows[0], rows[-1] + 1)):
            return None
        if cols != list(range(cols[0], cols[-1] + 1)):
            return None
        if len(rows) * len(cols) != len(group):
            return None
        expected = {(row, col) for row in rows for col in cols}
        if set(coords) != expected:
            return None
        if len(rows) == 1 or len(cols) == 1:
            # A straight line of >2 dies cannot close into a cycle.
            return None
        ring_coords = self._boustrophedon_cycle(rows, cols)
        ring = [self.die_at(row, col) for row, col in ring_coords]
        if not self._is_ring(ring):
            return None
        return ring

    @staticmethod
    def _boustrophedon_cycle(rows: List[int], cols: List[int]) -> List[Coord]:
        """Build a cycle covering a rectangle: snake down inner columns, return
        up the first column."""
        first_col = cols[0]
        other_cols = cols[1:]
        cycle: List[Coord] = []
        for index, row in enumerate(rows):
            ordered = other_cols if index % 2 == 0 else list(reversed(other_cols))
            for col in ordered:
                cycle.append((row, col))
        for row in reversed(rows):
            cycle.append((row, first_col))
        return cycle

    def _hamiltonian_cycle(self, group: Sequence[int]) -> Optional[List[int]]:
        """Backtracking Hamiltonian-cycle search for small irregular groups."""
        group_set = set(group)
        if len(group) > 16:
            # Exhaustive search would be too slow; rely on the rectangle fast
            # path for large groups (which covers the mappings TEMP generates).
            return None
        start = group[0]
        path = [start]
        used = {start}

        def backtrack() -> Optional[List[int]]:
            if len(path) == len(group):
                if self.are_adjacent(path[-1], start):
                    return list(path)
                return None
            for neighbour in self.neighbours(path[-1]):
                if neighbour in group_set and neighbour not in used:
                    used.add(neighbour)
                    path.append(neighbour)
                    result = backtrack()
                    if result is not None:
                        return result
                    path.pop()
                    used.remove(neighbour)
            return None

        return backtrack()

    def _is_ring(self, ordering: Sequence[int]) -> bool:
        if len(ordering) < 3:
            return False
        pairs = list(zip(ordering, list(ordering[1:]) + [ordering[0]]))
        return all(self.are_adjacent(a, b) for a, b in pairs)

    def ring_penalty_hops(self, dies: Sequence[int]) -> int:
        """Worst-case hop count needed to close a logical ring over ``dies``.

        A contiguous physical ring yields 1 (all transfers are one hop). A
        non-contiguous group pays the longest hop distance between logical
        neighbours — the tail-latency effect of Fig. 5(a).
        """
        if len(dies) <= 1:
            return 0
        ring = self.contiguous_ring(dies)
        if ring is not None:
            return 1
        ordering = list(dies)
        pairs = list(zip(ordering, ordering[1:] + [ordering[0]]))
        return max(self.hop_distance(a, b) for a, b in pairs)

    # Grouping helpers ---------------------------------------------------------

    def partition_into_groups(self, group_size: int) -> List[List[int]]:
        """Partition the mesh into contiguous die groups of ``group_size``.

        Groups are carved as near-square rectangles when possible (so that they
        admit physical rings), falling back to row-major slices. Faulty dies
        are skipped. This mirrors the die-allocation strategy of Fig. 7(a).
        """
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        dies = self.dies()
        if group_size > len(dies):
            raise ValueError(
                f"group_size {group_size} exceeds healthy die count {len(dies)}"
            )
        shape = self._best_group_shape(group_size)
        if shape is not None and not self._failed_dies:
            return self._tile_rectangles(shape, group_size)
        # Fallback: simple row-major chunks of healthy dies.
        return [
            dies[index: index + group_size]
            for index in range(0, len(dies) - group_size + 1, group_size)
        ]

    def _best_group_shape(self, group_size: int) -> Optional[Tuple[int, int]]:
        best: Optional[Tuple[int, int]] = None
        best_aspect = None
        for height in range(1, group_size + 1):
            if group_size % height:
                continue
            width = group_size // height
            if height > self.rows or width > self.cols:
                continue
            if self.rows % height or self.cols % width:
                continue
            aspect = abs(height - width)
            if best_aspect is None or aspect < best_aspect:
                best, best_aspect = (height, width), aspect
        return best

    def _tile_rectangles(
        self, shape: Tuple[int, int], group_size: int
    ) -> List[List[int]]:
        height, width = shape
        groups: List[List[int]] = []
        for row0 in range(0, self.rows, height):
            for col0 in range(0, self.cols, width):
                group = [
                    self.die_at(row, col)
                    for row in range(row0, row0 + height)
                    for col in range(col0, col0 + width)
                ]
                if len(group) == group_size:
                    groups.append(group)
        return groups
