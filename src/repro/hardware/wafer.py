"""Wafer-scale chip system object.

:class:`WaferScaleChip` binds a :class:`~repro.hardware.config.WaferConfig` to
an interconnect fabric from the topology zoo (the paper's 2D mesh by default;
see :mod:`repro.hardware.topologies`) and exposes the per-die resources
(compute, SRAM, HBM) that the simulator and the solver reason about. Fault
injection is applied here by rebuilding the topology with failed links or
dies, and by derating the compute of partially-faulty dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.hardware.config import WaferConfig, default_wafer_config
from repro.hardware.faults import FaultModel
from repro.hardware.topologies import Link, build_topology


@dataclass
class Die:
    """One compute die instance on the wafer.

    Attributes:
        die_id: flat id of the die (row-major).
        peak_flops: effective peak FLOPS after core-fault derating.
        hbm_capacity: usable HBM capacity in bytes.
        sram_capacity: usable SRAM capacity in bytes.
        healthy: whether the die participates in mapping at all.
    """

    die_id: int
    peak_flops: float
    hbm_capacity: float
    sram_capacity: float
    healthy: bool = True


class WaferScaleChip:
    """A wafer-scale chip: configuration + topology + per-die resources.

    Args:
        config: the wafer configuration (Table I values by default).
        fault_model: optional fault injection describing failed links and
            core-fault fractions per die.
        topology: optional topology spec dict (``{"name": ..., **params}``,
            see :mod:`repro.hardware.topologies`); ``None`` builds the
            default mesh fabric.
    """

    def __init__(
        self,
        config: Optional[WaferConfig] = None,
        fault_model: Optional[FaultModel] = None,
        topology: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.config = config or default_wafer_config()
        self.fault_model = fault_model or FaultModel()
        failed_links = self.fault_model.failed_links
        failed_dies = self.fault_model.dead_dies
        self.topology_spec = dict(topology) if topology is not None else None
        self.topology = build_topology(
            self.topology_spec,
            self.config.rows,
            self.config.cols,
            failed_links=failed_links,
            failed_dies=failed_dies,
        )
        self._dies = self._build_dies()

    def _build_dies(self) -> Dict[int, Die]:
        dies: Dict[int, Die] = {}
        for die_id in range(self.config.num_dies):
            healthy = die_id not in self.fault_model.dead_dies
            derate = 1.0 - self.fault_model.core_fault_fraction(die_id)
            dies[die_id] = Die(
                die_id=die_id,
                peak_flops=self.config.die.peak_flops * max(derate, 0.0),
                hbm_capacity=self.config.die.hbm.capacity,
                sram_capacity=self.config.die.sram_capacity,
                healthy=healthy,
            )
        return dies

    # Queries ------------------------------------------------------------------

    @property
    def num_dies(self) -> int:
        """Number of healthy dies available for mapping."""
        return len(self.healthy_dies())

    def die(self, die_id: int) -> Die:
        """Return the :class:`Die` record for ``die_id``."""
        try:
            return self._dies[die_id]
        except KeyError:
            raise KeyError(f"die {die_id} does not exist on this wafer") from None

    def dies(self) -> List[Die]:
        """Return all die records, healthy or not, in id order."""
        return [self._dies[die_id] for die_id in sorted(self._dies)]

    def healthy_dies(self) -> List[int]:
        """Return ids of dies that can be mapped onto."""
        return [die.die_id for die in self.dies() if die.healthy]

    def aggregate_peak_flops(self, dies: Optional[Sequence[int]] = None) -> float:
        """Sum of effective peak FLOPS over ``dies`` (default: all healthy)."""
        targets = dies if dies is not None else self.healthy_dies()
        return sum(self.die(die_id).peak_flops for die_id in targets)

    def aggregate_hbm_capacity(self, dies: Optional[Sequence[int]] = None) -> float:
        """Sum of HBM capacity over ``dies`` (default: all healthy)."""
        targets = dies if dies is not None else self.healthy_dies()
        return sum(self.die(die_id).hbm_capacity for die_id in targets)

    # Link-level helpers --------------------------------------------------------

    def link_bandwidth(self, link: Link) -> float:
        """Usable bandwidth of ``link`` after fault derating and the link's
        fabric bandwidth factor (1.0 on every default-mesh link)."""
        derate = 1.0 - self.fault_model.link_fault_fraction((link.src, link.dst))
        return self.config.d2d.bandwidth * max(derate, 0.0) * link.bandwidth_factor

    def link_transfer_time(self, link: Link, num_bytes: float) -> float:
        """Time to move ``num_bytes`` across one D2D link (latency + serial)."""
        bandwidth = self.link_bandwidth(link)
        if bandwidth <= 0:
            raise ValueError(f"link {link} has no usable bandwidth")
        return self.config.d2d.latency * link.latency_factor + num_bytes / bandwidth

    def path_transfer_time(self, path: Sequence[Link], num_bytes: float) -> float:
        """Store-and-forward transfer time along a multi-hop path."""
        if not path:
            return 0.0
        # Wormhole-style pipelining: pay per-hop latency for every hop but the
        # serialization delay only once at the slowest link. Latency factors
        # are summed before the single multiply so an all-unit-factor path
        # (the default mesh) reduces to exactly len(path) * latency.
        slowest = min(self.link_bandwidth(link) for link in path)
        if slowest <= 0:
            raise ValueError("path traverses a dead link")
        hops = sum(link.latency_factor for link in path)
        return hops * self.config.d2d.latency + num_bytes / slowest

    def describe(self) -> Dict[str, float]:
        """Return a summary dictionary of headline hardware numbers."""
        return {
            "dies": float(self.config.num_dies),
            "healthy_dies": float(self.num_dies),
            "peak_tflops": self.aggregate_peak_flops() / 1e12,
            "hbm_capacity_gb": self.aggregate_hbm_capacity() / (1024 ** 3),
            "d2d_bandwidth_tbps": self.config.d2d.bandwidth / (1024 ** 4),
        }

    # Group helpers -------------------------------------------------------------

    def contiguous_groups(self, group_size: int) -> List[List[int]]:
        """Contiguous die groups of ``group_size`` (see topology docs)."""
        return self.topology.partition_into_groups(group_size)

    def ring_for(self, dies: Sequence[int]) -> Optional[List[int]]:
        """A physical ring ordering for ``dies`` if one exists."""
        return self.topology.contiguous_ring(dies)
