"""The paper's 2D-mesh die fabric — the default and reference family.

The wafer arranges compute dies in a ``rows x cols`` grid. Physical D2D
links only exist between horizontally or vertically adjacent dies — the
paper's central physical constraint: signal integrity on the interposer
precludes long-distance or diagonal links, so any logical communication
pattern must be realised as sequences of one-hop transfers on this mesh.

Everything here must stay bit-identical to the pre-zoo ``MeshTopology``:
links carry the default unit factors, hop distance is the closed-form
Manhattan distance on the full grid (ignoring health, as before), routes
are X-first/Y-first dimension-ordered, and the analytical collective hop
factor is pinned to 1 (the seed cost model's constant) rather than
probed.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.hardware.topologies.base import Link, LinkSpec, Topology, die_id


class MeshTopology(Topology):
    """A 2D mesh of dies with nearest-neighbour directed links.

    Args:
        rows: number of die rows.
        cols: number of die columns.
        failed_links: optional iterable of (src, dst) pairs to mark as failed;
            both directions are removed for each pair.
        failed_dies: optional iterable of die ids that are entirely faulty.
    """

    family = "mesh"
    params = {}
    link_model = "unit-cost links between 4-neighbour grid dies"

    def _link_specs(self) -> Iterator[LinkSpec]:
        for row in range(self.rows):
            for col in range(self.cols):
                src = die_id(row, col, self.cols)
                for drow, dcol in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                    nrow, ncol = row + drow, col + dcol
                    if not (0 <= nrow < self.rows and 0 <= ncol < self.cols):
                        continue
                    yield src, die_id(nrow, ncol, self.cols), 1.0, 1.0

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan hop distance between two dies on the full grid."""
        (r1, c1), (r2, c2) = self.coord(src), self.coord(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def hop_cost(self, src: int, dst: int) -> int:
        """Mesh links are uniform, so weighted cost == Manhattan distance."""
        return self.hop_distance(src, dst)

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether dies ``a`` and ``b`` are physical neighbours."""
        return self.hop_distance(a, b) == 1

    def collective_hop_factor(self) -> int:
        """The seed analytical model's constant: one hop per ring step.

        Pinned (not probed) so the default fabric's cost tables stay
        bit-identical to the pre-zoo model on every geometry, including
        odd ones whose canonical partition cannot ring.
        """
        return 1

    # Routing ----------------------------------------------------------------

    def xy_route(self, src: int, dst: int) -> List[Link]:
        """Dimension-ordered route: move along columns (X) first, then rows (Y).

        Returns the list of directed links traversed; an empty list when
        ``src == dst``.
        """
        return self._dimension_ordered_route(src, dst, x_first=True)

    def yx_route(self, src: int, dst: int) -> List[Link]:
        """Dimension-ordered route moving along rows (Y) first, then columns."""
        return self._dimension_ordered_route(src, dst, x_first=False)

    def _dimension_ordered_route(
        self, src: int, dst: int, x_first: bool
    ) -> List[Link]:
        if not self.is_healthy(src) or not self.is_healthy(dst):
            raise ValueError(f"cannot route between unhealthy dies {src} and {dst}")
        path: List[Link] = []
        row, col = self.coord(src)
        drow, dcol = self.coord(dst)

        def step_col() -> None:
            nonlocal col
            while col != dcol:
                ncol = col + (1 if dcol > col else -1)
                path.append(self._require_link(
                    die_id(row, col, self.cols), die_id(row, ncol, self.cols)))
                col = ncol

        def step_row() -> None:
            nonlocal row
            while row != drow:
                nrow = row + (1 if drow > row else -1)
                path.append(self._require_link(
                    die_id(row, col, self.cols), die_id(nrow, col, self.cols)))
                row = nrow

        if x_first:
            step_col()
            step_row()
        else:
            step_row()
            step_col()
        return path

    def _require_link(self, src: int, dst: int) -> Link:
        if (src, dst) not in self._links:
            raise KeyError(
                f"route requires link {src}->{dst} which is missing or failed"
            )
        return self._links[(src, dst)]
