"""Topology zoo: registered, pluggable interconnect fabric families.

This package follows the registered-engine pattern of
:mod:`repro.mapping.engines`: each fabric family is a
:class:`~repro.hardware.topologies.base.Topology` subclass registered
under a short name, and everything downstream — routing, collective
expansion, the analytical cost tables, ``HardwareSpec`` serde, portfolio
sweeps — speaks the base protocol only.

A fabric is selected by a plain-JSON *topology spec*::

    {"name": "torus"}
    {"name": "mesh3d", "layers": 2, "vertical_latency_factor": 2.0}
    {"name": "chiplet", "chiplet_rows": 2, "chiplet_cols": 2, "gateways": 2}
    {"name": "express", "stride": 2}

Every key other than ``name`` is passed to the family constructor as a
keyword parameter; :func:`validate_topology_spec` rejects unknown names,
unknown parameters, and geometry-incompatible parameters up front (so
`Scenario` validation fails loudly instead of at solve time).

Registered families:

* ``mesh`` — the paper's 2D nearest-neighbour mesh (the default).
* ``torus`` — wraparound torus; rows/columns close into rings.
* ``mesh3d`` — stacked mesh decks with weighted vertical TSV links.
* ``chiplet`` — hierarchical chiplet tiles bridged by gateway routers
  over a weighted backbone.
* ``express`` — mesh plus express skip links every ``stride`` dies.

All families share the flat row-major die-id space of the ``rows x
cols`` grid, so die counts, coordinates, and partitioning are
fabric-independent; families differ only in which links exist and what
each link costs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Type

from repro.hardware.topologies.base import (
    Coord,
    Link,
    RouteTables,
    Topology,
    die_coord,
    die_id,
)
from repro.hardware.topologies.chiplet import ChipletTopology
from repro.hardware.topologies.express import ExpressMeshTopology
from repro.hardware.topologies.mesh import MeshTopology
from repro.hardware.topologies.mesh3d import StackedMeshTopology
from repro.hardware.topologies.torus import TorusTopology

DEFAULT_TOPOLOGY = "mesh"

_FAMILIES: Dict[str, Type[Topology]] = {
    MeshTopology.family: MeshTopology,
    TorusTopology.family: TorusTopology,
    StackedMeshTopology.family: StackedMeshTopology,
    ChipletTopology.family: ChipletTopology,
    ExpressMeshTopology.family: ExpressMeshTopology,
}


def topology_names() -> List[str]:
    """Names of all registered fabric families (default first)."""
    names = sorted(_FAMILIES)
    names.remove(DEFAULT_TOPOLOGY)
    return [DEFAULT_TOPOLOGY] + names


def get_topology_class(name: str) -> Type[Topology]:
    """Resolve a registered family name to its class.

    Raises:
        ValueError: for unregistered names.
    """
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ValueError(
            f"unknown topology {name!r}; registered families: {known}"
        ) from None


def validate_topology_spec(
    spec: Mapping[str, object],
    rows: Optional[int] = None,
    cols: Optional[int] = None,
) -> None:
    """Validate a topology spec dict without building the fabric.

    Checks the family name, rejects unknown parameter keys, type-checks
    parameter values against the family's declared defaults, and — when
    ``rows``/``cols`` are given — runs the family's geometry check.

    Raises:
        ValueError: on any invalid name, parameter, or geometry.
    """
    if not isinstance(spec, Mapping):
        raise ValueError(f"topology spec must be a mapping, got {type(spec).__name__}")
    name = spec.get("name")
    if not isinstance(name, str):
        raise ValueError("topology spec needs a string 'name' field")
    cls = get_topology_class(name)
    params = {key: value for key, value in spec.items() if key != "name"}
    unknown = set(params) - set(cls.params)
    if unknown:
        allowed = ", ".join(sorted(cls.params)) or "(none)"
        raise ValueError(
            f"unknown {name} topology parameter(s) {sorted(unknown)}; "
            f"allowed: {allowed}")
    for key, value in params.items():
        default = cls.params[key]
        if isinstance(default, bool) or isinstance(value, bool):
            ok = isinstance(value, bool) and isinstance(default, bool)
        elif isinstance(default, int):
            ok = isinstance(value, int)
        elif isinstance(default, float):
            ok = isinstance(value, (int, float))
        else:
            ok = isinstance(value, type(default))
        if not ok:
            raise ValueError(
                f"{name} topology parameter {key!r} expects "
                f"{type(default).__name__}, got {value!r}")
    if rows is not None and cols is not None:
        cls.check_geometry(rows, cols, params)


def build_topology(
    spec: Optional[Mapping[str, object]],
    rows: int,
    cols: int,
    failed_links=None,
    failed_dies=None,
) -> Topology:
    """Build the fabric described by ``spec`` over a ``rows x cols`` grid.

    ``spec`` may be ``None`` (the default mesh) or a validated topology
    spec dict. Fault sets pass straight through to the family constructor.
    """
    if spec is None:
        return MeshTopology(rows, cols, failed_links, failed_dies)
    validate_topology_spec(spec, rows, cols)
    cls = get_topology_class(str(spec["name"]))
    params = {key: value for key, value in spec.items() if key != "name"}
    return cls(rows, cols, failed_links, failed_dies, **params)


def topology_table() -> List[Dict[str, str]]:
    """Docs metadata: one row per registered family (name, params, link model).

    Consumed by ``repro list --topologies`` and the generated
    EXPERIMENTS.md fabric table.
    """
    rows = []
    for name in topology_names():
        cls = _FAMILIES[name]
        params = ", ".join(
            f"{key}={value}" for key, value in cls.params.items()) or "—"
        rows.append({
            "name": name,
            "params": params,
            "link_model": cls.link_model,
            "default": "yes" if name == DEFAULT_TOPOLOGY else "",
        })
    return rows


__all__ = [
    "Coord",
    "Link",
    "RouteTables",
    "Topology",
    "MeshTopology",
    "TorusTopology",
    "StackedMeshTopology",
    "ChipletTopology",
    "ExpressMeshTopology",
    "DEFAULT_TOPOLOGY",
    "die_id",
    "die_coord",
    "topology_names",
    "get_topology_class",
    "validate_topology_spec",
    "build_topology",
    "topology_table",
]
