"""Hierarchical chiplet fabric: dense local meshes bridged by gateways.

The die grid is partitioned into ``chiplet_rows x chiplet_cols`` tiles
("chiplets"). Within a chiplet, dies form an ordinary unit-cost mesh.
Between chiplets there are no die-level links: traffic crosses on a
sparse backbone that connects designated *gateway* dies of adjacent
chiplets (1 or 2 gateways per chiplet, at the chiplet's local (0, 0)
and, with two gateways, local (h-1, w-1) corners). Backbone wires are
long, so they carry their own bandwidth/latency factors.

This is the Garnet-style hierarchical-chiplet pattern: cheap local hops,
expensive weighted escapes, and gateway indirection that makes most
cross-chiplet die groups unable to form physical rings — which is
exactly what differentiates its collective costs from the flat mesh.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Mapping, Tuple

from repro.hardware.topologies.base import LinkSpec, Topology, die_id


class ChipletTopology(Topology):
    """Chiplet tiles of mesh dies joined by gateway backbone links.

    Args:
        rows, cols, failed_links, failed_dies: as the base class; ``rows``
            must divide by ``chiplet_rows`` and ``cols`` by ``chiplet_cols``.
        chiplet_rows: number of chiplet tiles along the row dimension.
        chiplet_cols: number of chiplet tiles along the column dimension.
        gateways: gateway dies per chiplet (1 or 2).
        backbone_bandwidth_factor: bandwidth of a backbone link relative to
            an intra-chiplet link.
        backbone_latency_factor: per-hop latency of a backbone link relative
            to an intra-chiplet link.
    """

    family = "chiplet"
    params = {
        "chiplet_rows": 2,
        "chiplet_cols": 2,
        "gateways": 2,
        "backbone_bandwidth_factor": 0.5,
        "backbone_latency_factor": 2.0,
    }
    link_model = ("per-chiplet mesh links; adjacent chiplets joined only "
                  "through gateway dies over weighted backbone links")

    #: Gateway indirection creates odd cycles (mesh path + backbone
    #: shortcut), so the even-size ring shortcut does not apply.
    _bipartite = False

    def __init__(self, rows, cols, failed_links=None, failed_dies=None, *,
                 chiplet_rows: int = 2, chiplet_cols: int = 2,
                 gateways: int = 2,
                 backbone_bandwidth_factor: float = 0.5,
                 backbone_latency_factor: float = 2.0) -> None:
        self.check_geometry(rows, cols, {
            "chiplet_rows": chiplet_rows,
            "chiplet_cols": chiplet_cols,
            "gateways": gateways,
            "backbone_bandwidth_factor": backbone_bandwidth_factor,
            "backbone_latency_factor": backbone_latency_factor,
        })
        self.chiplet_rows = int(chiplet_rows)
        self.chiplet_cols = int(chiplet_cols)
        self.gateways = int(gateways)
        self.tile_rows = rows // self.chiplet_rows
        self.tile_cols = cols // self.chiplet_cols
        self.backbone_bandwidth_factor = float(backbone_bandwidth_factor)
        self.backbone_latency_factor = float(backbone_latency_factor)
        super().__init__(rows, cols, failed_links, failed_dies)

    @classmethod
    def check_geometry(cls, rows: int, cols: int,
                       params: Mapping[str, object]) -> None:
        super().check_geometry(rows, cols, params)
        chiplet_rows = int(params.get("chiplet_rows", cls.params["chiplet_rows"]))
        chiplet_cols = int(params.get("chiplet_cols", cls.params["chiplet_cols"]))
        gateways = int(params.get("gateways", cls.params["gateways"]))
        if chiplet_rows < 1 or chiplet_cols < 1:
            raise ValueError("chiplet grid dimensions must be positive")
        if chiplet_rows * chiplet_cols < 2:
            raise ValueError(
                "chiplet fabric needs at least 2 chiplets "
                f"(got {chiplet_rows}x{chiplet_cols})")
        if rows % chiplet_rows or cols % chiplet_cols:
            raise ValueError(
                f"chiplet grid {chiplet_rows}x{chiplet_cols} must divide the "
                f"die grid {rows}x{cols}")
        if gateways not in (1, 2):
            raise ValueError(f"chiplets support 1 or 2 gateways, got {gateways}")
        bw = float(params.get("backbone_bandwidth_factor",
                              cls.params["backbone_bandwidth_factor"]))
        lat = float(params.get("backbone_latency_factor",
                               cls.params["backbone_latency_factor"]))
        if bw <= 0 or lat <= 0:
            raise ValueError("chiplet backbone factors must be positive")

    def chiplet_of(self, die: int) -> Tuple[int, int]:
        """Return the (chiplet row, chiplet col) tile holding ``die``."""
        row, col = self.coord(die)
        return row // self.tile_rows, col // self.tile_cols

    def gateway_dies(self, tile: Tuple[int, int]) -> List[int]:
        """Return the gateway die ids of chiplet ``tile``, deduplicated."""
        trow, tcol = tile
        row0, col0 = trow * self.tile_rows, tcol * self.tile_cols
        corners = [(row0, col0)]
        if self.gateways == 2:
            corners.append((row0 + self.tile_rows - 1,
                            col0 + self.tile_cols - 1))
        seen: List[int] = []
        for row, col in corners:
            die = die_id(row, col, self.cols)
            if die not in seen:
                seen.append(die)
        return seen

    def _link_specs(self) -> Iterator[LinkSpec]:
        h, w = self.tile_rows, self.tile_cols
        for row in range(self.rows):
            for col in range(self.cols):
                src = die_id(row, col, self.cols)
                for drow, dcol in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                    nrow, ncol = row + drow, col + dcol
                    if not (0 <= nrow < self.rows and 0 <= ncol < self.cols):
                        continue
                    # Intra-chiplet links only: no die-level wires across
                    # chiplet boundaries.
                    if (nrow // h, ncol // w) != (row // h, col // w):
                        continue
                    yield src, die_id(nrow, ncol, self.cols), 1.0, 1.0
        # Backbone: the g-th gateway of a chiplet links to the g-th gateway
        # of each adjacent chiplet (right and down; both directions yielded).
        bw, lat = self.backbone_bandwidth_factor, self.backbone_latency_factor
        for trow in range(self.chiplet_rows):
            for tcol in range(self.chiplet_cols):
                here = self.gateway_dies((trow, tcol))
                for nrow, ncol in ((trow, tcol + 1), (trow + 1, tcol)):
                    if not (nrow < self.chiplet_rows and ncol < self.chiplet_cols):
                        continue
                    there = self.gateway_dies((nrow, ncol))
                    for src, dst in zip(here, there):
                        yield src, dst, bw, lat
                        yield dst, src, bw, lat

    def collective_hop_factor(self) -> int:
        """Analytic hop factor: the canonical partition's worst group spans
        chiplets, paying local escape hops plus a weighted backbone hop."""
        span = (self.chiplet_rows - 1) + (self.chiplet_cols - 1)
        backbone = max(1, math.ceil(self.backbone_latency_factor - 1e-9))
        return max(1, span + backbone)
