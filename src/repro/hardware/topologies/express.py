"""Express-channel mesh: the base mesh plus skip links every ``stride`` dies.

Express channels are the classic NoC latency hack: on top of every
nearest-neighbour mesh link, dies whose row (or column) index is a
multiple of ``stride`` get a direct "express" wire to the die ``stride``
positions further along the same row (column). Long wires are slower per
hop and may carry less usable bandwidth, so express links have their own
factors — but a single express hop still replaces ``stride`` mesh hops,
which shortens BFS routes and tightens non-contiguous ring closures.

Unlike the mesh, routing here is genuinely graph-based (Manhattan
distance no longer equals hop distance), so this family deliberately
exercises the base class's BFS/Dijkstra machinery.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.hardware.topologies.base import LinkSpec, Topology, die_id


class ExpressMeshTopology(Topology):
    """A 2D mesh augmented with express skip links every ``stride`` dies.

    Args:
        rows, cols, failed_links, failed_dies: as the base class.
        stride: skip distance of an express link (>= 2).
        express_bandwidth_factor: bandwidth of an express link relative to a
            baseline mesh link.
        express_latency_factor: per-hop latency of an express link relative
            to a baseline mesh link.
    """

    family = "express"
    params = {
        "stride": 2,
        "express_bandwidth_factor": 1.0,
        "express_latency_factor": 1.5,
    }
    link_model = ("mesh links plus express skip links every `stride` dies "
                  "along rows and columns (own bandwidth/latency factors)")

    def __init__(self, rows, cols, failed_links=None, failed_dies=None, *,
                 stride: int = 2,
                 express_bandwidth_factor: float = 1.0,
                 express_latency_factor: float = 1.5) -> None:
        self.check_geometry(rows, cols, {
            "stride": stride,
            "express_bandwidth_factor": express_bandwidth_factor,
            "express_latency_factor": express_latency_factor,
        })
        self.stride = int(stride)
        self.express_bandwidth_factor = float(express_bandwidth_factor)
        self.express_latency_factor = float(express_latency_factor)
        super().__init__(rows, cols, failed_links, failed_dies)
        # An express link of even stride closes an odd cycle with the mesh
        # path it parallels, so only odd strides keep the graph bipartite.
        self._bipartite = self.stride % 2 == 1

    @classmethod
    def check_geometry(cls, rows: int, cols: int,
                       params: Mapping[str, object]) -> None:
        super().check_geometry(rows, cols, params)
        stride = int(params.get("stride", cls.params["stride"]))
        if stride < 2:
            raise ValueError(f"express stride must be >= 2, got {stride}")
        bw = float(params.get("express_bandwidth_factor",
                              cls.params["express_bandwidth_factor"]))
        lat = float(params.get("express_latency_factor",
                               cls.params["express_latency_factor"]))
        if bw <= 0 or lat <= 0:
            raise ValueError("express link factors must be positive")

    def _link_specs(self) -> Iterator[LinkSpec]:
        # Base mesh links first (canonical mesh order).
        for row in range(self.rows):
            for col in range(self.cols):
                src = die_id(row, col, self.cols)
                for drow, dcol in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                    nrow, ncol = row + drow, col + dcol
                    if not (0 <= nrow < self.rows and 0 <= ncol < self.cols):
                        continue
                    yield src, die_id(nrow, ncol, self.cols), 1.0, 1.0
        # Express skip links along rows, then columns, anchored at multiples
        # of the stride.
        bw, lat = self.express_bandwidth_factor, self.express_latency_factor
        k = self.stride
        for row in range(self.rows):
            for col in range(0, self.cols - k, k):
                src = die_id(row, col, self.cols)
                dst = die_id(row, col + k, self.cols)
                yield src, dst, bw, lat
                yield dst, src, bw, lat
        for col in range(self.cols):
            for row in range(0, self.rows - k, k):
                src = die_id(row, col, self.cols)
                dst = die_id(row + k, col, self.cols)
                yield src, dst, bw, lat
                yield dst, src, bw, lat
